"""Tests for the stable-marriage selection extension (the paper's future work)."""

import pytest

from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import Threshold
from repro.combination.stable_marriage import StableMarriageDirection, stable_marriage_pairs
from repro.model.builder import SchemaBuilder


def _axes():
    left = SchemaBuilder("L")
    with left.inner("A"):
        left.leaves("a1", "a2", "a3")
    right = SchemaBuilder("R")
    with right.inner("B"):
        right.leaves("b1", "b2", "b3")
    return left.build().leaf_paths(), right.build().leaf_paths()


def _matrix(values):
    sources, targets = _axes()
    matrix = SimilarityMatrix(sources, targets)
    for i, row in enumerate(values):
        for j, value in enumerate(row):
            matrix.set(sources[i], targets[j], value)
    return matrix, sources, targets


class TestStableMarriage:
    def test_one_to_one_assignment(self):
        matrix, sources, targets = _matrix([
            [0.9, 0.8, 0.1],
            [0.85, 0.7, 0.2],
            [0.1, 0.2, 0.6],
        ])
        pairs = stable_marriage_pairs(matrix)
        assert len(pairs) == 3
        assert len({p[0] for p in pairs}) == 3
        assert len({p[1] for p in pairs}) == 3

    def test_stability_no_blocking_pair(self):
        matrix, sources, targets = _matrix([
            [0.9, 0.8, 0.1],
            [0.85, 0.7, 0.2],
            [0.1, 0.2, 0.6],
        ])
        pairs = stable_marriage_pairs(matrix)
        assigned_target = {source: target for source, target, _ in pairs}
        assigned_source = {target: source for source, target, _ in pairs}
        for source in sources:
            for target in targets:
                if assigned_target.get(source) == target:
                    continue
                current_partner_sim = (
                    matrix.get(source, assigned_target[source])
                    if source in assigned_target else -1.0
                )
                target_partner_sim = (
                    matrix.get(assigned_source[target], target)
                    if target in assigned_source else -1.0
                )
                blocking = (
                    matrix.get(source, target) > current_partner_sim
                    and matrix.get(source, target) > target_partner_sim
                )
                assert not blocking, f"blocking pair {source} / {target}"

    def test_minimum_similarity_keeps_elements_unmatched(self):
        matrix, *_ = _matrix([
            [0.9, 0.0, 0.0],
            [0.0, 0.3, 0.0],
            [0.0, 0.0, 0.1],
        ])
        pairs = stable_marriage_pairs(matrix, minimum_similarity=0.5)
        assert len(pairs) == 1
        assert pairs[0][2] == pytest.approx(0.9)

    def test_zero_similarity_never_matched(self):
        matrix, *_ = _matrix([[0.0] * 3] * 3)
        assert stable_marriage_pairs(matrix) == []

    def test_direction_strategy_with_selection(self):
        matrix, *_ = _matrix([
            [0.9, 0.2, 0.1],
            [0.2, 0.6, 0.1],
            [0.1, 0.2, 0.4],
        ])
        strategy = StableMarriageDirection()
        unfiltered = strategy.select_pairs(matrix)
        assert len(unfiltered) == 3
        filtered = strategy.select_pairs(matrix, Threshold(0.5))
        assert len(filtered) == 2

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            StableMarriageDirection(minimum_similarity=1.5)
