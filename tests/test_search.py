"""Tests for the corpus-search subsystem (repro/search/).

Covers the interval encoding, the inverted candidate index (round trip,
incremental add/remove, determinism), the recall invariant the pruning rests
on, the session / service / CLI wiring -- including the byte-identity of
``POST /search`` with the in-process ``MatchSession.search`` path -- and the
``coma stats --store`` failure modes.
"""

import os
import sqlite3

import pytest

from repro.datasets.figure1 import load_po1, load_po2
from repro.datasets.generators import generate_corpus, mutate_schema
from repro.datasets.gold_standard import load_all_tasks
from repro.datasets.purchase_orders import load_all_schemas
from repro.exceptions import RepositoryError, SearchError, SessionError
from repro.linguistic.tokenizer import NameTokenizer
from repro.search import (
    CorpusSearcher,
    SchemaCorpus,
    interval_encode,
    schema_vocabulary,
)
from repro.session import MatchSession


# -- interval encoding ---------------------------------------------------------


class TestIntervalEncoding:
    def test_pre_post_are_permutations(self):
        for schema in (load_po1(), load_po2()):
            nodes = interval_encode(schema)
            count = len(schema.paths()) + 1
            assert len(nodes) == count
            assert sorted(node.pre for node in nodes) == list(range(count))
            assert sorted(node.post for node in nodes) == list(range(count))

    def test_containment_matches_path_prefixes(self):
        """pre/post nesting must coincide exactly with path containment."""
        schema = load_po2()
        nodes = interval_encode(schema)
        for ancestor in nodes:
            for descendant in nodes:
                if ancestor is descendant:
                    continue
                expected = ancestor.path is None or (
                    descendant.path is not None
                    and descendant.path.startswith(ancestor.path)
                    and len(descendant.path) > len(ancestor.path)
                )
                assert ancestor.contains(descendant) == expected, (
                    ancestor.dotted,
                    descendant.dotted,
                )

    def test_subtree_size_counts_descendants(self):
        schema = load_po1()
        nodes = interval_encode(schema)
        for node in nodes:
            descendants = sum(1 for other in nodes if node.contains(other))
            assert node.size == descendants + 1
            low, high = node.leaf_window
            inside = [other for other in nodes if low <= other.pre <= high]
            assert len(inside) == node.size

    def test_root_node(self):
        nodes = interval_encode(load_po1())
        root = nodes[0]
        assert root.is_root and root.pre == 0 and root.depth == 0
        assert root.size == len(nodes)


# -- the corpus index ----------------------------------------------------------


class TestSchemaCorpus:
    def test_add_and_rank(self):
        corpus = SchemaCorpus(":memory:")
        corpus.add_many(load_all_schemas().values())
        assert len(corpus) == 5
        session = MatchSession()
        ranked = corpus.rank_schema(
            load_all_schemas()["CIDX"],
            profile=session.profile_for(load_all_schemas()["CIDX"]),
        )
        assert [c.name for c in ranked[:1]] != ["CIDX"]  # self excluded
        assert all(c.score > 0 for c in ranked)
        assert sorted(ranked, key=lambda c: (-c.score, c.name)) == ranked
        corpus.close()

    def test_rank_is_deterministic(self):
        corpus = SchemaCorpus(":memory:")
        corpus.add_many(load_all_schemas().values())
        query = load_po1()
        first = corpus.rank_schema(query)
        second = corpus.rank_schema(query)
        assert [(c.name, c.score) for c in first] == [
            (c.name, c.score) for c in second
        ]
        corpus.close()

    def test_round_trip_reopen_identical_candidates(self, tmp_path):
        """register -> persist -> reopen -> identical candidate sets."""
        path = str(tmp_path / "corpus.db")
        schemas = list(load_all_schemas().values())
        with SchemaCorpus(path) as corpus:
            corpus.add_many(schemas)
            before = [
                (c.name, c.score, c.digest)
                for c in corpus.rank_schema(load_po1())
            ]
            info_before = corpus.info()
        with SchemaCorpus(path) as reopened:
            after = [
                (c.name, c.score, c.digest)
                for c in reopened.rank_schema(load_po1())
            ]
            assert after == before
            info_after = reopened.info()
            for key in ("schemas", "terms", "postings", "nodes"):
                assert info_after[key] == info_before[key]
            # The stored documents rebuild the identical schemas.
            for schema in schemas:
                loaded = reopened.load(schema.name)
                assert [p.dotted() for p in loaded.paths()] == [
                    p.dotted() for p in schema.paths()
                ]

    def test_incremental_add_matches_fresh_build(self):
        """Adding one by one must equal building the corpus in one go."""
        schemas = list(load_all_schemas().values())
        incremental = SchemaCorpus(":memory:")
        for schema in schemas:
            incremental.add(schema)
        fresh = SchemaCorpus(":memory:")
        fresh.add_many(schemas)
        query = load_po1()
        assert [(c.name, c.score) for c in incremental.rank_schema(query)] == [
            (c.name, c.score) for c in fresh.rank_schema(query)
        ]
        incremental.close()
        fresh.close()

    def test_remove_behaves_as_never_registered(self):
        """remove() must fully undo add(): postings, dfs and vocabulary."""
        schemas = list(load_all_schemas().values())
        without = SchemaCorpus(":memory:")
        without.add_many(schemas[1:])
        both = SchemaCorpus(":memory:")
        both.add_many(schemas)
        assert both.remove(schemas[0].name) is True
        assert both.remove(schemas[0].name) is False  # already gone
        query = load_po1()
        removed = both.rank_schema(query)
        reference = without.rank_schema(query)
        assert [c.name for c in removed] == [c.name for c in reference]
        # Term ids differ between the two corpora, so the float accumulation
        # order differs: scores agree to rounding, not bit-for-bit.
        assert [c.score for c in removed] == pytest.approx(
            [c.score for c in reference]
        )
        for key in ("schemas", "terms", "postings", "nodes"):
            assert both.info()[key] == without.info()[key]
        without.close()
        both.close()

    def test_replace_updates_registration(self):
        corpus = SchemaCorpus(":memory:")
        corpus.add(load_po1())
        mutant = mutate_schema(load_po1(), load_po1().name, seed=5)
        corpus.add(mutant)  # same name, replace=True default
        assert len(corpus) == 1
        loaded = corpus.load(load_po1().name)
        assert [p.dotted() for p in loaded.paths()] == [
            p.dotted() for p in mutant.paths()
        ]
        with pytest.raises(SearchError):
            corpus.add(mutant, replace=False)
        corpus.close()

    def test_load_unknown_raises(self):
        corpus = SchemaCorpus(":memory:")
        with pytest.raises(SearchError):
            corpus.load("Nope")
        corpus.close()

    def test_tokenizer_digest_guard(self, tmp_path):
        path = str(tmp_path / "corpus.db")
        with SchemaCorpus(path) as corpus:
            corpus.add(load_po1())
        different = NameTokenizer(abbreviations={"po": "PurchaseOrder"})
        with pytest.raises(SearchError, match="tokenizer"):
            SchemaCorpus(path, tokenizer=different)

    def test_find_subtrees_range_query(self):
        corpus = SchemaCorpus(":memory:")
        corpus.add_many(load_all_schemas().values())
        hits = corpus.find_subtrees("address", min_size=2)
        assert hits, "the purchase-order schemas all contain Address subtrees"
        assert all(hit.size >= 2 for hit in hits)
        assert all(
            "address" in hit.dotted.lower().split(".")[-1] for hit in hits
        )
        bounded = corpus.find_subtrees("address", min_size=2, max_size=4)
        assert all(2 <= hit.size <= 4 for hit in bounded)
        names = corpus.schemas_with_subtree("address", min_size=2)
        assert set(names) <= set(corpus.names())
        with pytest.raises(SearchError):
            corpus.find_subtrees("address", min_size=0)
        corpus.close()

    def test_vocabulary_counts_per_path_occurrence(self):
        session = MatchSession()
        schema = load_po1()
        vocabulary = schema_vocabulary(session.profile_for(schema))
        assert vocabulary, "a real schema has a non-empty vocabulary"
        kinds = {kind for kind, _ in vocabulary}
        assert kinds == {"token", "gram", "soundex"}
        assert all(count >= 1 for count in vocabulary.values())


# -- the recall invariant ------------------------------------------------------


class TestRecallInvariant:
    def test_pruned_topk_contains_full_pipeline_top1(self):
        """The pruned top-K must contain the exhaustive top-1 on gold pairs."""
        corpus = SchemaCorpus(":memory:")
        corpus.add_many(load_all_schemas().values())
        corpus.add_many(generate_corpus(10, seed=11))
        session = MatchSession()
        searcher = CorpusSearcher(session, corpus)
        for task in load_all_tasks()[:3]:
            # Exhaustive reference: the full pipeline against *every*
            # registered schema (minus the query itself).
            names = [
                name for name in corpus.names()
                if name != task.source.name
            ]
            outcomes = session.match_many(
                [(task.source, corpus.load(name)) for name in names]
            )
            exhaustive = sorted(
                zip(names, outcomes),
                key=lambda pair: (-pair[1].schema_similarity, pair[0]),
            )
            top1 = exhaustive[0][0]
            pruned = [hit.name for hit in searcher.search(task.source, k=5)]
            assert top1 in pruned, (task.name, top1, pruned)
            # And the pruned ranking agrees with the exhaustive prefix.
            assert pruned[0] == top1
        corpus.close()

    def test_gold_targets_survive_decoys(self):
        """Gold targets stay in the top-10 with decoys in the corpus."""
        corpus = SchemaCorpus(":memory:")
        corpus.add_many(load_all_schemas().values())
        corpus.add_many(generate_corpus(20, seed=23))
        session = MatchSession()
        searcher = CorpusSearcher(session, corpus)
        for task in load_all_tasks()[:2]:
            names = [hit.name for hit in searcher.search(task.source, k=10)]
            assert task.target.name in names, (task.name, names)
        corpus.close()


# -- session wiring ------------------------------------------------------------


class TestSessionSearch:
    def test_search_through_session(self):
        session = MatchSession(corpus=":memory:")
        session.register(load_po2())
        assert session.corpus is not None and len(session.corpus) == 1
        hits = session.search(load_po1(), k=1)
        assert [hit.name for hit in hits] == ["PO2"]
        assert hits[0].mapping is hits[0].outcome.result
        session.close()

    def test_search_without_corpus_raises(self):
        session = MatchSession()
        with pytest.raises(SessionError, match="corpus"):
            session.search(load_po1())
        with pytest.raises(SessionError, match="corpus"):
            session.register(load_po1())

    def test_close_closes_owned_corpus(self, tmp_path):
        path = str(tmp_path / "corpus.db")
        session = MatchSession(corpus=path)
        session.register(load_po1())
        session.close()
        assert session.corpus is None
        # The file persists and is reopenable.
        with SchemaCorpus(path) as corpus:
            assert corpus.names() == ("PO1",)

    def test_shared_corpus_object_stays_open(self):
        corpus = SchemaCorpus(":memory:")
        corpus.add(load_po2())
        session = MatchSession(corpus=corpus)
        session.close()
        assert corpus.names() == ("PO2",)  # still usable: not owned
        corpus.close()

    def test_invalid_k_and_pool(self):
        session = MatchSession(corpus=":memory:")
        session.register(load_po2())
        with pytest.raises(SearchError):
            session.search(load_po1(), k=0)
        with pytest.raises(SearchError):
            session.search(load_po1(), k=5, candidates=2)
        session.close()

    def test_exclude_names(self):
        session = MatchSession(corpus=":memory:")
        for schema in load_all_schemas().values():
            session.register(schema)
        full = [c.name for c in session.searcher().rank(load_po1())]
        crowding = full[0]
        filtered = session.searcher().rank(load_po1(), exclude_names=[crowding])
        assert crowding not in {c.name for c in filtered}
        hits = session.searcher().search(
            load_po1(), k=2, exclude_names=[crowding]
        )
        assert crowding not in {hit.name for hit in hits}
        session.close()

    def test_exclude_self(self):
        session = MatchSession(corpus=":memory:")
        session.register(load_po1())
        session.register(load_po2())
        names = [hit.name for hit in session.search(load_po1(), k=5)]
        assert "PO1" not in names
        included = session.searcher().search(load_po1(), k=5, exclude_self=False)
        assert [hit.name for hit in included][0] == "PO1"
        session.close()


# -- service wiring ------------------------------------------------------------


def _upload_paper_schemas(service):
    from repro.repository.serialization import schema_to_json
    import json as json_module

    for name, schema in load_all_schemas().items():
        spec = json_module.loads(schema_to_json(schema))
        status, payload = service.handle_request(
            "POST", "/schemas", {"spec": spec, "name": name}
        )
        assert status in (200, 201), payload


class TestServiceSearch:
    def test_search_endpoint_byte_identical_to_session(self, tmp_path):
        """POST /search must rank byte-identically to MatchSession.search."""
        from repro.service.server import MatchService

        corpus_path = str(tmp_path / "corpus.db")
        service = MatchService(pool_size=1, corpus_path=corpus_path)
        try:
            _upload_paper_schemas(service)
            status, payload = service.handle_request(
                "POST", "/search", {"source": "CIDX", "k": 4}
            )
            assert status == 200
            served = [
                (row["rank"], row["name"], row["schema_similarity"],
                 row["candidate_score"])
                for row in payload["results"]
            ]
        finally:
            service.close()
        with MatchSession(corpus=corpus_path) as session:
            # Query by the *registered* schema (the service matched the
            # uploaded spec), so self-exclusion sees the same content digest.
            local = session.search(session.corpus.load("CIDX"), k=4)
            expected = [
                (rank, hit.name, hit.schema_similarity, hit.candidate_score)
                for rank, hit in enumerate(local, start=1)
            ]
        assert served == expected  # exact float equality: byte-identical

    def test_corpus_endpoint_and_delete(self):
        from repro.service.server import MatchService

        service = MatchService(pool_size=1, corpus_path=":memory:")
        try:
            _upload_paper_schemas(service)
            status, info = service.handle_request("GET", "/corpus", None)
            assert status == 200 and info["schemas"] == 5
            assert set(info["names"]) == set(load_all_schemas())
            status, _ = service.handle_request("DELETE", "/schemas/Noris", None)
            assert status == 200
            status, info = service.handle_request("GET", "/corpus", None)
            assert info["schemas"] == 4 and "Noris" not in info["names"]
        finally:
            service.close()

    def test_search_without_corpus_is_clean_400(self):
        from repro.service.server import MatchService

        service = MatchService(pool_size=1)
        try:
            status, payload = service.handle_request(
                "POST", "/search", {"source": "X"}
            )
            assert status == 400 and "corpus" in payload["error"]
            status, payload = service.handle_request("GET", "/corpus", None)
            assert status == 400 and "corpus" in payload["error"]
        finally:
            service.close()

    def test_search_unknown_source_404(self):
        from repro.service.server import MatchService

        service = MatchService(pool_size=1, corpus_path=":memory:")
        try:
            status, payload = service.handle_request(
                "POST", "/search", {"source": "Ghost"}
            )
            assert status == 404
        finally:
            service.close()


# -- CLI wiring ----------------------------------------------------------------


SQL_A = """
CREATE TABLE PurchaseOrder (
  OrderNumber INT,
  OrderDate DATE,
  ShipToCity VARCHAR(50)
);
"""

SQL_B = """
CREATE TABLE PO (
  PONumber INT,
  PODate DATE,
  DeliverToCity VARCHAR(50)
);
"""


class TestCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_corpus_and_search_commands(self, tmp_path, capsys):
        from repro.cli import console_main

        a = self._write(tmp_path, "a.sql", SQL_A)
        b = self._write(tmp_path, "b.sql", SQL_B)
        corpus_path = str(tmp_path / "corpus.db")
        assert console_main(["corpus", corpus_path, "add", b]) == 0
        assert console_main(["corpus", corpus_path, "list"]) == 0
        assert console_main(["corpus", corpus_path, "info"]) == 0
        assert console_main(
            ["search", a, "--corpus", corpus_path, "-k", "1", "--details"]
        ) == 0
        output = capsys.readouterr().out
        assert "Top-1 matches" in output
        assert console_main(["corpus", corpus_path, "remove", "b"]) == 0
        assert console_main(["corpus", corpus_path, "remove", "b"]) == 1

    def test_corpus_inspect_missing_file_exits_1(self, tmp_path, capsys):
        from repro.cli import console_main

        missing = str(tmp_path / "missing.db")
        for action in ("list", "info"):
            assert console_main(["corpus", missing, action]) == 1
        assert not os.path.exists(missing)
        assert console_main(
            ["search", str(tmp_path / "q.sql"), "--corpus", missing]
        ) == 1
        capsys.readouterr()

    def test_corpus_argument_validation(self, tmp_path, capsys):
        from repro.cli import console_main

        corpus_path = str(tmp_path / "corpus.db")
        assert console_main(["corpus", corpus_path, "add"]) == 1
        assert console_main(["corpus", corpus_path, "remove"]) == 1
        capsys.readouterr()


# -- coma stats --store failure modes (satellite) ------------------------------


class TestStatsStoreFailures:
    def test_missing_path_exits_1(self, tmp_path, capsys):
        from repro.cli import console_main

        missing = str(tmp_path / "nope.db")
        assert console_main(["stats", "--store", missing]) == 1
        assert "no similarity store" in capsys.readouterr().err
        assert not os.path.exists(missing)  # never conjured into existence

    def test_garbage_file_exits_1(self, tmp_path, capsys):
        from repro.cli import console_main

        garbage = tmp_path / "garbage.db"
        garbage.write_bytes(b"this is not a sqlite file")
        assert console_main(["stats", "--store", str(garbage)]) == 1
        assert "error:" in capsys.readouterr().err
        assert garbage.read_bytes() == b"this is not a sqlite file"

    def test_foreign_sqlite_db_exits_1_without_mutation(self, tmp_path, capsys):
        """A valid SQLite file that is NOT a store: clean error, no DDL run."""
        from repro.cli import console_main

        other = str(tmp_path / "other.db")
        connection = sqlite3.connect(other)
        connection.execute("CREATE TABLE strategies (name TEXT PRIMARY KEY)")
        connection.commit()
        connection.close()
        assert console_main(["stats", "--store", other]) == 1
        assert "not a similarity store" in capsys.readouterr().err
        connection = sqlite3.connect(other)
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        connection.close()
        assert tables == {"strategies"}  # the stats read mutated nothing

    def test_readonly_store_open_validates(self, tmp_path):
        from repro.repository.store import SimilarityStore

        with pytest.raises(RepositoryError):
            SimilarityStore(str(tmp_path / "absent.db"), readonly=True)
        with pytest.raises(RepositoryError):
            SimilarityStore(":memory:", readonly=True)
        # A real store opens read-only and reports its info.
        path = str(tmp_path / "store.db")
        SimilarityStore(path).close()
        with SimilarityStore(path, readonly=True) as store:
            info = store.info()
            assert info["cubes"] == 0

    def test_stats_on_valid_store_still_works(self, tmp_path, capsys):
        from repro.cli import console_main
        from repro.repository.store import SimilarityStore

        path = str(tmp_path / "store.db")
        SimilarityStore(path).close()
        assert console_main(["stats", "--store", path]) == 0
        assert "Persistent similarity store" in capsys.readouterr().out
