"""Tests for the persistent similarity store and its session/service wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.figure1 import load_po1, load_po2
from repro.datasets.gold_standard import load_all_tasks
from repro.repository.store import (
    SimilarityStore,
    cube_store_key,
    match_config_digest,
    schema_content_digest,
    tokenizer_digest,
)
from repro.auxiliary.synonyms import default_purchase_order_synonyms
from repro.linguistic.tokenizer import NameTokenizer
from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, GenericType
from repro.service.server import MatchService
from repro.session import MatchSession


def outcome_rows(outcome):
    return [
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    ]


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "similarity-store.db")


class TestDigests:
    def test_schema_digest_is_content_based(self):
        # Two independent imports of the same content digest identically...
        assert schema_content_digest(load_po1()) == schema_content_digest(load_po1())
        # ...and different content digests differently.
        assert schema_content_digest(load_po1()) != schema_content_digest(load_po2())

    def test_config_digest_covers_every_input(self):
        tokenizer = NameTokenizer()
        synonyms = default_purchase_order_synonyms()
        types = DEFAULT_TYPE_COMPATIBILITY.copy()
        base = match_config_digest(tokenizer, synonyms, types)

        changed_synonyms = default_purchase_order_synonyms()
        changed_synonyms.add("warehouse", "depot")
        assert match_config_digest(tokenizer, changed_synonyms, types) != base

        changed_types = DEFAULT_TYPE_COMPATIBILITY.copy()
        changed_types.set(GenericType.STRING, GenericType.INTEGER, 0.9)
        assert match_config_digest(tokenizer, synonyms, changed_types) != base

        changed_tokenizer = NameTokenizer(drop_digits=True)
        assert match_config_digest(changed_tokenizer, synonyms, types) != base

        assert match_config_digest(tokenizer, synonyms, types) == base  # stable

    def test_library_digest_tracks_re_registration(self):
        from repro.matchers.base import NameStringMatcher
        from repro.matchers.registry import default_library
        from repro.matchers.string.edit_distance import EditDistanceMatcher
        from repro.repository.store import library_digest

        base = default_library()
        assert library_digest(base) == library_digest(default_library())
        changed = default_library()
        changed.register(
            "EditDistance",
            lambda: NameStringMatcher(EditDistanceMatcher(case_sensitive=True)),
            kind="simple",
            replace=True,
        )
        assert library_digest(changed) != library_digest(base)
        # ... and the library digest feeds the cube config digest.
        tokenizer = NameTokenizer()
        synonyms = default_purchase_order_synonyms()
        types = DEFAULT_TYPE_COMPATIBILITY.copy()
        assert match_config_digest(
            tokenizer, synonyms, types, library=base
        ) != match_config_digest(tokenizer, synonyms, types, library=changed)

    def test_tokenizer_digest_covers_abbreviations(self):
        plain = NameTokenizer()
        extended = NameTokenizer()
        extended.abbreviations.add("whs", ("warehouse",))
        assert tokenizer_digest(plain) != tokenizer_digest(extended)


class TestStoreRoundTrip:
    def test_cube_round_trip_is_bit_exact(self, store_path):
        session = MatchSession()
        source, target = load_po1(), load_po2()
        outcome = session.match(source, target)
        digest_s = schema_content_digest(source)
        digest_t = schema_content_digest(target)
        usage = outcome.cube.matcher_names
        key = cube_store_key(digest_s, digest_t, usage, "config")
        with SimilarityStore(store_path, writer=False) as store:
            store.store_cube(key, outcome.cube, digest_s, digest_t, usage, "config")
            loaded = store.load_cube(key, source.paths(), target.paths())
            assert loaded is not None
            assert loaded.matcher_names == outcome.cube.matcher_names
            for name, matrix in outcome.cube.layers():
                assert np.array_equal(loaded.layer(name).values, matrix.values)
            assert store.info()["hits"] == 1

    def test_missing_key_is_a_miss(self, store_path):
        with SimilarityStore(store_path, writer=False) as store:
            assert store.load_cube("nope", load_po1().paths(), load_po2().paths()) is None
            assert store.info()["misses"] == 1

    def test_shape_mismatch_is_a_miss_not_an_error(self, store_path):
        session = MatchSession()
        outcome = session.match(load_po1(), load_po2())
        with SimilarityStore(store_path, writer=False) as store:
            store.store_cube(
                "key", outcome.cube, "s", "t", outcome.cube.matcher_names, "c"
            )
            # Asking for the stored cube over the wrong path axes must miss.
            assert store.load_cube("key", load_po2().paths(), load_po1().paths()) is None

    def test_truncated_blob_degrades_to_miss(self, store_path):
        """A corrupt data blob (right shape, wrong length) is a miss, not a crash."""
        session = MatchSession()
        outcome = session.match(load_po1(), load_po2())
        with SimilarityStore(store_path, writer=False) as store:
            store.store_cube(
                "key", outcome.cube, "s", "t", outcome.cube.matcher_names, "c"
            )
            store._connection.execute(
                "UPDATE cubes SET data = ? WHERE key = 'key'", (b"\x00" * 16,)
            )
            store._connection.commit()
            assert store.load_cube("key", load_po1().paths(), load_po2().paths()) is None
            assert store.info()["misses"] == 1

    def test_load_after_close_is_a_miss_for_inflight_readers(self, store_path):
        """A reader holding a snapshot of a just-closed store degrades to a miss."""
        store = SimilarityStore(store_path)
        store.close()
        assert store.load_cube("key", load_po1().paths(), load_po2().paths()) is None

    def test_token_round_trip(self, store_path):
        with SimilarityStore(store_path, writer=False) as store:
            store.store_tokens("cfg", [("ShipTo", ("ship", "to")), ("PONo", ("purchase",))])
            loaded = store.load_tokens("cfg")
            assert loaded == {"ShipTo": ("ship", "to"), "PONo": ("purchase",)}
            assert store.load_tokens("other-cfg") == {}
            assert store.token_count() == 2

    def test_prune_cubes(self, store_path):
        session = MatchSession()
        outcome = session.match(load_po1(), load_po2())
        with SimilarityStore(store_path, writer=False) as store:
            for index in range(5):
                store.store_cube(
                    f"key{index}", outcome.cube, "s", "t", ("All",), "c"
                )
            removed = store.prune_cubes(2)
            assert removed == 3
            assert store.cube_count() == 2

    def test_async_writer_flush(self, store_path):
        session = MatchSession()
        outcome = session.match(load_po1(), load_po2())
        store = SimilarityStore(store_path)  # with the background writer
        try:
            store.store_cube_async(
                "key", outcome.cube, "s", "t", outcome.cube.matcher_names, "c"
            )
            store.flush()
            assert store.cube_count() == 1
        finally:
            store.close()

    def test_async_write_after_close_is_dropped_without_deadlock(self, store_path):
        session = MatchSession()
        outcome = session.match(load_po1(), load_po2())
        store = SimilarityStore(store_path)
        store.close()
        # A write-back racing close() is dropped silently...
        store.store_cube_async(
            "late", outcome.cube, "s", "t", outcome.cube.matcher_names, "c"
        )
        store.flush()  # ...and flush() returns instead of joining a dead queue
        store.close()  # idempotent

    def test_lifetime_counters_accumulate_across_opens(self, store_path):
        with SimilarityStore(store_path, writer=False) as store:
            store.load_cube("absent", load_po1().paths(), load_po2().paths())
        with SimilarityStore(store_path, writer=False) as store:
            info = store.info()
            assert info["misses"] == 0  # process-local counter starts fresh
            assert info["lifetime_misses"] == 1  # persisted on close


class TestSessionIntegration:
    def test_restarted_session_is_warm_and_byte_identical(self, store_path):
        source, target = load_po1(), load_po2()
        baseline = outcome_rows(MatchSession().match(source, target))

        first = MatchSession(store=store_path)
        cold = first.match(source, target)
        assert first.cache_info()["store_misses"] == 1
        first.store.flush()

        second = MatchSession(store=store_path)  # simulates a restarted process
        warm = second.match(source, target)
        info = second.cache_info()
        assert info["store_hits"] == 1 and info["store_misses"] == 0
        # The warm path never executed a matcher, yet the mapping is
        # byte-identical to both the cold run and a store-less session.
        assert outcome_rows(warm) == outcome_rows(cold) == baseline
        assert warm.schema_similarity == cold.schema_similarity
        first.store.close()

    def test_store_hit_skips_profile_building(self, store_path):
        source, target = load_po1(), load_po2()
        first = MatchSession(store=store_path)
        first.match(source, target)
        first.store.flush()
        second = MatchSession(store=store_path)
        second.match(source, target)
        assert second.cache_info()["profiles"] == 0

    def test_config_change_invalidates(self, store_path):
        source, target = load_po1(), load_po2()
        first = MatchSession(store=store_path)
        first.match(source, target)
        first.store.flush()

        synonyms = default_purchase_order_synonyms()
        synonyms.add("warehouse", "depot")
        changed = MatchSession(store=store_path, synonyms=synonyms)
        changed.match(source, target)
        # The changed configuration addresses a different key: a miss, and a
        # second cube is stored alongside the first.
        assert changed.cache_info()["store_misses"] == 1
        changed.store.flush()
        assert changed.store.cube_count() == 2
        first.store.close()

    def test_in_place_mutation_plus_clear_caches_re_addresses(self, store_path):
        source, target = load_po1(), load_po2()
        session = MatchSession(store=store_path)
        session.match(source, target)
        session.store.flush()
        session._synonyms.add("warehouse", "depot")
        session.clear_caches()
        session.match(source, target)
        info = session.cache_info()
        assert info["store_misses"] == 2 and info["store_hits"] == 0

    def test_different_strategy_usage_misses(self, store_path):
        source, target = load_po1(), load_po2()
        session = MatchSession(store=store_path)
        session.match(source, target)
        session.match(source, target, strategy="Name(Max,Both,MaxN(1),Dice)")
        assert session.cache_info()["store_misses"] == 2

    def test_non_cacheable_strategies_bypass_store(self, store_path):
        from repro.repository import Repository

        source, target = load_po1(), load_po2()
        session = MatchSession(store=store_path, repository=Repository(":memory:"))
        # Reuse matchers depend on repository state: never stored.
        session.match(source, target, strategy="Name+Schema(Max,Both,MaxN(1),Dice)")
        info = session.cache_info()
        assert info["store_hits"] == 0 and info["store_misses"] == 0

    def test_token_artifacts_seed_the_next_session(self, store_path):
        source, target = load_po1(), load_po2()
        first = MatchSession(store=store_path)
        # A partial workload (one schema matched against itself) leaves
        # tokens behind even though the next session's pair differs.
        first.match(source, source)
        first.store.flush()
        second = MatchSession(store=store_path)
        assert len(second._token_memo) > 0
        # The seeded memo agrees with the tokenizer on every stored name.
        tokenizer = NameTokenizer()
        for name, tokens in second._token_memo.items():
            assert tokens == tokenizer.tokenize(name)
        first.store.close()

    def test_custom_library_bypasses_store(self, store_path):
        """Stored cubes are addressed by matcher *name*; a session whose
        library may resolve those names differently must never consult them."""
        from repro.matchers.base import NameStringMatcher
        from repro.matchers.registry import default_library
        from repro.matchers.string.edit_distance import EditDistanceMatcher

        source, target = load_po1(), load_po2()
        spec = "EditDistance(Average,Both,Thr(0.3),Average)"
        writer = MatchSession(store=store_path)
        writer.match(source, target, strategy=spec)
        writer.store.flush()

        library = default_library()
        library.register(
            "EditDistance",
            lambda: NameStringMatcher(EditDistanceMatcher(case_sensitive=True)),
            kind="simple",
            replace=True,
        )
        custom = MatchSession(store=store_path, library=library)
        reconfigured = custom.match(source, target, strategy=spec)
        info = custom.cache_info()
        assert info["store_hits"] == 0 and info["store_misses"] == 0
        # ... and the result really is the case-sensitive one, not the
        # store-writer's case-insensitive cube.
        expected = MatchSession(library=library).match(source, target, strategy=spec)
        assert outcome_rows(reconfigured) == outcome_rows(expected)
        writer.close()

    def test_schema_mutation_plus_clear_caches_re_addresses(self, store_path):
        """Renaming an element in place + clear_caches() must not serve the
        pre-mutation cube from the store."""
        source, target = load_po1(), load_po2()
        session = MatchSession(store=store_path)
        session.match(source, target)
        session.store.flush()
        # In-place mutation: same path count, different content.
        renamed = source.paths()[-1].leaf
        renamed.name = renamed.name + "Renamed"
        session.clear_caches()
        session.match(source, target)
        info = session.cache_info()
        assert info["store_misses"] == 2 and info["store_hits"] == 0
        renamed.name = renamed.name[: -len("Renamed")]  # restore shared dataset
        session.close()

    def test_session_close_persists_counters(self, store_path):
        source, target = load_po1(), load_po2()
        with MatchSession(store=store_path) as session:
            session.match(source, target)
            assert session._owns_store
        # close() flushed the async writes and persisted the counters.
        with SimilarityStore(store_path, writer=False) as store:
            info = store.info()
            assert info["cubes"] == 1
            assert info["lifetime_misses"] == 1

    def test_close_leaves_shared_store_running(self, store_path):
        shared = SimilarityStore(store_path)
        try:
            session = MatchSession(store=shared)
            session.match(load_po1(), load_po2())
            session.close()
            shared.flush()  # still open: the session did not own it
            assert shared.cube_count() == 1
        finally:
            shared.close()

    def test_cli_stats_rejects_missing_store(self, tmp_path, capsys):
        from repro.cli import console_main

        missing = str(tmp_path / "typo.db")
        assert console_main(["stats", "--store", missing]) == 1
        assert "no similarity store" in capsys.readouterr().err
        assert not (tmp_path / "typo.db").exists()

    def test_corrupt_store_file_raises_cleanly(self, tmp_path, capsys):
        from repro.cli import console_main
        from repro.exceptions import RepositoryError

        bogus = tmp_path / "not-a-database.db"
        bogus.write_text("CREATE TABLE pretend (x);")  # not SQLite
        with pytest.raises(RepositoryError):
            SimilarityStore(str(bogus), writer=False)
        # ... and the CLI surfaces it as a clean error, not a traceback.
        assert console_main(["stats", "--store", str(bogus)]) == 1
        assert "cannot open similarity store" in capsys.readouterr().err

    def test_store_disabled_with_cache_cubes_off(self, store_path):
        session = MatchSession(store=store_path, cache_cubes=False)
        session.match(load_po1(), load_po2())
        info = session.cache_info()
        assert info["store_hits"] == 0 and info["store_misses"] == 0

    def test_campaign_round_trip_byte_identical(self, store_path):
        """The Figure-8 all-pairs campaign: store-warm == store-less, exactly."""
        schemas = {}
        for task in load_all_tasks()[:3]:
            schemas[task.source.name] = task.source
            schemas[task.target.name] = task.target
        ordered = [schemas[name] for name in sorted(schemas)]
        pairs = [
            (a, b) for i, a in enumerate(ordered) for b in ordered[i + 1 :]
        ]
        baseline = [outcome_rows(o) for o in MatchSession().match_many(pairs)]

        warmup = MatchSession(store=store_path)
        warmup.match_many(pairs)
        warmup.store.flush()

        warm = MatchSession(store=store_path)
        outcomes = warm.match_many(pairs)
        assert [outcome_rows(o) for o in outcomes] == baseline
        info = warm.cache_info()
        assert info["store_hits"] == len(pairs) and info["store_misses"] == 0
        warmup.store.close()


@pytest.fixture()
def matched_outcome():
    return MatchSession().match(load_po1(), load_po2())


def store_one(store, outcome, key="key"):
    store.store_cube(key, outcome.cube, "s", "t", outcome.cube.matcher_names, "c")


class TestDtypeContract:
    """The layer-dtype contract: float64 exact, float32/uint16 at tolerance."""

    def test_unknown_dtype_rejected(self, store_path):
        from repro.exceptions import RepositoryError

        with pytest.raises(RepositoryError):
            SimilarityStore(store_path, writer=False, dtype="float16")

    def test_float64_stays_bit_exact(self, store_path, matched_outcome):
        with SimilarityStore(store_path, writer=False) as store:
            assert store.dtype == "float64"
            store_one(store, matched_outcome)
            loaded = store.load_cube(
                "key", load_po1().paths(), load_po2().paths()
            )
            assert np.array_equal(
                loaded.as_array(), matched_outcome.cube.as_array()
            )

    @pytest.mark.parametrize("dtype,tolerance", [
        ("float32", 1e-7),
        ("uint16", 1e-4),
    ])
    def test_compact_round_trip_tolerance(
        self, store_path, matched_outcome, dtype, tolerance
    ):
        with SimilarityStore(store_path, writer=False, dtype=dtype) as store:
            store_one(store, matched_outcome)
            loaded = store.load_cube(
                "key", load_po1().paths(), load_po2().paths()
            )
            error = np.max(
                np.abs(loaded.as_array() - matched_outcome.cube.as_array())
            )
            assert error <= tolerance

    def test_uint16_exact_error_bound_and_size(self, store_path, matched_outcome):
        from repro.repository.store import UINT16_MAX_ERROR

        sizes = {}
        for dtype in ("float64", "uint16"):
            with SimilarityStore(
                str(store_path) + f".{dtype}", writer=False, dtype=dtype
            ) as store:
                store_one(store, matched_outcome)
                info = store.info()
                sizes[dtype] = info["cube_bytes"]
                loaded = store.load_cube(
                    "key", load_po1().paths(), load_po2().paths()
                )
                error = np.max(
                    np.abs(loaded.as_array() - matched_outcome.cube.as_array())
                )
                if dtype == "uint16":
                    assert error <= UINT16_MAX_ERROR
        # The quantized tier stores at most 30% of the float64 bytes (the
        # raw array ratio is 25%; headers stay below the 5-point slack).
        assert sizes["uint16"] <= 0.30 * sizes["float64"]

    def test_mixed_dtype_store_stays_readable(self, store_path, matched_outcome):
        # Write under uint16, reopen under float64: reads honour the per-blob
        # header, so the quantized cube still loads.
        with SimilarityStore(store_path, writer=False, dtype="uint16") as store:
            store_one(store, matched_outcome, key="quantized")
        with SimilarityStore(store_path, writer=False) as store:
            store_one(store, matched_outcome, key="exact")
            for key in ("quantized", "exact"):
                assert store.load_cube(
                    key, load_po1().paths(), load_po2().paths()
                ) is not None
            breakdown = store.info()["cube_dtypes"]
            assert breakdown["uint16"]["cubes"] == 1
            assert breakdown["float64"]["cubes"] == 1
            assert breakdown["uint16"]["bytes"] < breakdown["float64"]["bytes"]


class TestMmapTier:
    def test_external_blob_round_trip_and_breakdown(
        self, store_path, matched_outcome
    ):
        import os

        with SimilarityStore(
            store_path, writer=False, mmap_threshold=0
        ) as store:
            store_one(store, matched_outcome)
            side = store._side_path("key")
            assert os.path.exists(side)
            loaded = store.load_cube(
                "key", load_po1().paths(), load_po2().paths()
            )
            assert np.array_equal(
                loaded.as_array(), matched_outcome.cube.as_array()
            )
            assert store.info()["cube_dtypes"]["float64"]["external"] == 1

    def test_short_side_file_degrades_to_miss(self, store_path, matched_outcome):
        with SimilarityStore(
            store_path, writer=False, mmap_threshold=0
        ) as store:
            store_one(store, matched_outcome)
            with open(store._side_path("key"), "wb") as handle:
                handle.write(b"\x00" * 8)  # truncated payload
            assert store.load_cube(
                "key", load_po1().paths(), load_po2().paths()
            ) is None
            assert store.info()["misses"] == 1

    def test_missing_side_file_degrades_to_miss(self, store_path, matched_outcome):
        import os

        with SimilarityStore(
            store_path, writer=False, mmap_threshold=0
        ) as store:
            store_one(store, matched_outcome)
            os.remove(store._side_path("key"))
            assert store.load_cube(
                "key", load_po1().paths(), load_po2().paths()
            ) is None

    def test_inline_rewrite_drops_stale_side_file(self, store_path, matched_outcome):
        import os

        with SimilarityStore(
            store_path, writer=False, mmap_threshold=0
        ) as store:
            store_one(store, matched_outcome)
            side = store._side_path("key")
            assert os.path.exists(side)
        # The same key rewritten inline (tier disabled) must not leave the
        # orphaned side file behind to shadow future external writes.
        with SimilarityStore(
            store_path, writer=False, mmap_threshold=None
        ) as store:
            store_one(store, matched_outcome)
            assert not os.path.exists(side)
            loaded = store.load_cube(
                "key", load_po1().paths(), load_po2().paths()
            )
            assert np.array_equal(
                loaded.as_array(), matched_outcome.cube.as_array()
            )


class TestWritableLoads:
    """Satellite regression: loaded cubes are never read-only views."""

    @pytest.mark.parametrize("kwargs", [
        {},  # inline float64 (the np.frombuffer copy path)
        {"dtype": "uint16"},  # astype decode path
        {"mmap_threshold": 0},  # copy-on-write memmap path
    ])
    def test_loaded_stack_is_mutable(self, store_path, matched_outcome, kwargs):
        source_paths, target_paths = load_po1().paths(), load_po2().paths()
        with SimilarityStore(store_path, writer=False, **kwargs) as store:
            store_one(store, matched_outcome)
            loaded = store.load_cube("key", source_paths, target_paths)
            layer = loaded.layer(loaded.matcher_names[0])
            # The write path of the matrix API lands in the backing array; a
            # read-only np.frombuffer view here raised "assignment
            # destination is read-only" before the load-boundary copy.
            layer.set(source_paths[0], target_paths[0], 0.123)
            assert layer.get(source_paths[0], target_paths[0]) == 0.123

    def test_rebuilt_wire_outcome_is_mutable(self, matched_outcome):
        from repro.parallel import codec

        header, buffers = codec.decode_frame(
            codec.encode_outcomes([matched_outcome])
        )
        rebuilt = codec.rebuild_outcome(
            header["items"][0],
            buffers,
            matched_outcome.context.source_schema,
            matched_outcome.context.target_schema,
            matched_outcome.strategy,
            matched_outcome.context,
        )
        source_paths = matched_outcome.context.source_schema.paths()
        target_paths = matched_outcome.context.target_schema.paths()
        rebuilt.cube.layer(rebuilt.cube.matcher_names[0]).set(
            source_paths[0], target_paths[0], 0.5
        )
        rebuilt.aggregated.set(source_paths[0], target_paths[0], 0.5)

    @pytest.mark.parametrize("wire_dtype,tolerance", [
        ("float64", 0.0),
        ("uint16", 1e-4),
    ])
    def test_wire_cube_dtype_round_trip(self, matched_outcome, wire_dtype, tolerance):
        from repro.parallel import codec

        header, buffers = codec.decode_frame(
            codec.encode_outcomes([matched_outcome], cube_dtype=wire_dtype)
        )
        assert header["items"][0]["cube_dtype"] == wire_dtype
        rebuilt = codec.rebuild_outcome(
            header["items"][0],
            buffers,
            matched_outcome.context.source_schema,
            matched_outcome.context.target_schema,
            matched_outcome.strategy,
            matched_outcome.context,
        )
        error = np.max(
            np.abs(rebuilt.cube.as_array() - matched_outcome.cube.as_array())
        )
        assert error <= tolerance
        # The mapping-deciding floats stay float64-exact whatever the cube tier.
        assert outcome_rows(rebuilt) == outcome_rows(matched_outcome)
        assert rebuilt.schema_similarity == matched_outcome.schema_similarity


class TestPruneReclaimsDisk:
    def test_prune_shrinks_the_database_file(self, store_path, matched_outcome):
        import os

        def on_disk():
            total = os.path.getsize(store_path)
            wal = store_path + "-wal"
            if os.path.exists(wal):
                total += os.path.getsize(wal)
            return total

        with SimilarityStore(store_path, writer=False) as store:
            for index in range(60):
                store_one(store, matched_outcome, key=f"key{index}")
            store._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            before = on_disk()
            removed = store.prune_cubes(1)
            assert removed == 59
            assert store.cube_count() == 1
            after = on_disk()
            # VACUUM genuinely returns the freed pages to the filesystem.
            assert after < before * 0.5, (before, after)

    def test_prune_unlinks_external_side_files(self, store_path, matched_outcome):
        import os

        with SimilarityStore(
            store_path, writer=False, mmap_threshold=0
        ) as store:
            for index in range(4):
                store_one(store, matched_outcome, key=f"key{index}")
            sides = [store._side_path(f"key{index}") for index in range(4)]
            assert all(os.path.exists(side) for side in sides)
            store.prune_cubes(1)
            remaining = [side for side in sides if os.path.exists(side)]
            assert len(remaining) == 1


class TestSessionDtypePlumbing:
    def test_path_store_honours_store_dtype(self, store_path):
        session = MatchSession(store=store_path, store_dtype="uint16")
        try:
            assert session.store.dtype == "uint16"
            session.match(load_po1(), load_po2())
            session.store.flush()
            breakdown = session.store.info()["cube_dtypes"]
            assert set(breakdown) == {"uint16"}
        finally:
            session.close()

    def test_conflicting_object_store_dtype_raises(self, store_path):
        from repro.exceptions import SessionError

        shared = SimilarityStore(store_path)  # float64 writer
        try:
            with pytest.raises(SessionError):
                MatchSession(store=shared, store_dtype="uint16")
            # A matching hint is fine.
            MatchSession(store=shared, store_dtype="float64").close()
        finally:
            shared.close()

    def test_unknown_store_dtype_raises(self):
        from repro.exceptions import SessionError

        with pytest.raises(SessionError):
            MatchSession(store_dtype="float16")

    def test_warm_uint16_session_is_within_tolerance(self, store_path):
        source, target = load_po1(), load_po2()
        baseline = outcome_rows(MatchSession().match(source, target))
        first = MatchSession(store=store_path, store_dtype="uint16")
        first.match(source, target)
        first.close()
        second = MatchSession(store=store_path, store_dtype="uint16")
        try:
            warm = second.match(source, target)
            assert second.cache_info()["store_hits"] == 1
            rows = outcome_rows(warm)
            assert [(s, t) for s, t, _ in rows] == [(s, t) for s, t, _ in baseline]
            for (_, _, got), (_, _, want) in zip(rows, baseline):
                assert abs(got - want) <= 1e-4
        finally:
            second.close()


class TestServiceIntegration:
    def test_service_store_wiring_and_stats(self, store_path, tmp_path):
        from repro.datasets.figure1 import PO1_DDL, PO2_XSD

        service = MatchService(pool_size=1, store_path=store_path)
        status, _ = service.handle_request(
            "POST", "/schemas", {"name": "PO1", "text": PO1_DDL, "format": "sql"}
        )
        assert status == 201
        status, _ = service.handle_request(
            "POST", "/schemas", {"name": "PO2", "text": PO2_XSD, "format": "xsd"}
        )
        assert status == 201
        status, first = service.handle_request(
            "POST", "/match", {"source": "PO1", "target": "PO2"}
        )
        assert status == 200
        status, stats = service.handle_request("GET", "/stats", None)
        assert status == 200
        assert stats["store"]["path"] == store_path
        assert stats["pool"]["store_misses"] == 1
        assert stats["kernel_memo"]["max_entries"] > 0
        service.close()

        # A "restarted" service over the same store answers warm.
        restarted = MatchService(pool_size=1, store_path=store_path)
        restarted.handle_request(
            "POST", "/schemas", {"name": "PO1", "text": PO1_DDL, "format": "sql"}
        )
        restarted.handle_request(
            "POST", "/schemas", {"name": "PO2", "text": PO2_XSD, "format": "xsd"}
        )
        status, second = restarted.handle_request(
            "POST", "/match", {"source": "PO1", "target": "PO2"}
        )
        assert status == 200
        assert second["correspondences"] == first["correspondences"]
        status, stats = restarted.handle_request("GET", "/stats", None)
        assert stats["pool"]["store_hits"] == 1
        assert stats["store"]["lifetime_misses"] >= 1
        restarted.close()

    def test_health_reports_store(self, store_path):
        service = MatchService(pool_size=1, store_path=store_path)
        status, payload = service.handle_request("GET", "/health", None)
        assert status == 200
        assert payload["store"] == store_path
        service.close()

    def test_service_store_dtype_wiring(self, store_path):
        from repro.datasets.figure1 import PO1_DDL, PO2_XSD

        service = MatchService(
            pool_size=1, store_path=store_path, store_dtype="uint16"
        )
        try:
            for name, text, fmt in (
                ("PO1", PO1_DDL, "sql"), ("PO2", PO2_XSD, "xsd")
            ):
                service.handle_request(
                    "POST", "/schemas", {"name": name, "text": text, "format": fmt}
                )
            status, _ = service.handle_request(
                "POST", "/match", {"source": "PO1", "target": "PO2"}
            )
            assert status == 200
            status, stats = service.handle_request("GET", "/stats", None)
            assert stats["store"]["dtype"] == "uint16"
        finally:
            service.close()
        with SimilarityStore(store_path, writer=False) as store:
            breakdown = store.info()["cube_dtypes"]
            assert set(breakdown) == {"uint16"}

    def test_service_store_dtype_validation(self, store_path):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError):
            MatchService(pool_size=1, store_path=store_path, store_dtype="float16")
        with pytest.raises(ServiceError):
            MatchService(pool_size=1, store_dtype="uint16")  # no store_path

    def test_cli_serve_store_dtype_requires_store(self, capsys):
        from repro.cli import console_main

        assert console_main(["serve", "--store-dtype", "uint16"]) == 1
        assert "--store-dtype requires --store" in capsys.readouterr().err
