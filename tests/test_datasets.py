"""Tests for the bundled datasets: Figure 1, the five PO schemas, gold standards, generators."""

import pytest

from repro.datasets.figure1 import figure1_reference_mapping, load_figure1_schemas
from repro.datasets.generators import generate_pair, generate_schema, generate_size_sweep
from repro.datasets.gold_standard import (
    TASK_PAIRS,
    load_all_tasks,
    load_task,
    manual_mappings_for_reuse,
    task_by_name,
)
from repro.datasets.purchase_orders import (
    SCHEMA_ALIASES,
    load_all_with_concepts,
    load_schema,
    load_schema_with_concepts,
    schema_names,
)
from repro.exceptions import SchemaError


class TestFigure1:
    def test_schemas_load(self):
        po1, po2 = load_figure1_schemas()
        assert po1.name == "PO1" and po2.name == "PO2"
        assert len(po1.paths()) == 12
        # PO2 shares the Address fragment: 11 paths from 8 non-root nodes
        assert len(po2.paths()) == 11

    def test_reference_mapping_paths_resolve(self):
        reference = figure1_reference_mapping()
        assert len(reference) == 8
        assert all(c.similarity == 1.0 for c in reference)


class TestPurchaseOrderSchemas:
    def test_aliases_and_names(self):
        assert schema_names() == ("CIDX", "Excel", "Noris", "Paragon", "Apertum")
        assert SCHEMA_ALIASES[1] == "CIDX"
        assert load_schema(3).name == "Noris"
        assert load_schema("Paragon").name == "Paragon"

    def test_unknown_schema_rejected(self):
        with pytest.raises(SchemaError):
            load_schema("BizTalk")
        with pytest.raises(SchemaError):
            load_schema(9)

    def test_relative_sizes_follow_table5(self):
        """Apertum is the largest by paths, CIDX the smallest; shared fragments inflate paths."""
        stats = {name: load_schema(name).statistics() for name in schema_names()}
        assert stats["CIDX"].path_count < stats["Excel"].path_count
        assert stats["Apertum"].path_count == max(s.path_count for s in stats.values())
        # CIDX has no shared fragments: paths == nodes
        assert stats["CIDX"].path_count == stats["CIDX"].node_count
        # Excel, Noris and Apertum use shared fragments: paths > nodes
        for name in ("Excel", "Noris", "Apertum"):
            assert stats[name].path_count > stats[name].node_count
        # Paragon is the deepest schema
        assert stats["Paragon"].max_depth == max(s.max_depth for s in stats.values())

    def test_concepts_reference_existing_paths(self):
        for name, (schema, concepts) in load_all_with_concepts().items():
            path_strings = {p.dotted() for p in schema.paths()}
            assert set(concepts) == path_strings, f"concept keys mismatch for {name}"

    def test_concepts_are_mostly_unique_per_schema(self):
        for name, (_, concepts) in load_all_with_concepts().items():
            non_null = [c for c in concepts.values() if c is not None]
            # duplicates would create m:n gold matches; allow none
            assert len(non_null) == len(set(non_null)), f"duplicate concepts in {name}"

    def test_every_schema_has_unmatched_elements(self):
        for _, (_, concepts) in load_all_with_concepts().items():
            assert any(c is None for c in concepts.values())


class TestGoldStandard:
    def test_ten_tasks(self):
        tasks = load_all_tasks()
        assert len(tasks) == 10
        assert len(TASK_PAIRS) == 10
        assert [t.name for t in tasks][0] == "1<->2"

    def test_task_properties(self, small_task):
        assert small_task.schema_pair == ("CIDX", "Excel")
        assert small_task.match_count > 20
        assert 0.3 <= small_task.schema_similarity <= 0.9
        assert small_task.total_paths == len(small_task.source.paths()) + len(
            small_task.target.paths()
        )
        assert small_task.matched_path_count <= small_task.total_paths

    def test_gold_similarities_are_one(self, small_task):
        assert all(c.similarity == 1.0 for c in small_task.reference)

    def test_schema_similarity_moderate_across_tasks(self, all_tasks):
        """The paper reports schema similarities mostly around 0.5 (Figure 8)."""
        similarities = [t.schema_similarity for t in all_tasks]
        assert all(0.3 <= s <= 0.85 for s in similarities)
        assert 0.45 <= sum(similarities) / len(similarities) <= 0.75

    def test_task_by_name(self):
        task = task_by_name("2<->5")
        assert task.schema_pair == ("Excel", "Apertum")
        with pytest.raises(ValueError):
            task_by_name("weird")

    def test_task_loading_is_symmetric_in_size(self):
        forward = load_task(1, 2)
        backward = load_task(2, 1)
        assert forward.match_count == backward.match_count

    def test_manual_mappings_for_reuse(self):
        mappings = manual_mappings_for_reuse()
        assert len(mappings) == 10
        assert all(len(m) > 0 for m in mappings)


class TestGenerators:
    def test_generated_schema_shape(self):
        schema, concepts = generate_schema("G", sections=3, fields_per_section=4)
        statistics = schema.statistics()
        assert statistics.inner_node_count == 3
        assert statistics.leaf_node_count == 12
        assert set(concepts) == {p.dotted() for p in schema.paths()}

    def test_generation_is_deterministic(self):
        first = generate_schema("G", sections=3, fields_per_section=4, seed=11)
        second = generate_schema("G", sections=3, fields_per_section=4, seed=11)
        assert {p.dotted() for p in first[0].paths()} == {p.dotted() for p in second[0].paths()}
        assert first[1] == second[1]

    def test_pair_has_gold_standard(self):
        pair = generate_pair(sections=3, fields_per_section=4, overlap=1.0)
        assert len(pair.reference) > 0
        assert pair.source.name != pair.target.name

    def test_overlap_controls_gold_size(self):
        dense = generate_pair(sections=4, fields_per_section=5, overlap=1.0)
        sparse = generate_pair(sections=4, fields_per_section=5, overlap=0.2)
        assert len(dense.reference) > len(sparse.reference)

    def test_size_sweep(self):
        pairs = generate_size_sweep(sizes=(2, 4))
        assert len(pairs) == 2
        assert len(pairs[1].source.paths()) > len(pairs[0].source.paths())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_schema("G", sections=0)
        with pytest.raises(ValueError):
            generate_schema("G", overlap=2.0)
