"""Concurrency tests: one shared MatchSession hammered from many threads.

The session guarantees (see the module docstring of ``repro.session.session``):

* results are byte-identical to serial execution,
* the caches never corrupt (no lost inserts, no iteration races with trims),
* ``cube_hits + cube_misses`` equals the number of cacheable executions.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets.figure1 import load_po1, load_po2
from repro.datasets.gold_standard import load_task
from repro.session import MatchSession

#: Cacheable strategies (hybrid matchers only) with distinct combinations.
SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "All(Max,Both,Thr(0.5)+MaxN(1),Average)",
    "Name+Leaves(Average,Both,Thr(0.6),Dice)",
)

THREADS = 8


def _result_rows(outcome):
    return [
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    ]


@pytest.fixture(scope="module")
def schema_pairs():
    """Shared schema objects: two distinct pairs, loaded once."""
    task = load_task(1, 2)
    return [(load_po1(), load_po2()), (task.source, task.target)]


def _mixed_workload(session, pairs, worker_index):
    """One thread's operation mix; returns labelled, comparable results."""
    results = []
    for round_index in range(3):
        source, target = pairs[(worker_index + round_index) % len(pairs)]
        spec = SPECS[(worker_index + round_index) % len(SPECS)]
        kind = (worker_index + round_index) % 3
        if kind == 0:
            outcome = session.match(source, target, strategy=spec)
            results.append(("match", source.name, target.name, spec,
                            _result_rows(outcome)))
        elif kind == 1:
            outcomes = session.match_many(
                [(source, target, spec), (target, source, spec)]
            )
            results.append(("match_many", source.name, target.name, spec,
                            [_result_rows(outcome) for outcome in outcomes]))
        else:
            similarity = session.schema_similarity(source, target, strategy=spec)
            results.append(("schema_similarity", source.name, target.name, spec,
                            similarity))
    return results


def _cacheable_executions(results):
    """How many cube executions a result list accounts for."""
    count = 0
    for kind, *_ in results:
        count += 2 if kind == "match_many" else 1
    return count


class TestConcurrentSession:
    def test_concurrent_results_byte_identical_to_serial(self, schema_pairs):
        serial_session = MatchSession()
        serial = [
            _mixed_workload(serial_session, schema_pairs, index)
            for index in range(THREADS)
        ]

        shared = MatchSession()
        with ThreadPoolExecutor(max_workers=THREADS) as executor:
            concurrent = list(
                executor.map(
                    lambda index: _mixed_workload(shared, schema_pairs, index),
                    range(THREADS),
                )
            )
        assert concurrent == serial

    def test_counters_consistent_under_concurrency(self, schema_pairs):
        session = MatchSession()
        with ThreadPoolExecutor(max_workers=THREADS) as executor:
            results = list(
                executor.map(
                    lambda index: _mixed_workload(session, schema_pairs, index),
                    range(THREADS),
                )
            )
        executions = sum(_cacheable_executions(result) for result in results)
        info = session.cache_info()
        # Every cacheable execution is accounted for exactly once.
        assert info["cube_hits"] + info["cube_misses"] == executions
        # Distinct (ordered pair, matcher usage) keys bound the cache; racing
        # threads may only converge on fewer-or-equal distinct entries.
        distinct_keys = len(
            {(s.name, t.name, spec) for s, t in schema_pairs for spec in SPECS}
        ) * 2  # both orientations appear via match_many
        assert 0 < info["cubes"] <= distinct_keys
        # One profile per distinct schema object (setdefault convergence).
        assert info["profiles"] == 4

    def test_concurrent_profile_for_converges(self, schema_pairs):
        session = MatchSession()
        schema = schema_pairs[0][0]
        with ThreadPoolExecutor(max_workers=THREADS) as executor:
            profiles = list(
                executor.map(lambda _: session.profile_for(schema), range(32))
            )
        assert all(profile is profiles[0] for profile in profiles)
        assert session.cache_info()["profiles"] == 1

    def test_trim_races_with_inserts(self, schema_pairs):
        """A tiny profile bound forces constant evictions while threads insert."""
        session = MatchSession(max_cached_profiles=1, max_cached_cubes=1)
        pairs = schema_pairs * 2

        def churn(index):
            source, target = pairs[index % len(pairs)]
            outcome = session.match(source, target, strategy=SPECS[index % len(SPECS)])
            return _result_rows(outcome)

        with ThreadPoolExecutor(max_workers=THREADS) as executor:
            results = list(executor.map(churn, range(32)))
        assert len(results) == 32
        info = session.cache_info()
        assert info["profiles"] <= 1
        assert info["cubes"] <= 1

    def test_concurrent_strategy_registry(self):
        session = MatchSession()
        barrier = threading.Barrier(THREADS)

        def register(index):
            barrier.wait(timeout=10)
            session.save_strategy(f"strategy-{index % 4}", SPECS[index % len(SPECS)])
            return session.load_strategy(f"strategy-{index % 4}")

        with ThreadPoolExecutor(max_workers=THREADS) as executor:
            loaded = list(executor.map(register, range(THREADS)))
        assert len(loaded) == THREADS
        assert session.strategy_names() == (
            "strategy-0", "strategy-1", "strategy-2", "strategy-3",
        )
