"""Tests for the synonym dictionary."""

import pytest

from repro.auxiliary.synonyms import (
    SynonymDictionary,
    TermRelationship,
    default_purchase_order_synonyms,
)


class TestSynonymDictionary:
    def test_identity_is_synonymy(self):
        dictionary = SynonymDictionary()
        assert dictionary.similarity("City", "city") == 1.0
        assert dictionary.relationship("x", "X") is TermRelationship.SYNONYM

    def test_unknown_pair_scores_zero(self):
        dictionary = SynonymDictionary()
        assert dictionary.similarity("ship", "zebra") == 0.0
        assert dictionary.relationship("ship", "zebra") is None

    def test_synonym_and_hypernym_scores(self):
        dictionary = SynonymDictionary()
        dictionary.add("ship", "deliver")
        dictionary.add_hypernym("city", "address")
        assert dictionary.similarity("ship", "deliver") == 1.0
        assert dictionary.similarity("deliver", "ship") == 1.0
        assert dictionary.similarity("address", "city") == pytest.approx(0.8)

    def test_relationship_similarity_override(self):
        dictionary = SynonymDictionary({TermRelationship.HYPERNYM: 0.5})
        dictionary.add_hypernym("city", "address")
        assert dictionary.similarity("city", "address") == 0.5
        with pytest.raises(ValueError):
            dictionary.set_relationship_similarity(TermRelationship.SYNONYM, 2.0)

    def test_add_synonym_groups(self):
        dictionary = SynonymDictionary()
        dictionary.add_synonyms(("a", "b", "c"))
        assert dictionary.similarity("a", "c") == 1.0
        assert dictionary.similarity("b", "c") == 1.0
        assert len(dictionary) == 3

    def test_empty_entries_rejected(self):
        dictionary = SynonymDictionary()
        with pytest.raises(ValueError):
            dictionary.add("", "x")

    def test_merge(self):
        first = SynonymDictionary()
        first.add("ship", "deliver")
        second = SynonymDictionary()
        second.add("bill", "invoice")
        merged = first.merged_with(second)
        assert merged.similarity("ship", "deliver") == 1.0
        assert merged.similarity("bill", "invoice") == 1.0

    def test_contains(self):
        dictionary = SynonymDictionary()
        dictionary.add("ship", "deliver")
        assert ("deliver", "ship") in dictionary
        assert ("ship", "zebra") not in dictionary


class TestDefaultDictionary:
    def test_paper_domain_synonyms_present(self):
        dictionary = default_purchase_order_synonyms()
        assert dictionary.similarity("ship", "deliver") == 1.0
        assert dictionary.similarity("bill", "invoice") == 1.0
        assert dictionary.similarity("customer", "buyer") == 1.0

    def test_hypernyms_present(self):
        dictionary = default_purchase_order_synonyms()
        assert dictionary.similarity("city", "address") == pytest.approx(0.8)
