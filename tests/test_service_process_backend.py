"""The HTTP service on the process backend: same API, same bytes, more cores."""

from __future__ import annotations

import threading

import pytest

from repro.datasets.figure1 import PO1_DDL, PO2_XSD, load_po1, load_po2
from repro.exceptions import ServiceError
from repro.service import MatchService, ServiceClient, create_server
from repro.session import MatchSession


@pytest.fixture(scope="module")
def process_client():
    """A running process-backend server (two workers) + client."""
    server = create_server(port=0, pool_size=2, backend="process")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)
    client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
    client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
    yield client
    client.shutdown()
    thread.join(timeout=10)
    server.server_close()


def _expected_rows(source, target, strategy=None):
    outcome = MatchSession().match(source, target, strategy=strategy)
    return [
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    ]


def _rows(result: dict):
    return [
        (row["source"], row["target"], row["similarity"])
        for row in result["correspondences"]
    ]


class TestProcessBackendEndpoints:
    def test_health_reports_the_backend(self, process_client):
        payload = process_client.health()
        assert payload["status"] == "ok"
        assert payload["backend"] == "process"
        assert payload["pool_size"] == 2

    def test_match_is_identical_to_the_in_process_session(self, process_client):
        result = process_client.match("PO1", "PO2")
        assert _rows(result) == _expected_rows(load_po1(), load_po2())

    def test_match_with_a_spec_strategy(self, process_client):
        spec = "Name+Leaves(Average,Both,Thr(0.6),Dice)"
        result = process_client.match("PO1", "PO2", strategy=spec)
        assert result["strategy"] == spec
        assert _rows(result) == _expected_rows(load_po1(), load_po2(), strategy=spec)

    def test_match_with_a_stored_strategy_name(self, process_client):
        process_client.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
        result = process_client.match("PO1", "PO2", strategy="tuned")
        assert _rows(result) == _expected_rows(
            load_po1(), load_po2(), strategy="All(Max,Both,Thr(0.6),Dice)"
        )

    def test_batch_preserves_order_and_bytes(self, process_client):
        results = process_client.match_batch(
            [
                {"source": "PO1", "target": "PO2"},
                {"source": "PO2", "target": "PO1"},
            ]
        )
        assert [r["source"] for r in results] == ["PO1", "PO2"]
        assert _rows(results[1]) == _expected_rows(load_po2(), load_po1())

    def test_unknown_schema_is_a_clean_404(self, process_client):
        with pytest.raises(ServiceError) as excinfo:
            process_client.match("PO1", "Nope")
        assert excinfo.value.status == 404

    def test_stats_expose_per_worker_counters(self, process_client):
        stats = process_client.stats()
        assert stats["backend"] == "process"
        pool = stats["pool"]
        assert pool["backend"] == "process"
        assert len(pool["shards"]) == 2 and len(pool["workers"]) == 2
        workers = pool["workers"]
        assert all(isinstance(worker["pid"], int) for worker in workers)
        assert sum(worker["requests"] for worker in workers) >= 1
        assert pool["cube_hits"] + pool["cube_misses"] >= 1


class TestBackendValidation:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ServiceError):
            MatchService(pool_size=1, backend="gevent")

    def test_session_factory_conflicts_with_the_process_backend(self):
        with pytest.raises(ServiceError):
            MatchService(
                pool_size=1, backend="process", session_factory=MatchSession
            )

    def test_thread_backend_stays_the_default(self):
        service = MatchService(pool_size=1)
        assert service.backend == "thread"
        status, payload = service.handle_request("GET", "/health", None)
        assert (status, payload["backend"]) == (200, "thread")
