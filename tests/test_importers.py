"""Tests for the relational, XSD and dict importers and the importer registry."""

import json

import pytest

from repro.datasets.figure1 import PO1_DDL, PO2_XSD
from repro.exceptions import ImportError_
from repro.importers.dictspec import DictImporter
from repro.importers.registry import default_registry
from repro.importers.relational import RelationalImporter
from repro.importers.xsd import XsdImporter
from repro.model.datatypes import GenericType


class TestRelationalImporter:
    def test_figure1_po1(self):
        schema = RelationalImporter().import_text(PO1_DDL, "PO1")
        dotted = {p.dotted() for p in schema.paths()}
        assert "PO1.ShipTo.shipToCity" in dotted
        assert "PO1.Customer.custName" in dotted
        assert schema.find_path("PO1.ShipTo.shipToCity").generic_type is GenericType.STRING
        assert schema.find_path("PO1.ShipTo.poNo").generic_type is GenericType.INTEGER

    def test_foreign_key_becomes_reference_link(self):
        schema = RelationalImporter().import_text(PO1_DDL, "PO1")
        references = schema.references()
        assert len(references) == 1
        assert references[0].source.name == "custNo"
        assert references[0].target.name == "Customer"

    def test_table_constraints_are_skipped(self):
        ddl = """
        CREATE TABLE t (
            id INT,
            name VARCHAR(10) NOT NULL,
            PRIMARY KEY (id),
            FOREIGN KEY (name) REFERENCES other(name)
        );
        """
        schema = RelationalImporter().import_text(ddl, "S")
        assert {e.name for e in schema.children(schema.find_element("t"))} == {"id", "name"}

    def test_comments_are_ignored(self):
        ddl = "-- a comment\nCREATE TABLE t (id INT /* inline */, x INT);"
        schema = RelationalImporter().import_text(ddl, "S")
        assert len(schema.find_elements("x")) == 1

    def test_no_tables_raises(self):
        with pytest.raises(ImportError_):
            RelationalImporter().import_text("SELECT 1;", "S")

    def test_schema_qualified_table_name(self):
        ddl = 'CREATE TABLE myschema.Orders (id INT);'
        schema = RelationalImporter().import_text(ddl, "S")
        assert len(schema.find_elements("Orders")) == 1


class TestXsdImporter:
    def test_figure1_po2_shared_fragment(self):
        schema = XsdImporter().import_text(PO2_XSD, "PO2")
        dotted = {p.dotted() for p in schema.paths()}
        assert "PO2.PO2.DeliverTo.Address.City" in dotted
        assert "PO2.PO2.BillTo.Address.City" in dotted
        address_nodes = schema.find_elements("Address")
        assert len(address_nodes) == 1
        assert schema.is_shared(address_nodes[0])

    def test_global_element_with_inline_type(self):
        text = """<?xml version="1.0"?>
        <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
          <xsd:element name="Order">
            <xsd:complexType>
              <xsd:sequence>
                <xsd:element name="Id" type="xsd:int"/>
                <xsd:element name="Note" type="xsd:string"/>
              </xsd:sequence>
              <xsd:attribute name="version" type="xsd:string"/>
            </xsd:complexType>
          </xsd:element>
        </xsd:schema>
        """
        schema = XsdImporter().import_text(text, "S")
        dotted = {p.dotted() for p in schema.paths()}
        assert "S.Order.Id" in dotted
        assert "S.Order.version" in dotted
        assert schema.find_path("S.Order.Id").generic_type is GenericType.INTEGER

    def test_invalid_xml_raises(self):
        with pytest.raises(ImportError_):
            XsdImporter().import_text("<not-closed>", "S")

    def test_non_schema_root_raises(self):
        with pytest.raises(ImportError_):
            XsdImporter().import_text("<foo/>", "S")

    def test_empty_schema_raises(self):
        text = '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"/>'
        with pytest.raises(ImportError_):
            XsdImporter().import_text(text, "S")


class TestDictImporter:
    def test_simple_spec(self):
        spec = {
            "name": "PO",
            "elements": [
                {"name": "ShipTo", "children": [{"name": "City", "type": "xsd:string"}]},
            ],
        }
        schema = DictImporter().import_spec(spec)
        assert "PO.ShipTo.City" in {p.dotted() for p in schema.paths()}

    def test_fragments(self):
        spec = {
            "name": "PO",
            "fragments": [
                {"name": "Address", "children": [{"name": "City", "type": "xsd:string"}]},
            ],
            "elements": [
                {"name": "ShipTo", "children": [{"fragment": "Address"}]},
                {"name": "BillTo", "children": [{"fragment": "Address"}]},
            ],
        }
        schema = DictImporter().import_spec(spec)
        dotted = {p.dotted() for p in schema.paths()}
        assert "PO.ShipTo.Address.City" in dotted
        assert "PO.BillTo.Address.City" in dotted

    def test_json_round_trip(self):
        spec = {"name": "PO", "elements": [{"name": "x", "type": "int"}]}
        schema = DictImporter().import_text(json.dumps(spec), "ignored")
        assert schema.name == "PO"

    def test_errors(self):
        importer = DictImporter()
        with pytest.raises(ImportError_):
            importer.import_text("not json", "S")
        with pytest.raises(ImportError_):
            importer.import_spec({"name": "S", "elements": []})
        with pytest.raises(ImportError_):
            importer.import_spec({"name": "S", "elements": [{"type": "int"}]})
        with pytest.raises(ImportError_):
            importer.import_spec(
                {"name": "S", "elements": [{"name": "a", "children": [{"fragment": "missing"}]}]}
            )


class TestRegistry:
    def test_formats(self):
        registry = default_registry()
        assert set(registry.formats()) == {"sql", "xsd", "dict"}

    def test_import_file_by_suffix(self, tmp_path):
        registry = default_registry()
        ddl_file = tmp_path / "po1.sql"
        ddl_file.write_text(PO1_DDL, encoding="utf-8")
        schema = registry.import_file(ddl_file)
        assert schema.name == "po1"
        xsd_file = tmp_path / "po2.xsd"
        xsd_file.write_text(PO2_XSD, encoding="utf-8")
        schema = registry.import_file(xsd_file, name="PO2")
        assert schema.name == "PO2"

    def test_unknown_suffix(self, tmp_path):
        registry = default_registry()
        with pytest.raises(ImportError_):
            registry.for_file(tmp_path / "schema.unknown")

    def test_unknown_format(self):
        registry = default_registry()
        with pytest.raises(ImportError_):
            registry.by_format("avro")
