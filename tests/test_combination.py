"""Tests for the combination framework: matrix, cube, aggregation, direction, selection."""

import numpy as np
import pytest

from repro.combination.aggregation import (
    AVERAGE,
    MAX,
    MIN,
    WeightedAggregation,
    aggregation_by_name,
)
from repro.combination.combined import AVERAGE_COMBINED, DICE_COMBINED, combined_similarity_by_name
from repro.combination.cube import SimilarityCube
from repro.combination.direction import BOTH, LARGE_SMALL, SMALL_LARGE, direction_by_name
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import CombinedSelection, MaxDelta, MaxN, Threshold
from repro.combination.strategy import (
    CombinationStrategy,
    default_combination,
    parse_combination,
    parse_selection,
)
from repro.exceptions import CombinationError, StrategyError
from repro.model.builder import SchemaBuilder


@pytest.fixture()
def axes():
    left = SchemaBuilder("L")
    with left.inner("A"):
        left.leaves("a1", "a2", "a3")
    left_schema = left.build()
    right = SchemaBuilder("R")
    with right.inner("B"):
        right.leaves("b1", "b2")
    right_schema = right.build()
    # exclude the inner paths for a compact 3x2 matrix
    sources = left_schema.leaf_paths()
    targets = right_schema.leaf_paths()
    return sources, targets


class TestSimilarityMatrix:
    def test_set_get_and_bounds(self, axes):
        sources, targets = axes
        matrix = SimilarityMatrix(sources, targets)
        matrix.set(sources[0], targets[0], 0.7)
        assert matrix.get(sources[0], targets[0]) == 0.7
        with pytest.raises(CombinationError):
            matrix.set(sources[0], targets[0], 1.2)

    def test_shape_validation(self, axes):
        sources, targets = axes
        with pytest.raises(CombinationError):
            SimilarityMatrix(sources, targets, np.zeros((2, 2)))
        with pytest.raises(CombinationError):
            SimilarityMatrix([], targets)

    def test_ranked_targets_and_sources(self, axes):
        sources, targets = axes
        matrix = SimilarityMatrix(sources, targets)
        matrix.set(sources[0], targets[0], 0.3)
        matrix.set(sources[0], targets[1], 0.9)
        ranked = matrix.ranked_targets(sources[0])
        assert ranked[0][0] == targets[1]
        ranked_sources = matrix.ranked_sources(targets[1])
        assert ranked_sources[0][0] == sources[0]

    def test_transposed(self, axes):
        sources, targets = axes
        matrix = SimilarityMatrix(sources, targets)
        matrix.set(sources[1], targets[0], 0.5)
        transposed = matrix.transposed()
        assert transposed.get(targets[0], sources[1]) == 0.5

    def test_values_read_only(self, axes):
        sources, targets = axes
        matrix = SimilarityMatrix(sources, targets)
        with pytest.raises(ValueError):
            matrix.values[0, 0] = 1.0

    def test_nonzero_pairs_and_fill_from(self, axes):
        sources, targets = axes
        matrix = SimilarityMatrix(sources, targets)
        matrix.fill_from([(sources[0], targets[0], 0.4), (sources[2], targets[1], 0.6)])
        assert len(matrix.nonzero_pairs()) == 2
        assert matrix.max_similarity() == 0.6


class TestSimilarityCube:
    def test_layers_and_cell(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        cube.add_layer("Name", SimilarityMatrix.filled(sources, targets, 0.4))
        cube.add_layer("DataType", SimilarityMatrix.filled(sources, targets, 0.8))
        assert cube.matcher_names == ("Name", "DataType")
        assert cube.shape == (2, 3, 2)
        assert cube.cell(sources[0], targets[0]) == {"Name": 0.4, "DataType": 0.8}
        assert "Name" in cube

    def test_axis_mismatch_rejected(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        with pytest.raises(CombinationError):
            cube.add_layer("bad", SimilarityMatrix.filled(sources[:2], targets, 0.5))

    def test_missing_layer(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        with pytest.raises(CombinationError):
            cube.layer("Name")

    def test_as_records_skips_zero(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        matrix = SimilarityMatrix(sources, targets)
        matrix.set(sources[0], targets[0], 0.9)
        cube.add_layer("Name", matrix)
        records = cube.as_records()
        assert len(records) == 1
        assert records[0][0] == "Name"

    def test_sub_cube(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        cube.add_layer("Name", SimilarityMatrix.filled(sources, targets, 0.4))
        sub = cube.sub_cube(sources[:1], targets[:1])
        assert sub.shape == (1, 1, 1)


class TestAggregation:
    def _cube(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        cube.add_layer("m1", SimilarityMatrix.filled(sources, targets, 0.2))
        cube.add_layer("m2", SimilarityMatrix.filled(sources, targets, 0.8))
        return cube

    def test_max_min_average(self, axes):
        cube = self._cube(axes)
        assert MAX.aggregate(cube).values.max() == pytest.approx(0.8)
        assert MIN.aggregate(cube).values.max() == pytest.approx(0.2)
        assert AVERAGE.aggregate(cube).values.max() == pytest.approx(0.5)

    def test_weighted_named(self, axes):
        cube = self._cube(axes)
        weighted = WeightedAggregation({"m1": 0.25, "m2": 0.75})
        assert weighted.aggregate(cube).values.max() == pytest.approx(0.65)

    def test_weighted_positional(self, axes):
        cube = self._cube(axes)
        weighted = WeightedAggregation([1.0, 3.0])
        assert weighted.aggregate(cube).values.max() == pytest.approx(0.65)

    def test_weighted_validation(self, axes):
        cube = self._cube(axes)
        with pytest.raises(CombinationError):
            WeightedAggregation({})
        with pytest.raises(CombinationError):
            WeightedAggregation({"m1": -1.0})
        with pytest.raises(CombinationError):
            WeightedAggregation([1.0]).aggregate(cube)
        with pytest.raises(CombinationError):
            WeightedAggregation({"other": 1.0}).aggregate(cube)

    def test_empty_cube_rejected(self, axes):
        sources, targets = axes
        with pytest.raises(CombinationError):
            MAX.aggregate(SimilarityCube(sources, targets))

    def test_by_name(self):
        assert aggregation_by_name("max") is MAX
        assert aggregation_by_name("Average") is AVERAGE
        with pytest.raises(CombinationError):
            aggregation_by_name("median")


class TestSelection:
    def _ranked(self, axes):
        sources, targets = axes
        return [(sources[0], 0.9), (sources[1], 0.88), (sources[2], 0.4)]

    def test_maxn(self, axes):
        ranked = self._ranked(axes)
        assert len(MaxN(1).select(ranked)) == 1
        assert len(MaxN(2).select(ranked)) == 2
        with pytest.raises(CombinationError):
            MaxN(0)

    def test_maxdelta_relative_and_absolute(self, axes):
        ranked = self._ranked(axes)
        assert len(MaxDelta(0.02).select(ranked)) == 1
        assert len(MaxDelta(0.03).select(ranked)) == 2
        assert len(MaxDelta(0.02, relative=False).select(ranked)) == 2

    def test_threshold(self, axes):
        ranked = self._ranked(axes)
        assert len(Threshold(0.5).select(ranked)) == 2
        assert len(Threshold(0.95).select(ranked)) == 0
        with pytest.raises(CombinationError):
            Threshold(0.0)

    def test_zero_similarity_never_selected(self, axes):
        sources, _ = axes
        ranked = [(sources[0], 0.0), (sources[1], 0.0)]
        assert MaxN(1).select(ranked) == []
        assert MaxDelta(0.1).select(ranked) == []
        assert Threshold(0.5).select(ranked) == []

    def test_combined_selection(self, axes):
        ranked = self._ranked(axes)
        combined = Threshold(0.5) + MaxN(1)
        assert len(combined.select(ranked)) == 1
        assert "Thr(0.5)" in combined.name and "MaxN(1)" in combined.name
        with pytest.raises(CombinationError):
            CombinedSelection([MaxN(1)])

    def test_combined_selection_flattens(self):
        combined = (Threshold(0.5) + MaxN(1)) + MaxDelta(0.02)
        assert len(combined.strategies) == 3


class TestDirection:
    def _matrix(self, axes):
        sources, targets = axes
        matrix = SimilarityMatrix(sources, targets)
        matrix.set(sources[0], targets[0], 0.9)
        matrix.set(sources[1], targets[0], 0.8)
        matrix.set(sources[1], targets[1], 0.7)
        matrix.set(sources[2], targets[1], 0.95)
        return matrix, sources, targets

    def test_both_requires_mutual_best(self, axes):
        matrix, sources, targets = self._matrix(axes)
        pairs = BOTH.select_pairs(matrix, MaxN(1))
        assert (sources[0], targets[0], 0.9) in pairs
        assert (sources[2], targets[1], 0.95) in pairs
        assert not any(p[0] == sources[1] for p in pairs)

    def test_large_small_selects_for_smaller_schema(self, axes):
        matrix, sources, targets = self._matrix(axes)
        # rows (3) > columns (2) -> LargeSmall selects S1 candidates per S2 element
        pairs = LARGE_SMALL.select_pairs(matrix, MaxN(1))
        assert len(pairs) == 2
        assert {p[1] for p in pairs} == set(targets)

    def test_small_large_selects_for_larger_schema(self, axes):
        matrix, sources, targets = self._matrix(axes)
        pairs = SMALL_LARGE.select_pairs(matrix, MaxN(1))
        assert {p[0] for p in pairs} == set(sources)

    def test_by_name(self):
        assert direction_by_name("both") is BOTH
        with pytest.raises(CombinationError):
            direction_by_name("sideways")


class TestCombinedSimilarity:
    def test_figure7_example(self, axes):
        """Figure 7: Average = 0.74, Dice = 0.86 for the 4+3 element example."""
        sources, targets = axes
        left = SchemaBuilder("X")
        with left.inner("S1"):
            left.leaves("s11", "s12", "s13", "s14")
        left_schema = left.build()
        right = SchemaBuilder("Y")
        with right.inner("S2"):
            right.leaves("s21", "s22", "s23")
        right_schema = right.build()
        s1 = {p.name: p for p in left_schema.leaf_paths()}
        s2 = {p.name: p for p in right_schema.leaf_paths()}
        pairs = [
            (s1["s11"], s2["s23"], 0.8),
            (s1["s12"], s2["s22"], 0.8),
            (s1["s13"], s2["s21"], 1.0),
        ]
        assert AVERAGE_COMBINED.combine(pairs, 4, 3) == pytest.approx(0.742857, abs=1e-4)
        assert DICE_COMBINED.combine(pairs, 4, 3) == pytest.approx(6 / 7)

    def test_empty_pairs(self):
        assert AVERAGE_COMBINED.combine([], 3, 3) == 0.0
        assert DICE_COMBINED.combine([], 3, 3) == 0.0

    def test_invalid_sizes(self):
        with pytest.raises(CombinationError):
            AVERAGE_COMBINED.combine([], 0, 3)

    def test_equal_when_all_similarities_one(self, axes):
        sources, targets = axes
        pairs = [(sources[0], targets[0], 1.0), (sources[1], targets[1], 1.0)]
        assert AVERAGE_COMBINED.combine(pairs, 3, 2) == DICE_COMBINED.combine(pairs, 3, 2)

    def test_by_name(self):
        assert combined_similarity_by_name("dice") is DICE_COMBINED
        with pytest.raises(CombinationError):
            combined_similarity_by_name("jaccard")


class TestCombinationStrategy:
    def test_default_combination_description(self):
        strategy = default_combination()
        assert "Average" in strategy.describe()
        assert "Both" in strategy.describe()
        assert "Thr(0.5)" in strategy.describe()

    def test_run_pipeline(self, axes):
        sources, targets = axes
        cube = SimilarityCube(sources, targets)
        matrix = SimilarityMatrix(sources, targets)
        matrix.set(sources[0], targets[0], 0.9)
        cube.add_layer("Name", matrix)
        pairs, similarity = default_combination().run_with_similarity(cube)
        assert pairs == [(sources[0], targets[0], 0.9)]
        assert similarity == pytest.approx((0.9 + 0.9) / 5)

    def test_replaced(self):
        strategy = default_combination().replaced(aggregation=MAX)
        assert strategy.aggregation is MAX
        assert strategy.direction is BOTH

    def test_parse_selection(self):
        assert str(parse_selection("MaxN(2)")) == "MaxN(2)"
        assert str(parse_selection("Thr(0.5)+Delta(0.02)")).startswith("Thr(0.5)")
        assert str(parse_selection("Max1")) == "MaxN(1)"
        with pytest.raises(StrategyError):
            parse_selection("Unknown(1)")
        with pytest.raises(StrategyError):
            parse_selection("MaxN(abc)")
        with pytest.raises(StrategyError):
            parse_selection("   ")

    def test_parse_combination(self):
        strategy = parse_combination("Max", "LargeSmall", "MaxN(1)", "Dice")
        assert str(strategy.aggregation) == "Max"
        assert str(strategy.direction) == "LargeSmall"
        assert str(strategy.combined_similarity) == "Dice"
