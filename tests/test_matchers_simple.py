"""Tests for the simple schema-level matchers (DataType, Synonym, UserFeedback, lifted strings)."""

import pytest

from repro.auxiliary.synonyms import SynonymDictionary
from repro.core.match_operation import build_context
from repro.matchers.simple import (
    DataTypeMatcher,
    SynonymMatcher,
    UserFeedbackMatcher,
    UserFeedbackStore,
    trigram_matcher,
)


class TestLiftedStringMatchers:
    def test_trigram_over_names(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matcher = trigram_matcher()
        matrix = matcher.compute(left.paths(), right.paths(), tiny_context)
        city = left.find_path("Left.ShipTo.shipToCity")
        target_city = right.find_path("Right.DeliverTo.Address.City")
        street = right.find_path("Right.DeliverTo.Address.Street")
        assert matrix.get(city, target_city) > matrix.get(city, street)

    def test_matcher_name(self):
        assert trigram_matcher().name == "Trigram"


class TestDataTypeMatcher:
    def test_type_compatibility(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matcher = DataTypeMatcher()
        matrix = matcher.compute(left.paths(), right.paths(), tiny_context)
        city = left.find_path("Left.ShipTo.shipToCity")        # varchar -> string
        zip_left = left.find_path("Left.ShipTo.shipToZip")      # varchar -> string
        zip_right = right.find_path("Right.DeliverTo.Address.Zip")  # xsd:decimal
        city_right = right.find_path("Right.DeliverTo.Address.City")  # xsd:string
        assert matrix.get(city, city_right) == 1.0
        assert matrix.get(zip_left, zip_right) < 1.0


class TestSynonymMatcher:
    def test_uses_context_dictionary(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matcher = SynonymMatcher()
        matrix = matcher.compute(left.paths(), right.paths(), tiny_context)
        ship = left.find_path("Left.ShipTo")
        deliver = right.find_path("Right.DeliverTo")
        # ShipTo vs DeliverTo are not literally in the dictionary (multi-token
        # names) so the simple matcher scores 0, but identical names score 1.
        assert matrix.get(ship, deliver) == 0.0
        city = left.find_path("Left.ShipTo.shipToCity")
        assert matrix.get(city, right.find_path("Right.DeliverTo.Address.City")) == 0.0

    def test_explicit_dictionary_overrides_context(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        dictionary = SynonymDictionary()
        dictionary.add("ShipTo", "DeliverTo")
        matcher = SynonymMatcher(dictionary)
        matrix = matcher.compute(left.paths(), right.paths(), tiny_context)
        assert matrix.get(left.find_path("Left.ShipTo"), right.find_path("Right.DeliverTo")) == 1.0


class TestUserFeedback:
    def test_store_decisions(self):
        store = UserFeedbackStore()
        store.accept("A.x", "B.y")
        store.reject("A.x", "B.z")
        assert store.is_accepted("A.x", "B.y")
        assert store.is_rejected("A.x", "B.z")
        assert store.decision("A.x", "B.w") is None
        assert len(store) == 2
        assert bool(store)

    def test_accept_overrides_reject(self):
        store = UserFeedbackStore()
        store.reject("A.x", "B.y")
        store.accept("A.x", "B.y")
        assert store.is_accepted("A.x", "B.y")
        assert not store.is_rejected("A.x", "B.y")

    def test_clear(self):
        store = UserFeedbackStore()
        store.accept("A.x", "B.y")
        store.clear()
        assert not store

    def test_matcher_layer_values(self, tiny_pair):
        left, right = tiny_pair
        store = UserFeedbackStore()
        city = left.find_path("Left.ShipTo.shipToCity")
        target = right.find_path("Right.DeliverTo.Address.City")
        wrong = right.find_path("Right.DeliverTo.Address.Zip")
        store.accept(city, target)
        store.reject(city, wrong)
        context = build_context(left, right, feedback=store)
        matrix = UserFeedbackMatcher().compute(left.paths(), right.paths(), context)
        assert matrix.get(city, target) == 1.0
        assert matrix.get(city, wrong) == 0.0
        neutral = matrix.get(left.find_path("Left.Customer.custName"), target)
        assert neutral == UserFeedbackMatcher.neutral_similarity

    def test_apply_overrides(self, tiny_pair):
        left, right = tiny_pair
        store = UserFeedbackStore()
        city = left.find_path("Left.ShipTo.shipToCity")
        target = right.find_path("Right.DeliverTo.Address.City")
        store.reject(city, target)
        context = build_context(left, right, feedback=store)
        from repro.combination.matrix import SimilarityMatrix

        matrix = SimilarityMatrix.filled(left.paths(), right.paths(), 0.9)
        adjusted = UserFeedbackMatcher().apply_overrides(matrix, context)
        assert adjusted.get(city, target) == 0.0
        # other cells untouched
        assert adjusted.get(left.find_path("Left.Customer.custName"), target) == 0.9

    def test_without_feedback_is_neutral(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matrix = UserFeedbackMatcher().compute(left.paths(), right.paths(), tiny_context)
        assert matrix.values.min() == matrix.values.max() == UserFeedbackMatcher.neutral_similarity
