"""Tests for the Similarity Flooding baseline and the command-line interface."""

import pytest

from repro.baselines.similarity_flooding import SimilarityFloodingMatcher
from repro.cli import main
from repro.datasets.figure1 import PO1_DDL, PO2_XSD
from repro.exceptions import ComaError


class TestSimilarityFlooding:
    def test_values_bounded_and_converges(self, po1, po2, figure1_context):
        matcher = SimilarityFloodingMatcher(max_iterations=30)
        matrix = matcher.compute(po1.paths(), po2.paths(), figure1_context)
        assert matrix.values.min() >= 0.0
        assert matrix.values.max() <= 1.0

    def test_structure_boosts_connected_pairs(self, po1, po2, figure1_context):
        """Flooding should rank the structurally supported City pair above an unrelated pair."""
        matrix = SimilarityFloodingMatcher().compute(po1.paths(), po2.paths(), figure1_context)
        city = po1.find_path("PO1.ShipTo.shipToCity")
        good = po2.find_path("PO2.PO2.DeliverTo.Address.City")
        unrelated = po2.find_path("PO2.PO2.BillTo")
        assert matrix.get(city, good) > matrix.get(city, unrelated)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SimilarityFloodingMatcher(max_iterations=0)
        with pytest.raises(ValueError):
            SimilarityFloodingMatcher(residual_threshold=0.0)

    def test_no_structure_falls_back_to_initial(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        # restrict to leaf paths only: no containment edges within the subsets
        matcher = SimilarityFloodingMatcher()
        matrix = matcher.compute(left.leaf_paths(), right.leaf_paths(), tiny_context)
        assert matrix.values.max() <= 1.0


class TestCli:
    @pytest.fixture()
    def schema_files(self, tmp_path):
        po1 = tmp_path / "po1.sql"
        po1.write_text(PO1_DDL, encoding="utf-8")
        po2 = tmp_path / "po2.xsd"
        po2.write_text(PO2_XSD, encoding="utf-8")
        return str(po1), str(po2)

    def test_match_command(self, schema_files, capsys):
        source, target = schema_files
        exit_code = main(["match", source, target])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "schema similarity" in captured
        assert "po1" in captured

    def test_match_command_with_options(self, schema_files, capsys):
        source, target = schema_files
        exit_code = main([
            "match", source, target,
            "--matchers", "NamePath", "Leaves",
            "--aggregation", "Max",
            "--selection", "MaxN(1)",
            "--min-similarity", "0.4",
        ])
        assert exit_code == 0
        assert "Mapping" in capsys.readouterr().out

    def test_stats_command(self, schema_files, capsys):
        source, _ = schema_files
        exit_code = main(["stats", source])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "max_depth" in captured

    def test_tasks_command(self, capsys):
        exit_code = main(["tasks"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "1<->2" in captured
        assert "schema_similarity" in captured

    def test_match_command_with_full_strategy_spec(self, schema_files, capsys):
        source, target = schema_files
        exit_code = main([
            "match", source, target,
            "--strategy", "NamePath+Leaves(Max,Both,MaxN(1),Average)",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "NamePath+Leaves(Max,Both,MaxN(1),Average)" in captured
        assert "schema similarity" in captured

    def test_match_command_rejects_strategy_and_matchers(self, schema_files):
        source, target = schema_files
        with pytest.raises(ComaError):
            main([
                "match", source, target,
                "--strategy", "All(Average,Both,MaxN(1),Average)",
                "--matchers", "Name",
            ])

    def test_match_command_rejects_strategy_and_combination_parts(self, schema_files):
        source, target = schema_files
        with pytest.raises(ComaError, match="--selection"):
            main([
                "match", source, target,
                "--strategy", "Name",
                "--selection", "MaxN(1)",
            ])
        # an explicitly passed default value is a conflict too
        with pytest.raises(ComaError, match="--aggregation"):
            main([
                "match", source, target,
                "--strategy", "Name",
                "--aggregation", "Average",
            ])

    def test_strategies_command_lists_library(self, capsys):
        exit_code = main(["strategies"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Matcher library" in captured
        assert "NamePath" in captured
        assert "no stored named strategies" in captured

    def test_strategies_save_and_match_by_name(self, schema_files, tmp_path, capsys):
        source, target = schema_files
        db = str(tmp_path / "repo.db")
        exit_code = main([
            "strategies", "--repository", db,
            "--save", "tuned", "All(Max,Both,Thr(0.6),Dice)",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "tuned" in captured
        assert "All(Max,Both,Thr(0.6),Dice)" in captured
        # the stored name is addressable from `coma match`
        exit_code = main(["match", source, target, "--repository", db,
                          "--strategy", "tuned"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "All(Max,Both,Thr(0.6),Dice)" in captured

    def test_strategies_save_requires_repository(self):
        with pytest.raises(ComaError):
            main(["strategies", "--save", "x", "Name"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
