"""End-to-end integration tests crossing all subsystems.

These tests walk the full workflow a downstream user would follow: import
external schemas, match them, evaluate against a reference, store everything
in the repository, and reuse stored mappings for a later match task.
"""

import pytest

from repro import Repository, match
from repro.core.match_operation import build_context
from repro.core.processor import MatchProcessor
from repro.datasets.figure1 import figure1_reference_mapping
from repro.datasets.gold_standard import load_task
from repro.datasets.purchase_orders import load_schema
from repro.evaluation.metrics import evaluate_mapping
from repro.importers.registry import DEFAULT_IMPORTERS
from repro.matchers.registry import DEFAULT_LIBRARY
from repro.matchers.reuse.schema_reuse import SchemaReuseMatcher


class TestImportMatchEvaluate:
    def test_figure1_quality_is_reasonable(self, po1, po2):
        outcome = match(po1, po2)
        reference = figure1_reference_mapping(po1, po2)
        quality = evaluate_mapping(outcome.result, reference)
        # the default operation should find at least half of the reference
        # correspondences on the paper's own running example
        assert quality.recall >= 0.5
        assert quality.precision >= 0.5

    def test_purchase_order_task_with_default_operation(self):
        task = load_task(1, 2)
        outcome = match(task.source, task.target)
        quality = evaluate_mapping(outcome.result, task.reference)
        assert quality.recall >= 0.5
        assert quality.overall > 0.0

    def test_file_import_then_match(self, tmp_path):
        from repro.datasets.figure1 import PO1_DDL, PO2_XSD

        sql_path = tmp_path / "orders.sql"
        sql_path.write_text(PO1_DDL, encoding="utf-8")
        xsd_path = tmp_path / "orders.xsd"
        xsd_path.write_text(PO2_XSD, encoding="utf-8")
        source = DEFAULT_IMPORTERS.import_file(sql_path, name="PO1")
        target = DEFAULT_IMPORTERS.import_file(xsd_path, name="PO2")
        outcome = match(source, target)
        assert len(outcome.result) > 0


class TestRepositoryReuseWorkflow:
    def test_store_confirm_and_reuse(self):
        """Match 1<->2 and 2<->3 automatically, confirm them, then reuse for 1<->3."""
        cidx = load_schema("CIDX")
        excel = load_schema("Excel")
        noris = load_schema("Noris")

        with Repository() as repository:
            repository.store_schema(cidx)
            repository.store_schema(excel)
            repository.store_schema(noris)

            first = match(cidx, excel)
            second = match(excel, noris)
            repository.store_mapping(first.result, origin="manual")
            repository.store_mapping(second.result, origin="manual")

            context = build_context(cidx, noris, repository=repository)
            reuse_matcher = SchemaReuseMatcher(origin="manual")
            matrix = reuse_matcher.compute(cidx.paths(), noris.paths(), context)
            assert matrix.values.max() > 0.0

            # the composed reuse layer should agree with the gold standard on
            # at least some of the strongest pairs
            task = load_task(1, 3)
            strong_pairs = {
                (source.dotted(), target.dotted())
                for source, target, value in matrix.nonzero_pairs()
                if value >= 0.7
            }
            gold = task.reference.pair_set()
            assert strong_pairs & gold

    def test_schema_round_trip_preserves_match_behaviour(self):
        cidx = load_schema("CIDX")
        excel = load_schema("Excel")
        with Repository() as repository:
            repository.store_schema(cidx)
            repository.store_schema(excel)
            restored_cidx = repository.load_schema("CIDX")
            restored_excel = repository.load_schema("Excel")
        direct = match(cidx, excel)
        restored = match(restored_cidx, restored_excel)
        assert direct.result.pair_set() == restored.result.pair_set()


class TestInteractiveImprovement:
    def test_feedback_improves_quality(self):
        """Accepting gold pairs and rejecting false positives must not hurt quality."""
        task = load_task(1, 2)
        processor = MatchProcessor(task.source, task.target)
        first = processor.run_iteration()
        before = evaluate_mapping(first.result, task.reference)

        gold = task.reference.pair_set()
        # simulate a user reviewing the first ten proposals
        for correspondence in list(first.result)[:10]:
            key = (correspondence.source.dotted(), correspondence.target.dotted())
            if key in gold:
                processor.accept(correspondence.source, correspondence.target)
            else:
                processor.reject(correspondence.source, correspondence.target)
        processor.run_iteration()
        after = evaluate_mapping(processor.current_result(), task.reference)
        assert after.precision >= before.precision
        assert after.overall >= before.overall


class TestLibraryExtensibility:
    def test_custom_matcher_can_be_registered_and_used(self, po1, po2):
        from repro.combination.matrix import SimilarityMatrix
        from repro.matchers.base import Matcher

        class ConstantMatcher(Matcher):
            name = "Constant"
            kind = "simple"

            def compute(self, source_paths, target_paths, context):
                return SimilarityMatrix.filled(source_paths, target_paths, 0.6)

        # Register on a private copy: mutating the process-wide DEFAULT_LIBRARY
        # would leak into every later test (and make the parent process digest
        # differently from freshly spawned match workers).
        from repro.matchers.registry import default_library

        library = default_library()
        library.register("Constant", ConstantMatcher, kind="simple")
        outcome = match(po1, po2, matchers=["Constant", "NamePath"], library=library)
        assert "Constant" in outcome.cube.matcher_names
