"""Tests for the session-based public API (MatchSession and the facade shims)."""

import warnings

import pytest

import repro
from repro.core.match_operation import match as core_match
from repro.core.match_operation import match_with_strategy as core_match_with_strategy
from repro.core.strategy import MatchStrategy, default_strategy
from repro.datasets.gold_standard import load_all_tasks
from repro.engine.profiles import PathSetProfile
from repro.exceptions import SessionError
from repro.matchers.hybrid import NameMatcher
from repro.repository.repository import Repository
from repro.session import MatchSession, default_session, reset_default_session


def _rows(outcome):
    return [
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    ]


def _campaign_schemas():
    schemas = {}
    for task in load_all_tasks():
        schemas[task.source.name] = task.source
        schemas[task.target.name] = task.target
    return [schemas[name] for name in sorted(schemas)]


@pytest.fixture()
def session():
    return MatchSession()


class TestSessionMatch:
    def test_match_equals_free_function(self, session, po1, po2):
        outcome = session.match(po1, po2)
        reference = core_match(po1, po2)
        assert _rows(outcome) == _rows(reference)
        assert outcome.schema_similarity == reference.schema_similarity

    def test_type_compatibility_is_copied_per_context(self, session, po1, po2):
        first = session.match(po1, po2).context
        second = session.match(po2, po1).context
        assert first.type_compatibility is not second.type_compatibility

    def test_strategy_spec_strings_are_accepted(self, session, po1, po2):
        spec = "NamePath+Leaves(Max,Both,MaxN(1),Average)"
        outcome = session.match(po1, po2, strategy=spec)
        reference = core_match_with_strategy(po1, po2, MatchStrategy.parse(spec))
        assert _rows(outcome) == _rows(reference)

    def test_default_strategy_is_configurable(self, po1, po2):
        session = MatchSession(strategy="Name(Average,Both,MaxN(1),Average)")
        assert session.default_strategy.matcher_names() == ("Name",)
        session.set_default_strategy("Leaves")
        assert session.default_strategy.matcher_names() == ("Leaves",)
        assert session.match(po1, po2).strategy.matcher_names() == ("Leaves",)

    def test_invalid_strategy_reference_raises(self, session):
        with pytest.raises(SessionError):
            session.resolve_strategy(42)


class TestMatchMany:
    def test_byte_identical_to_per_pair_match(self, session):
        """The acceptance criterion: match_many == per-pair match over the task set."""
        schemas = _campaign_schemas()
        pairs = [
            (source, target)
            for i, source in enumerate(schemas)
            for target in schemas[i + 1 :]
        ]
        batched = session.match_many(pairs)
        for (source, target), outcome in zip(pairs, batched):
            reference = core_match(source, target)
            assert _rows(outcome) == _rows(reference)
            assert outcome.schema_similarity == reference.schema_similarity

    def test_profiles_built_at_most_once_per_schema(self, monkeypatch):
        """Each schema's path profile is constructed once for the whole batch."""
        built = []
        original = PathSetProfile.__init__

        def counting_init(self, paths, tokenizer, token_memo=None):
            built.append(tuple(paths))
            original(self, paths, tokenizer, token_memo=token_memo)

        monkeypatch.setattr(PathSetProfile, "__init__", counting_init)
        schemas = _campaign_schemas()
        session = MatchSession()
        session.match_many(
            (source, target)
            for i, source in enumerate(schemas)
            for target in schemas[i + 1 :]
        )
        assert len(built) == len(schemas)
        assert len(set(built)) == len(built)
        assert session.cache_info()["profiles"] == len(schemas)

    def test_per_request_strategy_override(self, session, po1, po2):
        spec = "Name(Average,Both,MaxN(1),Average)"
        default_outcome, overridden = session.match_many([(po1, po2), (po1, po2, spec)])
        assert default_outcome.strategy.matcher_names() != ("Name",)
        assert overridden.strategy.matcher_names() == ("Name",)

    def test_malformed_request_raises(self, session, po1, po2):
        with pytest.raises(SessionError):
            session.match_many([(po1, po2, None, "extra")])

    def test_empty_strategy_spec_fails_loudly(self, session, po1, po2):
        from repro.exceptions import StrategyError

        with pytest.raises(StrategyError):
            session.match_many([(po1, po2, "")], strategy="Name")


class TestCubeCache:
    def test_repeated_pair_reuses_cube(self, session, po1, po2):
        first = session.match(po1, po2)
        second = session.match(po1, po2, strategy="All(Max,Both,MaxN(1),Average)")
        info = session.cache_info()
        assert info["cube_hits"] == 1 and info["cube_misses"] == 1
        assert second.cube is first.cube  # same matcher usage -> same cube object
        # ... while the combination differs
        assert _rows(second) != _rows(first) or second.schema_similarity != first.schema_similarity

    def test_cached_results_stay_equivalent(self, session, po1, po2):
        spec = "All(Max,Both,MaxN(1),Dice)"
        session.match(po1, po2)  # populate the cube cache
        cached = session.match(po1, po2, strategy=spec)
        fresh = core_match_with_strategy(po1, po2, MatchStrategy.parse(spec))
        assert _rows(cached) == _rows(fresh)
        assert cached.schema_similarity == fresh.schema_similarity

    def test_instance_matchers_bypass_the_cache(self, session, po1, po2):
        strategy = MatchStrategy(matchers=[NameMatcher()], name="inst")
        session.match(po1, po2, strategy=strategy)
        session.match(po1, po2, strategy=strategy)
        info = session.cache_info()
        assert info["cubes"] == 0 and info["cube_hits"] == 0

    def test_cache_can_be_disabled_and_cleared(self, po1, po2):
        session = MatchSession(cache_cubes=False)
        session.match(po1, po2)
        session.match(po1, po2)
        assert session.cache_info()["cubes"] == 0
        cached = MatchSession()
        cached.match(po1, po2)
        assert cached.cache_info()["cubes"] == 1
        cached.clear_caches()
        assert cached.cache_info()["cubes"] == 0
        assert cached.cache_info()["profiles"] == 0


class TestIterate:
    def test_feedback_loop_through_session(self, session, po1, po2):
        processor = session.iterate(po1, po2)
        first = processor.run_iteration()
        assert first.result.correspondences
        processor.reject(
            first.result.correspondences[0].source,
            first.result.correspondences[0].target,
        )
        processor.run_iteration()
        result = processor.current_result()
        rejected = (
            first.result.correspondences[0].source,
            first.result.correspondences[0].target,
        )
        assert all((c.source, c.target) != rejected for c in result.correspondences)

    def test_iterate_shares_the_profile_cache(self, session, po1, po2):
        session.match(po1, po2)
        profiles_before = session.cache_info()["profiles"]
        processor = session.iterate(po1, po2)
        processor.run_iteration()
        assert session.cache_info()["profiles"] == profiles_before

    def test_session_feedback_store_is_shared(self, po1, po2):
        from repro.matchers.simple.user_feedback import UserFeedbackStore

        store = UserFeedbackStore()
        session = MatchSession(feedback=store)
        processor = session.iterate(po1, po2)
        assert processor.feedback is store


class TestEvaluate:
    def test_campaign_uses_session_contexts(self, session):
        tasks = load_all_tasks()[:2]
        campaign = session.evaluate(tasks=tasks, include_reuse=False)
        campaign.prepare()
        # the campaign's matcher executions populated the session profile cache
        assert session.cache_info()["profiles"] >= 2
        workbench = campaign.workbench(tasks[0].name)
        assert workbench.context.profile_cache is campaign.workbench(tasks[1].name).context.profile_cache


class TestNamedStrategies:
    def test_in_memory_registry(self, session, po1, po2):
        saved = session.save_strategy("quick", "Name(Average,Both,MaxN(1),Average)")
        assert saved.name == "quick"
        assert session.strategy_names() == ("quick",)
        outcome = session.match(po1, po2, strategy="quick")
        assert outcome.strategy.matcher_names() == ("Name",)

    def test_repository_persistence(self, tmp_path, po1, po2):
        db = str(tmp_path / "repo.db")
        with Repository(db) as repository:
            session = MatchSession(repository=repository)
            session.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
        # a brand-new session over the same repository sees the strategy
        with Repository(db) as repository:
            fresh = MatchSession(repository=repository)
            assert "tuned" in fresh.strategy_names()
            loaded = fresh.load_strategy("tuned")
            assert loaded.to_spec() == "All(Max,Both,Thr(0.6),Dice)"
            outcome = fresh.match(po1, po2, strategy="tuned")
            assert str(outcome.strategy.combination.combined_similarity) == "Dice"

    def test_missing_strategy_raises(self, session):
        with pytest.raises(SessionError):
            session.load_strategy("absent")

    def test_strategy_names_must_not_look_like_specs(self, session):
        with pytest.raises(SessionError, match="parentheses"):
            session.save_strategy("bad(name)", "Name")

    def test_repository_strategy_roundtrip_keeps_feedback_flag(self):
        repository = Repository(":memory:")
        strategy = default_strategy().replaced(apply_feedback_overrides=False)
        repository.store_strategy("nofeedback", strategy)
        loaded = repository.load_strategy("nofeedback")
        assert loaded.apply_feedback_overrides is False
        assert loaded == strategy

    def test_repository_rejects_unserialisable_strategies_at_store_time(self):
        from repro.combination.aggregation import WeightedAggregation
        from repro.exceptions import RepositoryError

        repository = Repository(":memory:")
        weighted = default_strategy().replaced(
            combination=default_strategy().combination.replaced(
                aggregation=WeightedAggregation({"Name": 1.0})
            )
        )
        with pytest.raises(RepositoryError, match="does not reload"):
            repository.store_strategy("weighted", weighted)
        assert repository.strategy_names() == ()
        # a failed save must not leave the name resolvable in the session either
        session = MatchSession(repository=repository)
        with pytest.raises(RepositoryError):
            session.save_strategy("weighted", weighted)
        with pytest.raises(SessionError):
            session.load_strategy("weighted")

    def test_constructor_accepts_stored_strategy_names(self, po1, po2):
        repository = Repository(":memory:")
        repository.store_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
        session = MatchSession(repository=repository, strategy="tuned")
        assert session.default_strategy.to_spec() == "All(Max,Both,Thr(0.6),Dice)"

    def test_cache_bounds_evict_oldest(self, po1, po2):
        session = MatchSession(max_cached_cubes=1, max_cached_profiles=2)
        session.match(po1, po2)
        session.match(po2, po1)  # a second (reversed) pair evicts the first cube
        info = session.cache_info()
        assert info["cubes"] == 1
        assert info["profiles"] <= 2
        with pytest.raises(SessionError):
            MatchSession(max_cached_cubes=0)


class TestDeprecatedShims:
    @pytest.fixture(autouse=True)
    def _fresh_default_session(self):
        reset_default_session()
        yield
        reset_default_session()

    def test_match_warns_and_matches_session(self, po1, po2):
        with pytest.warns(DeprecationWarning, match="MatchSession.match"):
            outcome = repro.match(po1, po2)
        assert _rows(outcome) == _rows(MatchSession().match(po1, po2))

    def test_shim_ignores_reconfigured_session_default(self, po1, po2):
        """Legacy match() always starts from the paper default strategy."""
        default_session().set_default_strategy("Leaves")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            outcome = repro.match(po1, po2)
        assert outcome.strategy.matcher_names() == default_strategy().matcher_names()

    def test_match_with_strategy_warns(self, po1, po2):
        strategy = MatchStrategy.parse("Name(Average,Both,MaxN(1),Average)")
        with pytest.warns(DeprecationWarning):
            outcome = repro.match_with_strategy(po1, po2, strategy)
        assert outcome.strategy is strategy

    def test_build_context_and_execute_matchers_warn(self, po1, po2):
        with pytest.warns(DeprecationWarning):
            context = repro.build_context(po1, po2)
        with pytest.warns(DeprecationWarning):
            cube = repro.execute_matchers([NameMatcher()], context)
        assert cube.matcher_names == ("Name",)

    def test_schema_similarity_warns(self, po1, po2):
        with pytest.warns(DeprecationWarning):
            value = repro.schema_similarity(po1, po2)
        assert value == core_match(po1, po2).schema_similarity

    def test_shims_share_the_default_session(self, po1, po2):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            repro.match(po1, po2)
            repro.match(po1, po2)
        assert default_session().cache_info()["cube_hits"] >= 1

    def test_resource_overrides_fall_back_to_stateless_path(self, po1, po2):
        from repro.auxiliary.synonyms import SynonymDictionary

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            outcome = repro.match(po1, po2, synonyms=SynonymDictionary())
        assert default_session().cache_info()["cubes"] == 0
        assert outcome.result is not None
