"""Unit tests for the deterministic fault-injection framework.

The framework is only useful if it is *exactly* reproducible -- the same
plan must corrupt the same bytes and fire on the same calls, run after run
-- and *exactly* free when disarmed (production seams are a single global
read).  These tests lock both properties down, plus the JSON round trip
that ships plans to spawned pool workers and ``coma serve --fault-plan``.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import faults
from repro.exceptions import FaultInjected, SearchError
from repro.faults import (
    CATALOG,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultRule,
    catalog_plan,
    fault_bytes,
    fault_point,
)


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No test leaks an armed plan into the rest of the suite."""
    faults.disarm()
    yield
    faults.disarm()


class TestFaultRule:
    def test_exact_and_glob_point_matching(self):
        exact = FaultRule(point="store.load", action="raise")
        assert exact.matches("store.load", None)
        assert not exact.matches("store.loader", None)
        globbed = FaultRule(point="store.*", action="raise")
        assert globbed.matches("store.load", None)
        assert globbed.matches("store.blob.read", None)
        assert not globbed.matches("corpus.rank", None)

    def test_key_substring_filter(self):
        rule = FaultRule(point="store.load", action="raise", key="abc")
        assert rule.matches("store.load", "xxabcyy")
        assert not rule.matches("store.load", "xyz")
        assert not rule.matches("store.load", None)

    def test_nth_trigger_fires_exactly_once(self):
        rule = FaultRule(point="p", action="raise", nth=3)
        decisions = [rule.should_fire(calls, 0) for calls in (1, 2, 3, 4)]
        assert decisions == [False, False, True, False]

    def test_every_trigger(self):
        rule = FaultRule(point="p", action="raise", every=2)
        decisions = [rule.should_fire(calls, 0) for calls in (1, 2, 3, 4)]
        assert decisions == [False, True, False, True]

    def test_after_trigger(self):
        rule = FaultRule(point="p", action="raise", after=2)
        decisions = [rule.should_fire(calls, 0) for calls in (1, 2, 3, 4)]
        assert decisions == [False, False, True, True]

    def test_count_caps_firings(self):
        rule = FaultRule(point="p", action="raise", count=2)
        assert rule.should_fire(1, 0)
        assert rule.should_fire(2, 1)
        assert not rule.should_fire(3, 2)

    def test_conflicting_triggers_rejected(self):
        with pytest.raises(FaultInjected, match="at most one"):
            FaultRule(point="p", action="raise", nth=1, every=2)

    def test_unknown_action_and_error_type_rejected(self):
        with pytest.raises(FaultInjected, match="unknown fault action"):
            FaultRule(point="p", action="explode")
        with pytest.raises(FaultInjected, match="unknown fault error type"):
            FaultRule(point="p", action="raise", error="KeyboardInterrupt")

    def test_registered_error_types_are_constructed(self):
        rule = FaultRule(
            point="p", action="raise",
            error="sqlite3.OperationalError", message="gone",
        )
        error = rule.build_error()
        assert isinstance(error, sqlite3.OperationalError)
        assert str(error) == "gone"
        assert isinstance(
            FaultRule(point="p", action="raise", error="SearchError").build_error(),
            SearchError,
        )

    def test_corruption_is_deterministic_per_seed_and_firing(self):
        rule = FaultRule(point="p", action="corrupt", mode="flip", seed=7, flips=3)
        data = bytes(range(200))
        first = rule.corrupt(data, 1)
        assert first == rule.corrupt(data, 1)  # same firing: same bytes
        assert first != data
        assert len(first) == len(data)
        assert rule.corrupt(data, 2) != first  # new firing: new positions
        other_seed = FaultRule(
            point="p", action="corrupt", mode="flip", seed=8, flips=3
        )
        assert other_seed.corrupt(data, 1) != first

    def test_truncate_and_zero_modes(self):
        data = bytes(range(100))
        truncate = FaultRule(point="p", action="corrupt", mode="truncate")
        assert truncate.corrupt(data, 1) == data[:50]
        zero = FaultRule(point="p", action="corrupt", mode="zero")
        assert zero.corrupt(data, 1) == bytes(100)
        assert truncate.corrupt(b"", 1) == b""  # empty payloads pass through


class TestFaultPlan:
    def test_unarmed_seams_are_no_ops(self):
        assert faults.active_plan() is None
        fault_point("store.load", key="anything")  # must not raise
        assert fault_bytes("store.blob.read", b"payload") == b"payload"

    def test_armed_plan_raises_on_trigger(self):
        plan = FaultPlan([FaultRule(point="demo.seam", action="raise", nth=2)])
        with faults.armed(plan):
            fault_point("demo.seam")
            with pytest.raises(FaultInjected, match="injected fault"):
                fault_point("demo.seam")
            fault_point("demo.seam")  # nth=2 fired; later calls pass
        assert plan.stats()[0] == {
            "point": "demo.seam", "action": "raise", "calls": 3, "fired": 1,
        }

    def test_corrupt_rules_only_count_byte_seams(self):
        plan = FaultPlan(
            [FaultRule(point="s.*", action="corrupt", mode="zero", nth=1)]
        )
        with faults.armed(plan):
            fault_point("s.visit")  # a visit must not consume the trigger
            assert fault_bytes("s.bytes", b"abc") == b"\x00\x00\x00"
        assert plan.stats()[0]["calls"] == 1

    def test_reset_restores_determinism(self):
        plan = FaultPlan([FaultRule(point="p", action="raise", nth=1)])
        with faults.armed(plan):
            with pytest.raises(FaultInjected):
                fault_point("p")
            fault_point("p")
            plan.reset()
            with pytest.raises(FaultInjected):  # the same run, replayed
                fault_point("p")

    def test_json_round_trip_is_lossless(self):
        plan = FaultPlan(
            [
                FaultRule(point="store.blob.read", action="corrupt",
                          mode="flip", seed=3, flips=2, count=4),
                FaultRule(point="worker.match", action="delay",
                          delay=1.5, nth=2),
                FaultRule(point="corpus.rank", action="raise",
                          error="sqlite3.OperationalError", key="po"),
            ],
            name="round-trip",
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.name == "round-trip"
        assert [rule.delay for rule in rebuilt.rules][1] == 1.5

    def test_save_and_load(self, tmp_path):
        plan = catalog_plan("store-corruption")
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path).to_dict() == plan.to_dict()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(FaultInjected, match="not valid JSON"):
            FaultPlan.load(str(path))
        with pytest.raises(FaultInjected, match="cannot read"):
            FaultPlan.load(str(tmp_path / "missing.json"))

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultInjected, match="unknown fault rule field"):
            FaultPlan.from_dict(
                {"rules": [{"point": "p", "action": "raise", "backdoor": 1}]}
            )
        with pytest.raises(FaultInjected, match="'rules' list"):
            FaultPlan.from_dict({"name": "empty"})

    def test_arm_replaces_and_disarm_clears(self):
        first = FaultPlan([])
        second = FaultPlan([])
        faults.arm(first)
        assert faults.active_plan() is first
        faults.arm(second)
        assert faults.active_plan() is second
        faults.disarm()
        assert faults.active_plan() is None


class TestCatalog:
    def test_every_entry_builds_and_round_trips(self):
        for name in CATALOG:
            plan = catalog_plan(name)
            assert plan.name == name
            assert plan.rules, name
            assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_catalog_plans_are_fresh_per_call(self):
        first = catalog_plan("worker-crash-loop")
        with faults.armed(first):
            # kill rules never fire in-process here: point doesn't match
            fault_point("worker.other")
        assert catalog_plan("worker-crash-loop").stats()[0]["calls"] == 0

    def test_unknown_name_is_a_typed_error(self):
        with pytest.raises(FaultInjected, match="unknown catalog plan"):
            catalog_plan("disk-on-fire")

    def test_kill_exit_code_is_distinctive(self):
        assert KILL_EXIT_CODE == 86
