"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auxiliary.synonyms import SynonymDictionary
from repro.combination.combined import AVERAGE_COMBINED, DICE_COMBINED
from repro.evaluation.metrics import MatchQuality
from repro.linguistic.tokenizer import NameTokenizer, split_name
from repro.matchers.string.affix import AffixMatcher
from repro.matchers.string.edit_distance import EditDistanceMatcher, levenshtein_distance
from repro.matchers.string.ngram import TrigramMatcher
from repro.matchers.string.soundex import SoundexMatcher

names = st.text(alphabet=string.ascii_letters + string.digits + "_-. ", min_size=0, max_size=24)
words = st.text(alphabet=string.ascii_letters, min_size=1, max_size=12)


class TestStringMatcherProperties:
    @given(a=names, b=names)
    @settings(max_examples=150)
    def test_similarity_bounds_and_symmetry(self, a, b):
        for matcher in (TrigramMatcher(), EditDistanceMatcher(), AffixMatcher(), SoundexMatcher()):
            forward = matcher.similarity(a, b)
            backward = matcher.similarity(b, a)
            assert 0.0 <= forward <= 1.0
            assert abs(forward - backward) < 1e-9

    @given(a=words)
    @settings(max_examples=100)
    def test_identity_scores_one(self, a):
        for matcher in (TrigramMatcher(), EditDistanceMatcher(), AffixMatcher(), SoundexMatcher()):
            assert matcher.similarity(a, a) == 1.0

    @given(a=words, b=words, c=words)
    @settings(max_examples=100)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(a=words, b=words)
    @settings(max_examples=100)
    def test_levenshtein_bounds(self, a, b):
        distance = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))


class TestTokenizerProperties:
    @given(name=names)
    @settings(max_examples=150)
    def test_tokens_are_lowercase_and_non_empty(self, name):
        tokenizer = NameTokenizer()
        tokens = tokenizer.tokenize(name)
        assert all(token == token.lower() for token in tokens)
        assert all(token for token in tokens)

    @given(name=names)
    @settings(max_examples=150)
    def test_split_never_loses_alphanumeric_characters(self, name):
        joined = "".join(split_name(name))
        expected = "".join(c for c in name if c.isalnum())
        assert joined == expected

    @given(parts=st.lists(words, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_tokenize_path_is_concatenation(self, parts):
        tokenizer = NameTokenizer()
        combined = tokenizer.tokenize_path(parts)
        flattened = tuple(t for part in parts for t in tokenizer.tokenize(part))
        assert combined == flattened


class TestSynonymProperties:
    @given(pairs=st.lists(st.tuples(words, words), min_size=0, max_size=10), probe=st.tuples(words, words))
    @settings(max_examples=100)
    def test_similarity_symmetric_and_bounded(self, pairs, probe):
        dictionary = SynonymDictionary()
        for a, b in pairs:
            dictionary.add(a, b)
        x, y = probe
        assert dictionary.similarity(x, y) == dictionary.similarity(y, x)
        assert 0.0 <= dictionary.similarity(x, y) <= 1.0


class TestMetricProperties:
    @given(
        true_positives=st.integers(min_value=0, max_value=200),
        false_positives=st.integers(min_value=0, max_value=200),
        false_negatives=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=200)
    def test_metric_relationships(self, true_positives, false_positives, false_negatives):
        quality = MatchQuality(true_positives, false_positives, false_negatives)
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
        assert quality.overall <= quality.recall + 1e-9
        assert quality.overall <= 1.0
        assert 0.0 <= quality.f_measure <= 1.0
        if quality.real > 0 and quality.predicted > 0:
            # Overall = Recall * (2 - 1/Precision) whenever both are defined
            if quality.precision > 0:
                expected = quality.recall * (2 - 1 / quality.precision)
                assert abs(quality.overall - expected) < 1e-9


def _property_pair():
    """A small schema pair built once for the combined-similarity properties."""
    from repro.model.builder import SchemaBuilder

    left_builder = SchemaBuilder("PL")
    with left_builder.inner("A"):
        left_builder.leaves("a1", "a2", "a3", "a4", "a5")
    right_builder = SchemaBuilder("PR")
    with right_builder.inner("B"):
        right_builder.leaves("b1", "b2", "b3", "b4", "b5")
    return left_builder.build(), right_builder.build()


_PROPERTY_PAIR = _property_pair()


class TestCombinedSimilarityProperties:
    @given(
        sims=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=0, max_size=5),
        extra_source=st.integers(min_value=0, max_value=5),
        extra_target=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=150)
    def test_dice_dominates_average(self, sims, extra_source, extra_target):
        """Dice is at least as optimistic as Average (Section 6.3)."""
        left, right = _PROPERTY_PAIR
        source_paths = left.leaf_paths()
        target_paths = right.leaf_paths()
        count = min(len(sims), len(source_paths), len(target_paths))
        pairs = [
            (source_paths[i], target_paths[i], sims[i])
            for i in range(count)
        ]
        source_size = count + extra_source if count else extra_source + 1
        target_size = count + extra_target if count else extra_target + 1
        average = AVERAGE_COMBINED.combine(pairs, source_size, target_size)
        dice = DICE_COMBINED.combine(pairs, source_size, target_size)
        assert dice + 1e-9 >= average
        assert 0.0 <= average <= 1.0
        assert 0.0 <= dice <= 1.0
