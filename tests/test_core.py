"""Tests for the match operation, strategies and the iterative processor."""

import pytest

from repro.combination.strategy import default_combination, parse_combination
from repro.core.match_operation import (
    build_context,
    execute_matchers,
    match,
    match_with_strategy,
    schema_similarity,
)
from repro.core.processor import MatchProcessor
from repro.core.strategy import MatchStrategy, default_strategy, single_matcher_strategy
from repro.exceptions import ComaError, StrategyError
from repro.matchers.hybrid import NameMatcher
from repro.matchers.simple.user_feedback import UserFeedbackStore


class TestMatchStrategy:
    def test_default_strategy_runs_all_hybrids(self):
        strategy = default_strategy()
        assert strategy.matcher_names() == ("Name", "NamePath", "TypeName", "Children", "Leaves")
        assert strategy.name == "All"

    def test_resolve_matchers_by_name_and_instance(self):
        strategy = MatchStrategy(matchers=["Name", NameMatcher()])
        resolved = strategy.resolve_matchers()
        assert len(resolved) == 2
        assert all(m.name == "Name" for m in resolved)

    def test_invalid_reference_rejected(self):
        with pytest.raises(StrategyError):
            MatchStrategy(matchers=[42]).resolve_matchers()

    def test_empty_matchers_rejected(self):
        with pytest.raises(StrategyError):
            MatchStrategy(matchers=[]).resolve_matchers()

    def test_single_matcher_strategy(self):
        strategy = single_matcher_strategy("NamePath")
        assert strategy.matcher_names() == ("NamePath",)
        assert "NamePath" in strategy.describe()

    def test_replaced(self):
        strategy = default_strategy().replaced(matchers=["Name"], name="just-name")
        assert strategy.matcher_names() == ("Name",)
        assert strategy.name == "just-name"


class TestMatchOperation:
    def test_execute_matchers_builds_cube(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        cube = execute_matchers([NameMatcher()], tiny_context)
        assert cube.matcher_names == ("Name",)
        assert cube.shape == (1, len(left.paths()), len(right.paths()))

    def test_figure1_default_match_finds_city_correspondences(self, po1, po2):
        outcome = match(po1, po2)
        pairs = outcome.result.pair_set()
        assert ("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City") in pairs or (
            "PO1.Customer.custCity",
            "PO2.PO2.DeliverTo.Address.City",
        ) in pairs
        assert 0.0 <= outcome.schema_similarity <= 1.0
        assert outcome.cube.shape[0] == 5

    def test_match_with_selected_matchers(self, po1, po2):
        outcome = match(po1, po2, matchers=["NamePath"])
        assert outcome.cube.matcher_names == ("NamePath",)

    def test_match_with_custom_combination(self, po1, po2):
        combination = parse_combination("Max", "Both", "MaxN(1)")
        outcome = match(po1, po2, combination=combination)
        assert outcome.strategy.combination.aggregation.name == "Max"

    def test_feedback_overrides_result(self, po1, po2):
        feedback = UserFeedbackStore()
        feedback.reject("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City")
        feedback.accept("PO1.ShipTo.shipToZip", "PO2.PO2.BillTo.Address.Zip")
        outcome = match(po1, po2, feedback=feedback)
        pairs = outcome.result.pair_set()
        assert ("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City") not in pairs
        assert ("PO1.ShipTo.shipToZip", "PO2.PO2.BillTo.Address.Zip") in pairs

    def test_schema_similarity_from_reference(self, po1, po2):
        from repro.datasets.figure1 import figure1_reference_mapping

        reference = figure1_reference_mapping(po1, po2)
        value = schema_similarity(po1, po2, reference=reference)
        expected = (len(reference.matched_sources()) + len(reference.matched_targets())) / (
            len(po1.paths()) + len(po2.paths())
        )
        assert value == pytest.approx(expected)

    def test_match_with_strategy_records_strategy(self, po1, po2):
        strategy = MatchStrategy(matchers=["Name"], combination=default_combination())
        outcome = match_with_strategy(po1, po2, strategy)
        assert outcome.strategy is strategy


class TestMatchProcessor:
    def test_automatic_single_iteration(self, po1, po2):
        processor = MatchProcessor(po1, po2)
        outcome = processor.run_iteration()
        assert len(processor.iterations) == 1
        assert processor.last_outcome is outcome

    def test_last_outcome_requires_iteration(self, po1, po2):
        processor = MatchProcessor(po1, po2)
        with pytest.raises(ComaError):
            _ = processor.last_outcome

    def test_interactive_feedback_loop(self, po1, po2):
        processor = MatchProcessor(po1, po2)
        first = processor.run_iteration()
        assert len(first.result) > 0
        # reject everything proposed, accept one pair manually
        for correspondence in first.result:
            processor.reject(correspondence.source, correspondence.target)
        processor.accept("PO1.Customer.custName", "PO2.PO2.BillTo.Address.Street")
        second = processor.run_iteration()
        current = processor.current_result()
        assert ("PO1.Customer.custName", "PO2.PO2.BillTo.Address.Street") in current
        for correspondence in first.result:
            assert (correspondence.source, correspondence.target) not in current
        assert len(processor.iterations) == 2
        assert second is processor.last_outcome

    def test_pending_candidates_shrink_with_feedback(self, po1, po2):
        processor = MatchProcessor(po1, po2)
        processor.run_iteration()
        pending_before = processor.pending_candidates()
        assert pending_before
        first = pending_before[0]
        processor.accept(first.source, first.target)
        assert len(processor.pending_candidates()) == len(pending_before) - 1

    def test_accept_all(self, po1, po2):
        processor = MatchProcessor(po1, po2)
        outcome = processor.run_iteration()
        processor.accept_all(outcome.result)
        assert len(processor.feedback.accepted_pairs) == len(outcome.result)

    def test_strategy_change_between_iterations(self, po1, po2):
        processor = MatchProcessor(po1, po2)
        processor.run_iteration()
        processor.set_strategy(single_matcher_strategy("NamePath"))
        outcome = processor.run_iteration()
        assert outcome.cube.matcher_names == ("NamePath",)
