"""Tests for SchemaPath and MatchResult behaviour."""

import pytest

from repro.exceptions import SchemaError
from repro.model.builder import SchemaBuilder
from repro.model.mapping import Correspondence, MatchResult
from repro.model.path import SchemaPath
from repro.model.schema import Schema


@pytest.fixture()
def pair():
    left = SchemaBuilder("L")
    with left.inner("A"):
        left.leaf("x", "int")
        left.leaf("y", "int")
    left_schema = left.build()
    right = SchemaBuilder("R")
    with right.inner("B"):
        right.leaf("u", "int")
        right.leaf("v", "int")
    right_schema = right.build()
    return left_schema, right_schema


class TestSchemaPath:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            SchemaPath([])

    def test_accessors(self, pair):
        left, _ = pair
        path = left.find_path("L.A.x")
        assert path.name == "x"
        assert path.names == ("L", "A", "x")
        assert path.depth == 2
        assert path.root.name == "L"
        assert path.parent.dotted() == "L.A"
        assert path.dotted(skip_root=True) == "A.x"
        assert path.long_name() == "LAx"
        assert len(path) == 3
        assert path[1].name == "A"

    def test_equality_is_by_element_identity(self, pair):
        left, _ = pair
        first = left.find_path("L.A.x")
        second = left.find_path("L.A.x")
        assert first == second
        assert hash(first) == hash(second)
        assert first != left.find_path("L.A.y")

    def test_startswith(self, pair):
        left, _ = pair
        parent = left.find_path("L.A")
        child = left.find_path("L.A.x")
        assert child.startswith(parent)
        assert not parent.startswith(child)

    def test_root_path_has_no_parent(self, pair):
        left, _ = pair
        root_path = left.paths(include_root=True)[0]
        assert root_path.parent is None

    def test_sorting_is_by_names(self, pair):
        left, _ = pair
        paths = sorted(left.paths(), reverse=True)
        assert paths[0].name == "y"


class TestMatchResult:
    def test_similarity_bounds(self, pair):
        left, right = pair
        with pytest.raises(ValueError):
            Correspondence(left.find_path("L.A.x"), right.find_path("R.B.u"), 1.5)

    def test_add_keeps_max_similarity(self, pair):
        left, right = pair
        result = MatchResult(left, right)
        x, u = left.find_path("L.A.x"), right.find_path("R.B.u")
        result.add_pair(x, u, 0.4)
        result.add_pair(x, u, 0.7)
        result.add_pair(x, u, 0.2)
        assert result.similarity_of(x, u) == 0.7
        assert len(result) == 1

    def test_inverted_round_trip(self, pair):
        left, right = pair
        result = MatchResult.from_tuples(left, right, [("L.A.x", "R.B.u", 0.8)])
        inverted = result.inverted()
        assert inverted.source_schema is right
        assert inverted.pair_set() == frozenset({("R.B.u", "L.A.x")})
        assert inverted.inverted().pair_set() == result.pair_set()

    def test_filter_and_threshold(self, pair):
        left, right = pair
        result = MatchResult.from_tuples(
            left, right, [("L.A.x", "R.B.u", 0.9), ("L.A.y", "R.B.v", 0.3)]
        )
        assert len(result.above_threshold(0.5)) == 1
        assert len(result.filter(lambda c: c.target.name == "v")) == 1

    def test_uniform_similarity(self, pair):
        left, right = pair
        result = MatchResult.from_tuples(left, right, [("L.A.x", "R.B.u", 0.3)])
        uniform = result.with_uniform_similarity()
        assert uniform.correspondences[0].similarity == 1.0

    def test_merge_requires_same_schema_pair(self, pair):
        left, right = pair
        first = MatchResult(left, right)
        second = MatchResult(right, left)
        with pytest.raises(SchemaError):
            first.merged_with(second)

    def test_merge_unions_pairs(self, pair):
        left, right = pair
        first = MatchResult.from_tuples(left, right, [("L.A.x", "R.B.u", 0.5)])
        second = MatchResult.from_tuples(left, right, [("L.A.y", "R.B.v", 0.6)])
        merged = first.merged_with(second)
        assert len(merged) == 2

    def test_candidates_sorted_by_similarity(self, pair):
        left, right = pair
        result = MatchResult.from_tuples(
            left, right, [("L.A.x", "R.B.u", 0.5), ("L.A.x", "R.B.v", 0.9)]
        )
        candidates = result.candidates_for_source(left.find_path("L.A.x"))
        assert [c.target.name for c in candidates] == ["v", "u"]

    def test_contains_protocol(self, pair):
        left, right = pair
        result = MatchResult.from_tuples(left, right, [("L.A.x", "R.B.u", 0.5)])
        assert ("L.A.x", "R.B.u") in result
        assert (left.find_path("L.A.x"), right.find_path("R.B.u")) in result
        assert ("L.A.y", "R.B.u") not in result

    def test_as_tuples_round_trip(self, pair):
        left, right = pair
        rows = [("L.A.x", "R.B.u", 0.5), ("L.A.y", "R.B.v", 1.0)]
        result = MatchResult.from_tuples(left, right, rows)
        assert sorted(result.as_tuples()) == sorted(rows)
