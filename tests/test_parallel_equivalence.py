"""Differential harness: serial vs thread-pool vs process-pool execution.

VOODB-style methodology: a parallel execution backend is only trustworthy
when validated against a serial reference.  These tests generate schema
pairs (fixed sweep + hypothesis-driven shapes), match each pair through

* the **serial** reference (a plain :class:`MatchSession`),
* the **thread pool** (a session on ``MatchEngine(max_workers=2)``), and
* the **process pool** (``match_many(..., process_pool=...)`` over spawned
  workers),

and assert *byte identity*: sha256-identical serialized ``MatchResult``s and
bit-identical cube / aggregated-matrix floats across all three backends.
"""

from __future__ import annotations

import hashlib
import json
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.generators import generate_pair
from repro.engine.engine import MatchEngine
from repro.exceptions import SessionError
from repro.parallel import ProcessSessionPool
from repro.session import MatchSession

#: Cacheable strategies exercising different combination tuples.
SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "All(Max,Both,Thr(0.5)+MaxN(1),Average)",
    "Name+Leaves(Average,Both,Thr(0.6),Dice)",
)


@pytest.fixture(scope="module")
def process_pool():
    """One spawned two-worker pool shared by the whole module (spawns are slow)."""
    pool = ProcessSessionPool(size=2)
    yield pool
    pool.close()


def result_sha256(outcome) -> str:
    """The digest of a canonical serialization of the outcome's MatchResult.

    Similarities are serialized with ``float.hex`` so the digest is sensitive
    to every bit of every float -- "equal" here means *byte-identical*, not
    approximately equal.
    """
    document = {
        "source": outcome.result.source_schema.name,
        "target": outcome.result.target_schema.name,
        "strategy": outcome.strategy.to_spec(),
        "schema_similarity": float(outcome.schema_similarity).hex(),
        "rows": [
            [source, target, float(similarity).hex()]
            for source, target, similarity in outcome.result.as_tuples()
        ],
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def assert_byte_identical(reference, candidate, label: str) -> None:
    """Assert two outcomes agree bit-for-bit (mapping, cube, aggregation)."""
    assert result_sha256(candidate) == result_sha256(reference), (
        f"{label}: serialized MatchResult diverged from the serial reference"
    )
    assert candidate.cube.matcher_names == reference.cube.matcher_names
    assert candidate.cube.as_array().tobytes() == reference.cube.as_array().tobytes(), (
        f"{label}: similarity-cube floats diverged"
    )
    assert (
        candidate.aggregated.values.tobytes() == reference.aggregated.values.tobytes()
    ), f"{label}: aggregated-matrix floats diverged"
    assert struct.pack("<d", candidate.schema_similarity) == struct.pack(
        "<d", reference.schema_similarity
    ), f"{label}: schema similarity diverged"


def _pair_sweep():
    """104 deterministic generated pairs of varying shape, overlap and seed."""
    pairs = []
    for seed in range(13):
        for sections in (2, 3):
            for fields in (2, 3):
                for overlap in (0.4, 0.8):
                    pairs.append(
                        generate_pair(
                            sections=sections,
                            fields_per_section=fields,
                            overlap=overlap,
                            seed=seed * 101 + sections * 7 + fields,
                            source_name=f"A{seed}s{sections}f{fields}o{int(overlap * 10)}",
                            target_name=f"B{seed}s{sections}f{fields}o{int(overlap * 10)}",
                        )
                    )
    return pairs


class TestHundredPairSweep:
    """The acceptance sweep: >= 100 generated pairs, three backends, one truth."""

    def test_serial_thread_and_process_agree_on_104_pairs(self, process_pool):
        pairs = _pair_sweep()
        assert len(pairs) >= 100
        requests = [
            (pair.source, pair.target, SPECS[index % len(SPECS)])
            for index, pair in enumerate(pairs)
        ]
        serial = MatchSession().match_many(requests)
        threaded = MatchSession(engine=MatchEngine(max_workers=2)).match_many(requests)
        processed = MatchSession().match_many(requests, process_pool=process_pool)
        assert len(serial) == len(threaded) == len(processed) == len(requests)
        for reference, thread_outcome, process_outcome in zip(
            serial, threaded, processed
        ):
            assert_byte_identical(reference, thread_outcome, "thread pool")
            assert_byte_identical(reference, process_outcome, "process pool")


class TestGeneratedShapes:
    """Hypothesis-driven shapes: any generator output must stay byte-identical."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        sections=st.integers(min_value=1, max_value=4),
        fields=st.integers(min_value=1, max_value=4),
        overlap=st.sampled_from((0.0, 0.3, 0.7, 1.0)),
        seed=st.integers(min_value=0, max_value=2**20),
        spec=st.sampled_from(SPECS),
    )
    def test_process_pool_matches_serial(
        self, process_pool, sections, fields, overlap, seed, spec
    ):
        pair = generate_pair(
            sections=sections, fields_per_section=fields, overlap=overlap, seed=seed
        )
        reference = MatchSession().match(pair.source, pair.target, strategy=spec)
        remote = process_pool.match(pair.source, pair.target, strategy=spec)
        assert_byte_identical(reference, remote, "process pool")


class TestSessionFanOut:
    """The session-level fan-out contract around the raw pool."""

    def test_remote_cubes_fold_back_into_the_session_cache(self, process_pool):
        pair = generate_pair(sections=2, fields_per_section=2, seed=99)
        session = MatchSession()
        fanned = session.match_many(
            [(pair.source, pair.target)], process_pool=process_pool
        )[0]
        info = session.cache_info()
        assert (info["cubes"], info["cube_misses"]) == (1, 1)
        # The folded-back cube now serves the serial path as a cache hit,
        # and the hit is byte-identical to the remote execution.
        local = session.match(pair.source, pair.target)
        assert session.cache_info()["cube_hits"] == 1
        assert_byte_identical(fanned, local, "cache refold")

    def test_non_wireable_strategies_run_locally(self, process_pool):
        # UserFeedback depends on parent-side state, so it must not fan out --
        # but the batch as a whole still succeeds, byte-identically.
        pair = generate_pair(sections=2, fields_per_section=2, seed=7)
        spec = "Name+UserFeedback(Average,Both,Thr(0.5),Average)"
        session = MatchSession()
        fanned = session.match_many(
            [(pair.source, pair.target, spec)], process_pool=process_pool
        )[0]
        reference = MatchSession().match(pair.source, pair.target, strategy=spec)
        assert_byte_identical(reference, fanned, "local fallback")

    def test_mismatched_configuration_is_refused(self, process_pool):
        from repro.linguistic.tokenizer import NameTokenizer

        session = MatchSession(
            tokenizer=NameTokenizer(expand_abbreviations=False)
        )
        pair = generate_pair(sections=2, fields_per_section=2, seed=3)
        with pytest.raises(SessionError):
            session.match_many(
                [(pair.source, pair.target)], process_pool=process_pool
            )

    def test_processes_and_pool_are_mutually_exclusive(self, process_pool):
        pair = generate_pair(sections=2, fields_per_section=2, seed=4)
        with pytest.raises(SessionError):
            MatchSession().match_many(
                [(pair.source, pair.target)],
                processes=1,
                process_pool=process_pool,
            )
