"""Incremental re-matching: digests, deltas, splice byte-identity, staleness fixes.

The hard contract under test: ``MatchSession.rematch`` must be *byte-identical*
to a from-scratch ``match`` of the evolved pair, for every delta -- splicing is
an execution shortcut, never an approximation.  Identity is asserted through a
sha256 of a canonical serialization with ``float.hex`` similarities plus raw
``tobytes()`` comparison of the cube, so "equal" means every bit of every float.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.figure1 import PO1_DDL, PO2_XSD, load_po1, load_po2
from repro.datasets.generators import generate_schema, mutate_schema
from repro.model.digests import (
    path_signatures,
    schema_delta,
    schema_digests,
)
from repro.model.element import ElementKind, LinkKind
from repro.model.schema import Schema
from repro.exceptions import SessionError
from repro.session import MatchSession


def result_sha256(outcome) -> str:
    """The digest of a canonical serialization of the outcome's MatchResult."""
    document = {
        "strategy": outcome.strategy.to_spec(),
        "schema_similarity": float(outcome.schema_similarity).hex(),
        "rows": [
            [source, target, float(similarity).hex()]
            for source, target, similarity in outcome.result.as_tuples()
        ],
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def assert_outcomes_identical(spliced, cold, label: str) -> None:
    assert result_sha256(spliced) == result_sha256(cold), (
        f"{label}: spliced MatchResult diverged from the cold reference"
    )
    assert spliced.cube.matcher_names == cold.cube.matcher_names
    assert spliced.cube.as_array().tobytes() == cold.cube.as_array().tobytes(), (
        f"{label}: similarity-cube floats diverged"
    )
    assert spliced.aggregated.values.tobytes() == cold.aggregated.values.tobytes()


def rebuild_schema(schema, name=None, edit=None):
    """A deep copy of a schema's containment tree, optionally with one edit.

    ``edit`` is ``None`` or a dict: ``{"op": "rename"|"retype", "at": dotted,
    "value": str}``, ``{"op": "remove", "at": dotted}``, or ``{"op": "add",
    "at": parent-name-or-None, "value": leaf-name}``.  Dotted names are
    root-exclusive, matching ``SchemaPath.dotted(skip_root=True)``.
    """
    copy = Schema(name or schema.name)
    mapping = {schema.root: copy.root}

    def visit(element, parent, prefix):
        for child in schema.children(element):
            dotted = f"{prefix}.{child.name}" if prefix else child.name
            child_name, child_type = child.name, child.source_type
            if edit is not None and edit.get("at") == dotted:
                if edit["op"] == "remove":
                    continue
                if edit["op"] == "rename":
                    child_name = edit["value"]
                elif edit["op"] == "retype":
                    child_type = edit["value"]
            made = copy.add_element(
                child_name,
                parent=parent,
                kind=child.kind,
                source_type=child_type,
                documentation=child.documentation,
            )
            mapping[child] = made
            visit(child, made, dotted)

    visit(schema.root, None, "")
    for link in schema.references():
        if link.source in mapping and link.target in mapping:
            copy.add_link(mapping[link.source], mapping[link.target], kind=link.kind)
    if edit is not None and edit["op"] == "add":
        parent = copy.find_element(edit["at"]) if edit["at"] else None
        copy.add_element(
            edit["value"], parent=parent, kind=ElementKind.COLUMN,
            source_type="VARCHAR(24)",
        )
    return copy


class TestSchemaDigests:
    def test_signatures_are_content_determined(self):
        first, _ = generate_schema("Sig", sections=3, fields_per_section=3, seed=3)
        second, _ = generate_schema("Sig", sections=3, fields_per_section=3, seed=3)
        assert path_signatures(first) == path_signatures(second)
        assert len(path_signatures(first)) == len(first.paths())

    def test_schema_name_does_not_affect_signatures(self):
        """Pins the root-exclusion invariant: re-uploading an identical schema
        under a new name must keep every row signature (and splice fully)."""
        schema, _ = generate_schema("NameA", sections=2, fields_per_section=3, seed=1)
        renamed = rebuild_schema(schema, name="NameB")
        assert path_signatures(schema) == path_signatures(renamed)

    def test_leaf_rename_changes_exactly_the_affected_signatures(self):
        schema = load_po1()
        leaf = schema.find_path("PO1.ShipTo.poNo")
        edited = rebuild_schema(
            schema, edit={"op": "rename", "at": leaf.dotted(skip_root=True),
                          "value": "purchaseOrderNo"}
        )
        before = path_signatures(schema)
        after = path_signatures(edited)
        assert len(before) == len(after)
        changed = {
            path.dotted(skip_root=True)
            for path, old_sig, new_sig in zip(schema.paths(), before, after)
            if old_sig != new_sig
        }
        # The renamed leaf's own row changes (chain digest), and its ancestor
        # section's subtree digest changes; every other row stays reusable.
        assert changed == {"ShipTo", "ShipTo.poNo"}

    def test_inner_rename_invalidates_the_whole_chain_below(self):
        schema = load_po1()
        edited = rebuild_schema(
            schema, edit={"op": "rename", "at": "ShipTo", "value": "Destination"}
        )
        delta = schema_delta(schema, edited)
        recomputed = {edited.paths()[index].dotted(skip_root=True)
                      for index in delta.changed}
        assert "Destination" in recomputed
        assert any(name.startswith("Destination.") for name in recomputed)


class TestSchemaDelta:
    def test_identical_versions_reuse_everything(self):
        schema, _ = generate_schema("Same", sections=2, fields_per_section=2, seed=2)
        delta = schema_delta(schema, rebuild_schema(schema))
        assert delta.recomputed == 0
        assert delta.reused == len(schema.paths())
        assert delta.added == () and delta.removed == ()
        assert not delta.full

    def test_single_rename_is_classified_as_add_plus_remove(self):
        schema = load_po1()
        edited = rebuild_schema(
            schema, name="PO1v2",
            edit={"op": "rename", "at": "ShipTo.poNo", "value": "purchaseOrderNo"},
        )
        delta = schema_delta(schema, edited)
        assert delta.added == ("ShipTo.purchaseOrderNo",)
        assert delta.removed == ("ShipTo.poNo",)
        assert delta.reused == len(schema.paths()) - 2  # leaf row + ShipTo row

    def test_differing_reference_links_force_a_full_delta(self):
        schema = Schema("Refs")
        table = schema.add_element("Orders", kind=ElementKind.TABLE)
        column = schema.add_element("custId", parent=table, kind=ElementKind.COLUMN)
        other = schema.add_element("Customers", kind=ElementKind.TABLE)
        key = schema.add_element("id", parent=other, kind=ElementKind.COLUMN)
        linked = rebuild_schema(schema)
        linked.add_link(
            linked.find_element("custId"), linked.find_element("id"),
            kind=LinkKind.REFERENCE,
        )
        delta = schema_delta(schema, linked)
        assert delta.full
        assert column is not key  # silence unused warnings, keep identities alive

    def test_duplicate_content_paths_pair_up(self):
        schema = Schema("Dup")
        for section in ("BillTo", "ShipTo"):
            inner = schema.add_element(section, kind=ElementKind.ELEMENT)
            schema.add_element("City", parent=inner, kind=ElementKind.COLUMN,
                               source_type="VARCHAR(40)")
        delta = schema_delta(schema, rebuild_schema(schema))
        assert delta.recomputed == 0
        assert delta.reused == len(schema.paths())


EDIT_OPS = ("rename", "retype", "remove", "add")


def _single_edit(schema, op, index, token):
    """One deterministic structural edit of the drawn kind."""
    leaves = [path.dotted(skip_root=True) for path in schema.leaf_paths()]
    inners = [path.dotted(skip_root=True) for path in schema.inner_paths()]
    if op == "rename":
        return {"op": "rename", "at": leaves[index % len(leaves)],
                "value": f"evolved_field_{token}"}
    if op == "retype":
        return {"op": "retype", "at": leaves[index % len(leaves)], "value": "DATE"}
    if op == "remove":
        return {"op": "remove", "at": leaves[index % len(leaves)]}
    parent = inners[index % len(inners)] if inners else None
    return {"op": "add", "at": parent.split(".")[-1] if parent else None,
            "value": f"grafted_field_{token}"}


class TestRematchByteIdentity:
    """The property suite: random single-edit deltas, sha256-identical splices."""

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_single_edit_rematch_equals_cold_match(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=10_000), label="seed")
        sections = data.draw(st.integers(min_value=2, max_value=3), label="sections")
        fields = data.draw(st.integers(min_value=2, max_value=3), label="fields")
        op = data.draw(st.sampled_from(EDIT_OPS), label="op")
        index = data.draw(st.integers(min_value=0, max_value=40), label="index")

        old, _ = generate_schema("EvolveA", sections=sections,
                                 fields_per_section=fields, seed=seed)
        target, _ = generate_schema("TargetB", sections=sections,
                                    fields_per_section=fields, variant=1,
                                    seed=seed + 1)
        edit = _single_edit(old, op, index, seed)
        new = rebuild_schema(old, name="EvolveA2", edit=edit)

        warm = MatchSession()
        previous = warm.match(old, target)
        spliced = warm.rematch(old, new, previous)
        assert warm.cache_info()["rematch_spliced"] == 1
        assert warm.cache_info()["rematch_fallbacks"] == 0

        cold = MatchSession().match(new, target)
        assert_outcomes_identical(spliced, cold, f"single-edit {op}")

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_target_side_evolution_splices_columns(self, seed):
        source, _ = generate_schema("FixedA", sections=2, fields_per_section=3,
                                    seed=seed)
        old, _ = generate_schema("EvolveB", sections=2, fields_per_section=3,
                                 variant=1, seed=seed + 1)
        edit = _single_edit(old, EDIT_OPS[seed % len(EDIT_OPS)], seed, seed)
        new = rebuild_schema(old, name="EvolveB2", edit=edit)

        warm = MatchSession()
        previous = warm.match(source, old)
        spliced = warm.rematch(old, new, previous)
        cold = MatchSession().match(source, new)
        assert_outcomes_identical(spliced, cold, "target-side edit")

    def test_mutate_schema_deltas_stay_identical(self):
        """Heavier drift via the corpus mutator: renames + type drift at once."""
        old, _ = generate_schema("Drift", sections=3, fields_per_section=3, seed=9)
        target, _ = generate_schema("DriftTarget", sections=3,
                                    fields_per_section=3, variant=1, seed=10)
        new = mutate_schema(old, "Drift", seed=21, rename_rate=0.3,
                            graft_sections=1, graft_fields=2, drift_rate=0.3)
        warm = MatchSession()
        previous = warm.match(old, target)
        spliced = warm.rematch(old, new, previous)
        cold = MatchSession().match(new, target)
        assert_outcomes_identical(spliced, cold, "mutate_schema drift")

    def test_schema_renamed_on_upload_still_splices(self):
        """Same content, new schema name: every row must be reused."""
        old, _ = generate_schema("V1", sections=3, fields_per_section=3, seed=4)
        target, _ = generate_schema("T", sections=3, fields_per_section=3,
                                    variant=1, seed=5)
        leaf = old.leaf_paths()[0].dotted(skip_root=True)
        new = rebuild_schema(
            old, name="V2",
            edit={"op": "rename", "at": leaf, "value": "renamed_on_upload"},
        )
        warm = MatchSession()
        previous = warm.match(old, target)
        spliced = warm.rematch(old, new, previous)
        info = warm.cache_info()
        assert info["rematch_spliced"] == 1
        assert info["rematch_reused_rows"] >= len(old.paths()) - 2
        cold = MatchSession().match(new, target)
        assert_outcomes_identical(spliced, cold, "renamed upload")


class TestRematchProcessBackend:
    """The cold reference computed by a spawned worker process must agree too."""

    @pytest.fixture(scope="class")
    def process_pool(self):
        from repro.parallel.pool import ProcessSessionPool

        pool = ProcessSessionPool(size=1)
        yield pool
        pool.close()

    @pytest.mark.parametrize("op", EDIT_OPS)
    def test_rematch_matches_process_backend_cold_match(self, process_pool, op):
        old, _ = generate_schema("ProcA", sections=2, fields_per_section=3, seed=13)
        target, _ = generate_schema("ProcB", sections=2, fields_per_section=3,
                                    variant=1, seed=14)
        new = rebuild_schema(old, name="ProcA2",
                             edit=_single_edit(old, op, 1, 13))
        warm = MatchSession()
        previous = warm.match(old, target)
        spliced = warm.rematch(old, new, previous)
        cold = process_pool.match(new, target)
        assert result_sha256(spliced) == result_sha256(cold), (
            f"{op}: spliced result diverged from the process-backend reference"
        )


class TestRematchFallbacks:
    def test_without_previous_or_target_is_an_error(self):
        old, _ = generate_schema("E", sections=2, fields_per_section=2, seed=1)
        new = rebuild_schema(old)
        with pytest.raises(SessionError):
            MatchSession().rematch(old, new)

    def test_unrelated_previous_result_is_an_error(self):
        old, _ = generate_schema("E", sections=2, fields_per_section=2, seed=1)
        new = rebuild_schema(old)
        other = MatchSession().match(load_po1(), load_po2())
        with pytest.raises(SessionError):
            MatchSession().rematch(old, new, other)

    def test_cold_session_without_store_falls_back_to_full_match(self):
        old, _ = generate_schema("Cold", sections=2, fields_per_section=2, seed=6)
        target, _ = generate_schema("ColdT", sections=2, fields_per_section=2,
                                    variant=1, seed=7)
        new = rebuild_schema(old, edit={"op": "retype",
                                        "at": old.leaf_paths()[0].dotted(skip_root=True),
                                        "value": "DATE"})
        session = MatchSession()
        outcome = session.rematch(old, new, target=target)
        info = session.cache_info()
        assert info["rematch_fallbacks"] == 1
        assert info["rematch_spliced"] == 0
        cold = MatchSession().match(new, target)
        assert_outcomes_identical(outcome, cold, "cold fallback")

    def test_full_delta_from_reference_links_falls_back(self):
        schema = Schema("RefFall")
        table = schema.add_element("Orders", kind=ElementKind.TABLE)
        schema.add_element("custId", parent=table, kind=ElementKind.COLUMN)
        other = schema.add_element("Customers", kind=ElementKind.TABLE)
        schema.add_element("id", parent=other, kind=ElementKind.COLUMN)
        linked = rebuild_schema(schema)
        linked.add_link(linked.find_element("custId"), linked.find_element("id"),
                        kind=LinkKind.REFERENCE)
        target, _ = generate_schema("RefT", sections=2, fields_per_section=2, seed=8)
        session = MatchSession()
        previous = session.match(schema, target)
        outcome = session.rematch(schema, linked, previous)
        assert session.cache_info()["rematch_fallbacks"] == 1
        cold = MatchSession().match(linked, target)
        assert_outcomes_identical(outcome, cold, "reference-link fallback")


class TestRestartSplice:
    """A fresh process splices from the persistent store, guarded by the
    persisted path signatures."""

    def test_splice_across_sessions_via_store(self, tmp_path):
        store = str(tmp_path / "store.db")
        old = load_po1()
        target = load_po2()
        new = rebuild_schema(
            old, name="PO1v2",
            edit={"op": "rename", "at": "ShipTo.poNo", "value": "purchaseOrderNo"},
        )
        with MatchSession(store=store) as first:
            first.match(old, target)
        with MatchSession(store=store) as second:
            outcome = second.rematch(load_po1(), new, target=load_po2())
            info = second.cache_info()
        assert info["rematch_spliced"] == 1
        assert info["rematch_fallbacks"] == 0
        cold = MatchSession().match(new, target)
        assert_outcomes_identical(outcome, cold, "restart splice")

    def test_impostor_old_schema_is_caught_by_persisted_signatures(self, tmp_path):
        """If the store's cube was computed from a different 'old' than the
        caller presents, the persisted signature vector disagrees and the
        session must fall back instead of splicing garbage."""
        store = str(tmp_path / "store.db")
        target = load_po2()
        with MatchSession(store=store) as first:
            first.match(load_po1(), target)
        impostor = rebuild_schema(
            load_po1(), name="PO1",
            edit={"op": "retype", "at": "ShipTo.poNo", "value": "DATE"},
        )
        new = rebuild_schema(
            impostor, name="PO1v2",
            edit={"op": "rename", "at": "ShipTo.poNo", "value": "purchaseOrderNo"},
        )
        with MatchSession(store=store) as second:
            outcome = second.rematch(impostor, new, target=load_po2())
            info = second.cache_info()
        assert info["rematch_fallbacks"] == 1
        cold = MatchSession().match(new, target)
        assert_outcomes_identical(outcome, cold, "impostor fallback")

    def test_store_round_trips_path_signatures(self, tmp_path):
        from repro.repository.store import SimilarityStore

        schema = load_po1()
        signatures = list(path_signatures(schema))
        with SimilarityStore(str(tmp_path / "sig.db")) as store:
            assert store.load_path_signatures("d" * 64) is None
            store.store_path_signatures("d" * 64, signatures)
            assert store.load_path_signatures("d" * 64) == tuple(signatures)
            store.store_path_signatures_async("e" * 64, signatures)
            store.flush()
            assert store.load_path_signatures("e" * 64) == tuple(signatures)
            assert store.info()["subtrees"] == 2


class TestStaleDigestMemoRegression:
    """Satellite bugfix: the session memoised schema digests by object identity
    and returned stale digests after in-place mutation, poisoning the store's
    content addresses."""

    def _mutate_in_place(self, schema):
        leaf = schema.find_path("PO1.ShipTo.poNo").leaf
        leaf.name = "purchaseOrderNo"
        section = schema.find_element("ShipTo")
        schema.add_element("auditedAt", parent=section, kind=ElementKind.COLUMN,
                           source_type="DATE")

    def test_in_place_mutation_misses_the_store_and_recomputes(self, tmp_path):
        store = str(tmp_path / "store.db")
        with MatchSession(store=store) as session:
            old = load_po1()
            target = load_po2()
            session.match(old, target)
            misses_before = session.cache_info()["store_misses"]
            # Mutating in place keeps the Schema *object* (the memo key) but
            # changes its content; adding an element also changes the path
            # tuple, so the cube cache misses and the store is consulted.
            self._mutate_in_place(old)
            session.match(old, target)
            info = session.cache_info()
        # The mutated schema is new content: the store cannot have it yet, so
        # the lookup must MISS (the stale memo would have hit the old address).
        assert info["store_misses"] > misses_before

    def test_mutated_schema_is_stored_under_its_true_address(self, tmp_path):
        store = str(tmp_path / "store.db")
        old = load_po1()
        target = load_po2()
        with MatchSession(store=store) as first:
            first.match(old, target)  # memoises the pristine digest
            self._mutate_in_place(old)
            first.match(old, target)  # must store under the *mutated* digest
        # An independent schema with the same content (and registration
        # order, which the content digest is sensitive to): a fresh parse
        # with the same mutation replayed.
        mutated_copy = load_po1()
        self._mutate_in_place(mutated_copy)
        with MatchSession(store=store) as second:
            second.match(mutated_copy, target)
            info = second.cache_info()
        assert info["store_hits"] == 1, (
            "the mutated pair's cube was not stored under its true content "
            "address -- the stale digest memo is back"
        )

    def test_fingerprint_tracks_renames_and_growth(self):
        session = MatchSession()
        schema = load_po1()
        first = session._schema_fingerprint(schema)
        schema.find_path("PO1.ShipTo.poNo").leaf.name = "renamed"
        second = session._schema_fingerprint(schema)
        assert first != second
        schema.add_element("extra", parent=schema.find_element("ShipTo"),
                           kind=ElementKind.COLUMN)
        assert session._schema_fingerprint(schema) != second


class TestServiceRematch:
    """POST /rematch on the transport-agnostic service core."""

    @pytest.fixture()
    def service(self):
        from repro.service.server import MatchService

        service = MatchService(pool_size=1)
        for name, text, fmt in (
            ("PO1", PO1_DDL, "sql"),
            ("PO1v2", PO1_DDL.replace("poNo", "purchaseOrderNo"), "sql"),
            ("PO2", PO2_XSD, "xsd"),
        ):
            status, _ = service.handle_request(
                "POST", "/schemas", {"name": name, "text": text, "format": fmt}
            )
            assert status == 201
        yield service
        service.close()

    def test_rematch_payload_matches_match_bytes(self, service):
        status, warm = service.handle_request(
            "POST", "/match", {"source": "PO1", "target": "PO2"}
        )
        assert status == 200
        status, rematch = service.handle_request(
            "POST", "/rematch", {"old": "PO1", "new": "PO1v2", "target": "PO2"}
        )
        assert status == 200
        status, cold = service.handle_request(
            "POST", "/match", {"source": "PO1v2", "target": "PO2"}
        )
        assert status == 200
        detail = rematch.pop("rematch")
        assert rematch == cold
        assert detail["spliced"] is True
        assert detail["added"] == ["ShipTo.purchaseOrderNo"]
        assert detail["removed"] == ["ShipTo.poNo"]
        assert detail["reused_rows"] + detail["recomputed_rows"] >= len(
            load_po1().paths()
        ) - 1
        assert warm["schema_similarity"] >= 0.0

    def test_rematch_without_history_reports_unspliced(self, service):
        status, body = service.handle_request(
            "POST", "/rematch", {"old": "PO1", "new": "PO1v2", "target": "PO2"}
        )
        assert status == 200
        assert body["rematch"]["spliced"] is False

    def test_rematch_validation_errors(self, service):
        status, _ = service.handle_request("POST", "/rematch", {"old": "PO1"})
        assert status == 400
        status, _ = service.handle_request(
            "POST", "/rematch", {"old": "PO1", "new": "Nope", "target": "PO2"}
        )
        assert status == 404
        status, _ = service.handle_request(
            "POST", "/rematch",
            {"old": "PO1", "new": "PO1v2", "target": "PO2",
             "min_similarity": "high"},
        )
        assert status == 400


class TestCliRematch:
    def test_rematch_command_prints_splice_stats(self, tmp_path, capsys):
        from repro.cli import main

        old = tmp_path / "old.sql"
        old.write_text(PO1_DDL, encoding="utf-8")
        new = tmp_path / "new.sql"
        new.write_text(PO1_DDL.replace("poNo", "purchaseOrderNo"), encoding="utf-8")
        target = tmp_path / "po2.xsd"
        target.write_text(PO2_XSD, encoding="utf-8")
        exit_code = main(["rematch", str(old), str(new), str(target)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "spliced:           yes" in out
        assert "paths added:       ShipTo.purchaseOrderNo" in out

    def test_rematch_command_splices_from_a_store(self, tmp_path, capsys):
        from repro.cli import main

        old = tmp_path / "old.sql"
        old.write_text(PO1_DDL, encoding="utf-8")
        new = tmp_path / "new.sql"
        new.write_text(PO1_DDL.replace("poNo", "purchaseOrderNo"), encoding="utf-8")
        target = tmp_path / "po2.xsd"
        target.write_text(PO2_XSD, encoding="utf-8")
        store = str(tmp_path / "store.db")
        with MatchSession(store=store) as session:
            from repro.importers.registry import DEFAULT_IMPORTERS

            session.match(
                DEFAULT_IMPORTERS.import_file(str(old)),
                DEFAULT_IMPORTERS.import_file(str(target)),
            )
        exit_code = main(["rematch", str(old), str(new), str(target),
                          "--store", store])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "spliced:           yes" in out
