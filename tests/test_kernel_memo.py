"""Tests for the process-wide kernel memo pool (:mod:`repro.matchers.memo`)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets.figure1 import load_po1, load_po2
from repro.matchers.memo import (
    DEFAULT_MEMO_POOL,
    KernelMemoPool,
    active_pool,
    set_active_pool,
)
from repro.matchers.string.affix import AffixMatcher
from repro.matchers.string.edit_distance import EditDistanceMatcher
from repro.session import MatchSession


@pytest.fixture()
def pool():
    """A fresh pool installed as the active one for the duration of a test."""
    fresh = KernelMemoPool(max_entries=10_000)
    previous = set_active_pool(fresh)
    yield fresh
    set_active_pool(previous)


class TestPoolMechanics:
    def test_block_computes_then_serves(self, pool):
        calls = []

        def kernel(pairs):
            calls.append(list(pairs))
            return np.array([float(len(a) + len(b)) for a, b in pairs])

        first = pool.block(("k",), ["aa", "b"], ["ccc"], kernel)
        assert first.tolist() == [[5.0], [4.0]]
        second = pool.block(("k",), ["aa", "b"], ["ccc"], kernel)
        assert second.tolist() == first.tolist()
        assert len(calls) == 1  # second block fully served from the pool
        info = pool.info()
        assert info["hits"] == 2 and info["misses"] == 2

    def test_symmetric_pairs_share_one_entry(self, pool):
        kernel = lambda pairs: np.array([1.0] * len(pairs))
        pool.block(("k",), ["x"], ["y"], kernel)
        assert len(pool) == 1
        # The mirrored orientation is a hit, not a new entry.
        pool.block(("k",), ["y"], ["x"], kernel)
        assert len(pool) == 1
        assert pool.info()["hits"] == 1

    def test_asymmetric_keys_are_distinct(self, pool):
        kernel = lambda pairs: np.array([float(a < b) for a, b in pairs])
        forward = pool.block(("k",), ["a"], ["b"], kernel, symmetric=False)
        backward = pool.block(("k",), ["b"], ["a"], kernel, symmetric=False)
        assert forward[0, 0] == 1.0 and backward[0, 0] == 0.0
        assert len(pool) == 2

    def test_kernel_keys_partition_the_pool(self, pool):
        pool.block(("a",), ["x"], ["y"], lambda pairs: np.array([0.25]))
        other = pool.block(("b",), ["x"], ["y"], lambda pairs: np.array([0.75]))
        assert other[0, 0] == 0.75
        assert len(pool) == 2

    def test_duplicate_cells_within_a_block(self, pool):
        calls = []

        def kernel(pairs):
            calls.append(list(pairs))
            return np.array([1.0] * len(pairs))

        values = pool.block(("k",), ["x", "x"], ["x", "y"], kernel)
        assert values.shape == (2, 2)
        # (x, x) and (x, y) are the only distinct canonical pairs.
        assert len(calls[0]) == 2

    def test_lru_eviction_bounds_entries(self):
        pool = KernelMemoPool(max_entries=3)
        kernel = lambda pairs: np.array([1.0] * len(pairs))
        for word in ("a", "b", "c", "d", "e"):
            pool.block(("k",), [word], [word + "x"], kernel)
        assert len(pool) == 3
        assert pool.info()["evictions"] == 2

    def test_lru_keeps_recently_used(self):
        pool = KernelMemoPool(max_entries=2)
        kernel = lambda pairs: np.array([1.0] * len(pairs))
        pool.block(("k",), ["a"], ["b"], kernel)
        pool.block(("k",), ["c"], ["d"], kernel)
        pool.block(("k",), ["a"], ["b"], kernel)  # refresh (a, b)
        pool.block(("k",), ["e"], ["f"], kernel)  # evicts (c, d)
        assert pool.info()["hits"] == 1
        pool.block(("k",), ["a"], ["b"], kernel)  # still present
        assert pool.info()["hits"] == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            KernelMemoPool(max_entries=0)

    def test_clear(self, pool):
        pool.block(("k",), ["a"], ["b"], lambda pairs: np.array([1.0]))
        pool.clear()
        assert len(pool) == 0
        assert pool.info()["misses"] == 1
        pool.clear(reset_counters=True)
        assert pool.info()["misses"] == 0

    def test_concurrent_blocks_converge(self, pool):
        matcher = EditDistanceMatcher()
        sources = [f"name{i}" for i in range(12)]
        targets = [f"label{i}" for i in range(12)]
        expected = np.array(
            [[matcher.similarity(a, b) for b in targets] for a in sources]
        )
        results = [None] * 8
        barrier = threading.Barrier(8)

        def work(slot):
            barrier.wait()
            results[slot] = matcher.similarity_many(sources, targets)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for result in results:
            assert np.array_equal(result, expected)


class TestMatcherIntegration:
    def test_affix_opts_in(self, pool):
        matcher = AffixMatcher()
        got = matcher.similarity_many(["custNo", "city"], ["custName", "street"])
        want = np.array(
            [
                [matcher.similarity(a, b) for b in ("custName", "street")]
                for a in ("custNo", "city")
            ]
        )
        assert np.array_equal(got, want)
        assert pool.info()["misses"] > 0
        repeat = matcher.similarity_many(["custNo"], ["custName"])
        assert repeat[0, 0] == want[0, 0]
        assert pool.info()["hits"] > 0

    def test_cross_schema_dedup(self, pool):
        """Matching a second schema pair with shared field names hits the pool."""
        session = MatchSession()
        session.match(load_po1(), load_po2(), strategy="EditDistance(Max,Both,MaxN(1),Average)")
        after_first = pool.info()
        # The swapped orientation re-uses the same (symmetric) name pairs.
        session.match(load_po2(), load_po1(), strategy="EditDistance(Max,Both,MaxN(1),Average)")
        after_second = pool.info()
        assert after_second["hits"] > after_first["hits"]
        # No new kernel evaluations were needed for the swapped pair.
        assert after_second["misses"] == after_first["misses"]

    def test_results_identical_with_and_without_pool(self):
        spec = "All(Average,Both,Thr(0.5)+Delta(0.02),Average)"

        def rows(outcome):
            return [
                (c.source.dotted(), c.target.dotted(), c.similarity)
                for c in outcome.result.correspondences
            ]

        previous = set_active_pool(KernelMemoPool())
        try:
            pooled = rows(MatchSession().match(load_po1(), load_po2(), strategy=spec))
        finally:
            set_active_pool(None)
        try:
            plain = rows(MatchSession().match(load_po1(), load_po2(), strategy=spec))
        finally:
            set_active_pool(previous)
        assert pooled == plain

    def test_default_pool_is_active_by_default(self):
        assert active_pool() is DEFAULT_MEMO_POOL
