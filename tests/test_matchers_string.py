"""Tests for the simple approximate string matchers."""

import pytest

from repro.auxiliary.synonyms import SynonymDictionary
from repro.exceptions import MatcherError
from repro.matchers.string.affix import AffixMatcher, common_prefix_length, common_suffix_length
from repro.matchers.string.edit_distance import EditDistanceMatcher, levenshtein_distance
from repro.matchers.string.ngram import DigramMatcher, NGramMatcher, TrigramMatcher, ngrams
from repro.matchers.string.soundex import SoundexMatcher, soundex_code
from repro.matchers.string.synonym import SynonymStringMatcher


class TestAffix:
    def test_prefix_and_suffix_helpers(self):
        assert common_prefix_length("custName", "custCity") == 4
        assert common_suffix_length("shipToCity", "custCity") == 4
        assert common_prefix_length("abc", "xyz") == 0

    def test_identical_strings(self):
        assert AffixMatcher().similarity("City", "city") == 1.0

    def test_shared_prefix(self):
        matcher = AffixMatcher()
        assert matcher.similarity("custName", "custCity") == pytest.approx(0.5)

    def test_min_affix_length(self):
        assert AffixMatcher(min_affix_length=3).similarity("ab", "ac") == 0.0
        assert AffixMatcher(min_affix_length=1).similarity("ab", "ac") > 0.0

    def test_empty_strings(self):
        assert AffixMatcher().similarity("", "abc") == 0.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            AffixMatcher(min_affix_length=0)

    def test_case_sensitivity(self):
        assert AffixMatcher(case_sensitive=True).similarity("ABC", "abc") == 0.0


class TestNGram:
    def test_ngrams_helper(self):
        assert ngrams("city", 3) == frozenset({"cit", "ity"})
        assert ngrams("ab", 3) == frozenset({"ab"})
        assert ngrams("", 3) == frozenset()

    def test_identical(self):
        assert TrigramMatcher().similarity("Street", "street") == 1.0

    def test_disjoint(self):
        assert TrigramMatcher().similarity("abc", "xyz") == 0.0

    def test_partial_overlap_symmetric(self):
        matcher = TrigramMatcher()
        assert matcher.similarity("shipTo", "shipFrom") == pytest.approx(
            matcher.similarity("shipFrom", "shipTo")
        )
        assert 0.0 < matcher.similarity("shipTo", "shipFrom") < 1.0

    def test_digram_vs_trigram_names(self):
        assert DigramMatcher().name == "Digram"
        assert TrigramMatcher().name == "Trigram"
        assert NGramMatcher(4).name == "4-gram"

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NGramMatcher(0)

    def test_bounds(self):
        matcher = TrigramMatcher()
        for a, b in [("city", "citty"), ("a", "ab"), ("address", "addr")]:
            assert 0.0 <= matcher.similarity(a, b) <= 1.0


class TestEditDistance:
    def test_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_similarity(self):
        matcher = EditDistanceMatcher()
        assert matcher.similarity("City", "city") == 1.0
        assert matcher.similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)
        assert matcher.similarity("", "") == 0.0

    def test_symmetry(self):
        matcher = EditDistanceMatcher()
        assert matcher.similarity("street", "straat") == matcher.similarity("straat", "street")


class TestSoundex:
    def test_codes(self):
        assert soundex_code("Robert") == "R163"
        assert soundex_code("Rupert") == "R163"
        assert soundex_code("Ashcraft") == "A261"
        assert soundex_code("Tymczak") == "T522"
        assert soundex_code("123") == ""

    def test_similarity(self):
        matcher = SoundexMatcher()
        assert matcher.similarity("Robert", "Rupert") == 1.0
        assert matcher.similarity("Smith", "Smyth") == 1.0
        assert matcher.similarity("city", "zebra") == 0.0
        assert matcher.similarity("", "x") == 0.0

    def test_partial_agreement(self):
        matcher = SoundexMatcher()
        value = matcher.similarity("Robert", "Rodeo")
        assert 0.0 < value < 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SoundexMatcher(code_length=1)


class TestSynonymStringMatcher:
    def test_requires_dictionary(self):
        with pytest.raises(MatcherError):
            SynonymStringMatcher().similarity("ship", "deliver")

    def test_bound_lookup(self):
        dictionary = SynonymDictionary()
        dictionary.add("ship", "deliver")
        matcher = SynonymStringMatcher().bound_to(dictionary)
        assert matcher.similarity("Ship", "Deliver") == 1.0
        assert matcher.similarity("ship", "zebra") == 0.0
        assert matcher.similarity("", "x") == 0.0
