"""Engine equivalence: the batch pipeline must reproduce the pairwise reference.

The batch :class:`~repro.engine.engine.MatchEngine` evaluates matchers over
unique cache keys and scatters the results with numpy fancy indexing; these
tests assert that for every matcher of the default library the resulting
matrix is numerically identical (atol 1e-9) to the cell-by-cell pairwise
implementation -- on the paper's purchase-order schemas, on randomly generated
schema pairs, and through the full match operation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.match_operation import build_context, execute_matchers, match
from repro.core.processor import MatchProcessor
from repro.core.strategy import default_strategy
from repro.datasets.generators import generate_pair
from repro.engine import MatchEngine, PathSetProfile
from repro.matchers.registry import DEFAULT_LIBRARY
from repro.matchers.simple.user_feedback import UserFeedbackStore

BATCH_ENGINE = MatchEngine()
PAIRWISE_ENGINE = MatchEngine(use_batch=False)

#: Every library matcher whose execution does not require a repository.
NON_REUSE_MATCHERS = tuple(
    info.name for info in DEFAULT_LIBRARY.entries() if info.kind != "reuse"
)


def assert_engines_agree(matcher, source, target, context=None, atol=1e-9):
    active = context if context is not None else build_context(source, target)
    source_paths = source.paths()
    target_paths = target.paths()
    batch = BATCH_ENGINE.compute_matrix(matcher, source_paths, target_paths, active)
    reference = PAIRWISE_ENGINE.compute_matrix(matcher, source_paths, target_paths, active)
    assert batch.source_paths == reference.source_paths
    assert batch.target_paths == reference.target_paths
    np.testing.assert_allclose(batch.values, reference.values, atol=atol, rtol=0.0)


@pytest.mark.parametrize("matcher_name", NON_REUSE_MATCHERS)
def test_engine_matches_pairwise_on_purchase_orders(matcher_name, po1, po2):
    assert_engines_agree(DEFAULT_LIBRARY.create(matcher_name), po1, po2)


@pytest.mark.parametrize("matcher_name", NON_REUSE_MATCHERS)
def test_engine_matches_pairwise_on_tiny_pair(matcher_name, tiny_pair):
    left, right = tiny_pair
    assert_engines_agree(DEFAULT_LIBRARY.create(matcher_name), left, right)


@pytest.mark.parametrize(
    "sections,fields,overlap,seed",
    [
        (2, 3, 0.5, 1),
        (3, 4, 0.7, 11),
        (5, 2, 0.9, 42),
        (6, 5, 0.3, 7),
        (8, 6, 0.7, 23),
    ],
)
def test_engine_matches_pairwise_on_generated_schemas(sections, fields, overlap, seed):
    """Property-style sweep: random generated schema pairs, full matcher library."""
    pair = generate_pair(
        sections=sections, fields_per_section=fields, overlap=overlap, seed=seed
    )
    context = build_context(pair.source, pair.target)
    for matcher_name in NON_REUSE_MATCHERS:
        assert_engines_agree(
            DEFAULT_LIBRARY.create(matcher_name), pair.source, pair.target, context
        )


def test_engine_matches_pairwise_with_user_feedback(po1, po2):
    feedback = UserFeedbackStore()
    source_paths = po1.paths()
    target_paths = po2.paths()
    feedback.accept(source_paths[0], target_paths[0])
    feedback.reject(source_paths[1], target_paths[2])
    feedback.accept(source_paths[3].dotted(), target_paths[1].dotted())
    context = build_context(po1, po2, feedback=feedback)
    assert_engines_agree(DEFAULT_LIBRARY.create("UserFeedback"), po1, po2, context)


def test_execute_matchers_same_cube_for_both_engines(po1, po2):
    matchers = default_strategy().resolve_matchers(None)
    batch = execute_matchers(matchers, build_context(po1, po2), engine=BATCH_ENGINE)
    reference = execute_matchers(matchers, build_context(po1, po2), engine=PAIRWISE_ENGINE)
    assert batch.matcher_names == reference.matcher_names
    np.testing.assert_allclose(batch.as_array(), reference.as_array(), atol=1e-9, rtol=0.0)


def test_threaded_engine_matches_sequential(po1, po2):
    matchers = default_strategy().resolve_matchers(None)
    threaded = MatchEngine(max_workers=4).execute(matchers, build_context(po1, po2))
    sequential = BATCH_ENGINE.execute(matchers, build_context(po1, po2))
    assert threaded.matcher_names == sequential.matcher_names
    np.testing.assert_allclose(
        threaded.as_array(), sequential.as_array(), atol=1e-9, rtol=0.0
    )


def test_match_accepts_engine_override(po1, po2):
    batch = match(po1, po2)
    reference = match(po1, po2, engine=PAIRWISE_ENGINE)
    assert [
        (c.source.dotted(), c.target.dotted()) for c in batch.result
    ] == [(c.source.dotted(), c.target.dotted()) for c in reference.result]
    assert batch.schema_similarity == pytest.approx(reference.schema_similarity, abs=1e-9)


def test_processor_accepts_engine(po1, po2):
    processor = MatchProcessor(po1, po2, engine=PAIRWISE_ENGINE)
    outcome = processor.run_iteration()
    assert outcome.result.correspondences


def test_profiles_are_cached_per_context(po1, po2):
    context = build_context(po1, po2)
    paths = po1.paths()
    first = context.profiles(paths)
    second = context.profiles(paths)
    assert first is second
    assert isinstance(first, PathSetProfile)
    assert len(first.unique_names) <= len(paths)
    # The swapped context shares the same cache object.
    assert context.swapped().profiles(paths) is first


def test_type_compatibility_does_not_leak_between_contexts(po1, po2):
    from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, GenericType

    context = build_context(po1, po2)
    context.type_compatibility.set(GenericType.STRING, GenericType.INTEGER, 0.123)
    other = build_context(po1, po2)
    assert other.type_compatibility.compatibility(
        GenericType.STRING, GenericType.INTEGER
    ) != pytest.approx(0.123)
    assert DEFAULT_TYPE_COMPATIBILITY.compatibility(
        GenericType.STRING, GenericType.INTEGER
    ) != pytest.approx(0.123)
