"""Tests for the evaluation metrics, grid and analysis helpers."""

import pytest

from repro.combination.aggregation import AVERAGE, MAX
from repro.combination.direction import BOTH
from repro.combination.selection import MaxN
from repro.evaluation.analysis import (
    best_series_per_matcher,
    bucket_of,
    overall_distribution,
    range_label,
    strategy_shares,
)
from repro.evaluation.campaign import SeriesResult
from repro.evaluation.grid import (
    SeriesSpec,
    all_matcher_usages,
    enumerate_series,
    full_selection_strategies,
    no_reuse_matcher_usages,
    reduced_selection_strategies,
    reuse_matcher_usages,
)
from repro.evaluation.metrics import MatchQuality, average_quality, evaluate_mapping
from repro.evaluation.report import format_bar_chart, format_grouped_bars, format_key_values, format_table
from repro.exceptions import EvaluationError
from repro.model.mapping import MatchResult


class TestMetrics:
    def test_perfect_match(self):
        quality = MatchQuality(true_positives=5, false_positives=0, false_negatives=0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.overall == 1.0
        assert quality.f_measure == 1.0

    def test_overall_can_be_negative(self):
        quality = MatchQuality(true_positives=2, false_positives=6, false_negatives=3)
        assert quality.precision == pytest.approx(0.25)
        assert quality.overall < 0

    def test_overall_formula(self):
        quality = MatchQuality(true_positives=8, false_positives=2, false_negatives=2)
        # Overall = 1 - (F + M)/R = 1 - 4/10
        assert quality.overall == pytest.approx(0.6)
        # Overall = Recall * (2 - 1/Precision)
        assert quality.overall == pytest.approx(quality.recall * (2 - 1 / quality.precision))

    def test_degenerate_cases(self):
        nothing = MatchQuality(0, 0, 0)
        assert nothing.precision == 1.0 and nothing.recall == 1.0 and nothing.overall == 1.0
        predicted_nothing = MatchQuality(0, 0, 5)
        assert predicted_nothing.precision == 0.0
        assert predicted_nothing.recall == 0.0
        no_real = MatchQuality(0, 3, 0)
        assert no_real.overall < 0

    def test_evaluate_mapping_with_pairs(self, po1, po2):
        reference = MatchResult.from_tuples(
            po1, po2,
            [("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City", 1.0),
             ("PO1.ShipTo.shipToZip", "PO2.PO2.DeliverTo.Address.Zip", 1.0)],
        )
        predicted = MatchResult.from_tuples(
            po1, po2,
            [("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City", 0.8),
             ("PO1.ShipTo.shipToCity", "PO2.PO2.BillTo.Address.City", 0.8)],
        )
        quality = evaluate_mapping(predicted, reference)
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 1
        assert quality.precision == 0.5
        assert quality.recall == 0.5
        assert quality.overall == pytest.approx(0.0)

    def test_average_quality(self):
        qualities = [MatchQuality(5, 0, 0), MatchQuality(0, 0, 5)]
        averaged = average_quality(qualities)
        assert averaged.precision == pytest.approx(0.5)
        assert averaged.experiment_count == 2
        with pytest.raises(EvaluationError):
            average_quality([])


class TestGrid:
    def test_matcher_usage_counts_match_table6(self):
        assert len(no_reuse_matcher_usages()) == 16
        assert len(reuse_matcher_usages()) == 14
        assert len(all_matcher_usages()) == 30

    def test_selection_dimension_sizes(self):
        assert len(full_selection_strategies()) >= 30
        assert 6 <= len(reduced_selection_strategies()) <= 10

    def test_enumerate_series_skips_irrelevant_dimensions(self):
        series = list(
            enumerate_series([("NamePath",)], selections=[MaxN(1)])
        )
        # single matcher: aggregation collapses to one, combined similarity stays 2
        assert len(series) == 1 * 3 * 1 * 2
        reuse_single = list(enumerate_series([("SchemaM",)], selections=[MaxN(1)]))
        # single reuse matcher: both aggregation and combined similarity collapse
        assert len(reuse_single) == 1 * 3 * 1 * 1

    def test_series_spec_labels(self):
        spec = SeriesSpec(
            matchers=("Name", "NamePath", "TypeName", "Children", "Leaves"),
            aggregation=AVERAGE, direction=BOTH, selection=MaxN(1),
        )
        assert spec.matcher_label == "All"
        spec_reuse = SeriesSpec(
            matchers=("Name", "NamePath", "TypeName", "Children", "Leaves", "SchemaM"),
            aggregation=AVERAGE, direction=BOTH, selection=MaxN(1),
        )
        assert spec_reuse.matcher_label == "All+SchemaM"
        assert spec_reuse.uses_reuse
        pair = SeriesSpec(matchers=("NamePath", "Leaves"), aggregation=MAX, direction=BOTH,
                          selection=MaxN(1))
        assert pair.matcher_label == "NamePath+Leaves"
        assert not pair.uses_reuse
        assert "Max" in pair.label()


def _fake_result(matchers, overall, aggregation=AVERAGE):
    spec = SeriesSpec(matchers=matchers, aggregation=aggregation, direction=BOTH,
                      selection=MaxN(1))
    tp = 10
    # craft a quality with the requested overall: overall = 1 - (F+M)/R
    false_total = round((1 - overall) * tp)
    quality = MatchQuality(true_positives=tp, false_positives=false_total, false_negatives=0)
    return SeriesResult(spec=spec, per_task=[("t", quality)], average=average_quality([quality]))


class TestAnalysis:
    def test_bucket_and_labels(self):
        assert range_label((float("-inf"), 0.0)) == "Min-0.0"
        assert bucket_of(-5.0) == 0
        assert bucket_of(0.05) == 1
        assert bucket_of(0.75) == 8

    def test_overall_distribution(self):
        results = [_fake_result(("Name",), 0.7), _fake_result(("NamePath",), -1.0)]
        distribution = dict(overall_distribution(results))
        assert distribution["Min-0.0"] == 1
        assert sum(distribution.values()) == 2

    def test_strategy_shares_sum_to_one_per_bucket(self):
        results = [
            _fake_result(("Name",), 0.7, aggregation=AVERAGE),
            _fake_result(("Name",), 0.7, aggregation=MAX),
        ]
        shares = strategy_shares(results, lambda spec: str(spec.aggregation))
        bucket_total = sum(series[8][1] for series in shares.values())
        assert bucket_total == pytest.approx(1.0)

    def test_best_series_per_matcher(self):
        results = [_fake_result(("Name",), 0.3), _fake_result(("Name",), 0.8)]
        best = best_series_per_matcher(results)
        assert best["Name"].average.overall == pytest.approx(0.8, abs=0.05)


class TestReport:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}], title="T")
        assert "T" in text and "a" in text and "0.50" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_bar_chart(self):
        text = format_bar_chart([("x", 1.0), ("y", -0.5)], title="bars")
        assert "bars" in text and "#" in text and "-#" in text

    def test_format_grouped_bars(self):
        text = format_grouped_bars({"Max": [("0.0-0.1", 0.5)], "Min": [("0.0-0.1", 0.5)]})
        assert "Max" in text and "0.0-0.1" in text

    def test_format_key_values(self):
        text = format_key_values([("precision", 0.5), ("label", "x")], title="kv")
        assert "precision" in text and "0.500" in text
