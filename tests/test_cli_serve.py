"""``coma serve`` argument validation: clean non-zero exits, never tracebacks."""

from __future__ import annotations

from repro.cli import console_main


def test_zero_workers_exits_nonzero_with_a_clean_message(capsys):
    assert console_main(["serve", "--workers", "0", "--port", "0"]) == 1
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "--workers" in captured.err


def test_negative_workers_rejected(capsys):
    assert console_main(["serve", "--workers", "-3", "--port", "0"]) == 1
    assert "--workers must be >= 1" in capsys.readouterr().err


def test_unknown_backend_exits_nonzero_listing_the_choices(capsys):
    assert console_main(["serve", "--backend", "gevent", "--port", "0"]) == 1
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "'thread'" in captured.err and "'process'" in captured.err


def test_workers_and_pool_size_conflict(capsys):
    code = console_main(
        ["serve", "--workers", "2", "--pool-size", "4", "--port", "0"]
    )
    assert code == 1
    assert "deprecated alias" in capsys.readouterr().err


def test_unwritable_store_path_exits_nonzero_cleanly(tmp_path, capsys):
    target = tmp_path / "no-such-directory" / "deeper" / "store.db"
    code = console_main(["serve", "--store", str(target), "--port", "0"])
    assert code == 1
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "similarity store" in captured.err
    # Validation failed before any socket was bound or file created.
    assert not target.parent.exists()


def test_zero_pool_size_alias_is_validated_too(capsys):
    assert console_main(["serve", "--pool-size", "0", "--port", "0"]) == 1
    assert "--workers must be >= 1" in capsys.readouterr().err

def test_fault_plan_is_refused_without_the_environment_gate(
    tmp_path, capsys, monkeypatch
):
    from repro.faults import catalog_plan

    monkeypatch.delenv("COMA_ENABLE_FAULTS", raising=False)
    plan_path = tmp_path / "plan.json"
    catalog_plan("corpus-index-loss").save(str(plan_path))
    code = console_main(["serve", "--fault-plan", str(plan_path), "--port", "0"])
    assert code == 1
    captured = capsys.readouterr()
    assert "COMA_ENABLE_FAULTS=1" in captured.err


def test_fault_plan_file_is_validated_before_any_socket(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.setenv("COMA_ENABLE_FAULTS", "1")
    bad_plan = tmp_path / "bad.json"
    bad_plan.write_text('{"rules": [{"point": "x", "action": "explode"}]}')
    code = console_main(["serve", "--fault-plan", str(bad_plan), "--port", "0"])
    assert code == 1
    assert "unknown fault action" in capsys.readouterr().err
