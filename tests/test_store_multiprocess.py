"""Multi-process SimilarityStore stress: concurrent writers, no lost writes.

Every worker of ``coma serve --backend process`` opens its own connection to
one shared store file, so the store must survive concurrent cross-process
readers and writers: no ``sqlite3.OperationalError`` may escape its public
API, no committed write may be lost, and the lifetime hit/miss counters each
process folds in at close must sum exactly.  This is what the WAL +
busy-timeout configuration in :class:`~repro.repository.store.SimilarityStore`
exists for; a child that trips a locking error crashes and leaves no result
file, which the parent reports.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np

WORKERS = 4
OPS = 25
#: Number of distinct keys the workers deliberately collide on.
SHARED_KEYS = 7


def _stress_schema():
    from repro.model.builder import SchemaBuilder

    builder = SchemaBuilder("Stress")
    with builder.inner("Section"):
        for index in range(12):
            builder.leaf(f"Leaf{index}", "varchar(10)")
    return builder.build()


def _stress_cube(paths):
    from repro.combination.cube import SimilarityCube
    from repro.combination.matrix import SimilarityMatrix

    count = len(paths)
    values = np.linspace(0.0, 1.0, count * count).reshape(count, count)
    return SimilarityCube.from_layers(
        paths,
        paths,
        [
            ("Name", SimilarityMatrix(paths, paths, values)),
            ("Leaves", SimilarityMatrix(paths, paths, values[::-1])),
        ],
    )


def stress_worker(store_path: str, index: int, result_path: str) -> None:
    """One writer/reader process; crashes (no result file) on any store error."""
    from repro.repository.store import SimilarityStore

    schema = _stress_schema()
    paths = schema.paths()
    cube = _stress_cube(paths)
    store = SimilarityStore(store_path)
    try:
        for op in range(OPS):
            # Own key, contended shared key, token rows -- all synchronous
            # writes, so every iteration exercises the cross-process write
            # lock directly (the background writer would hide contention).
            store.store_cube(f"own-{index}-{op}", cube, "sd", "td", ["Name"], "cfg")
            store.store_cube(
                f"shared-{op % SHARED_KEYS}", cube, "sd", "td", ["Name"], "cfg"
            )
            store.store_tokens(
                "cfg",
                [
                    (f"name-{index}-{op}", ("alpha", "beta")),
                    (f"shared-{op % SHARED_KEYS}", ("gamma",)),
                ],
            )
            loaded = store.load_cube(f"own-{index}-{op}", paths, paths)
            assert loaded is not None, "a committed write was lost"
            assert loaded.as_array().tobytes() == cube.as_array().tobytes()
            assert store.load_cube(f"missing-{index}-{op}", paths, paths) is None
        info = store.info()
        with open(result_path, "w") as handle:
            json.dump({"hits": info["hits"], "misses": info["misses"]}, handle)
    finally:
        store.close()


def test_concurrent_processes_share_one_store(tmp_path):
    store_path = str(tmp_path / "stress-store.db")
    context = multiprocessing.get_context("spawn")
    result_paths = [str(tmp_path / f"result-{index}.json") for index in range(WORKERS)]
    processes = [
        context.Process(
            target=stress_worker, args=(store_path, index, result_paths[index])
        )
        for index in range(WORKERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=180)
    for index, process in enumerate(processes):
        assert process.exitcode == 0, (
            f"stress worker {index} crashed (exit {process.exitcode}): a store "
            f"error escaped under cross-process contention"
        )
        assert os.path.exists(result_paths[index])

    results = [json.load(open(path)) for path in result_paths]
    # Every worker's own loads all hit and all probe loads missed.
    assert all(result["hits"] == OPS for result in results)
    assert all(result["misses"] == OPS for result in results)

    from repro.repository.store import SimilarityStore

    with SimilarityStore(store_path, writer=False) as store:
        # No lost writes: all per-worker keys plus the contended shared keys.
        assert store.cube_count() == WORKERS * OPS + SHARED_KEYS
        assert store.token_count() == WORKERS * OPS + SHARED_KEYS
        info = store.info()
    # The lifetime counters folded in at close sum exactly across processes.
    assert info["lifetime_hits"] == sum(result["hits"] for result in results)
    assert info["lifetime_misses"] == sum(result["misses"] for result in results)


CORRUPT_WORKERS = 3
CORRUPT_OPS = 20


def corruption_victim_worker(store_path: str, index: int, result_path: str) -> None:
    """A writer/reader that races a byte-flipping corruptor.

    The contract under corruption is weaker than under plain contention --
    a load may legitimately come back ``None`` (the corruptor got to the row
    first and the read quarantined it) -- but still hard: a load either
    returns the exact stored bytes or ``None``, never garbage and never an
    escaped ``sqlite3.OperationalError``.  Every ``None`` is answered by a
    re-store (the recompute-on-miss path), which must then succeed.
    """
    from repro.repository.store import SimilarityStore

    schema = _stress_schema()
    paths = schema.paths()
    cube = _stress_cube(paths)
    expected = cube.as_array().tobytes()
    recomputes = 0
    store = SimilarityStore(store_path)
    try:
        for op in range(CORRUPT_OPS):
            key = f"victim-{index}-{op}"
            store.store_cube(key, cube, "sd", "td", ["Name"], "cfg")
            loaded = store.load_cube(key, paths, paths)
            if loaded is None:
                recomputes += 1
                store.store_cube(key, cube, "sd", "td", ["Name"], "cfg")
                loaded = store.load_cube(key, paths, paths)
            if loaded is not None:  # the corruptor may win twice; None is ok
                assert loaded.as_array().tobytes() == expected, "garbage served"
        info = store.info()
        with open(result_path, "w") as handle:
            json.dump(
                {"recomputes": recomputes, "corrupt": info["corrupt"]}, handle
            )
    finally:
        store.close()


def corruption_worker(store_path: str, stop_path: str) -> None:
    """Flip committed blob bytes through legitimate sqlite statements.

    Runs its own connection (busy timeout, autocommit) and repeatedly
    shortens the newest cube rows' payloads -- exactly what a torn write or
    bit rot leaves behind -- until the stop file appears.  Every statement
    is an ordinary UPDATE: the corruptor obeys the same locking protocol as
    the writers, so any ``OperationalError`` that escapes a *victim* is a
    real store bug, not corruptor vandalism.
    """
    import sqlite3
    import time as time_module

    connection = sqlite3.connect(store_path, timeout=30.0)
    try:
        while not os.path.exists(stop_path):
            try:
                connection.execute(
                    "UPDATE cubes SET data = zeroblob(8) WHERE key IN "
                    "(SELECT key FROM cubes ORDER BY rowid DESC LIMIT 2)"
                )
                connection.commit()
            except sqlite3.Error:
                # The schema may not exist yet / a writer holds the lock
                # longer than our patience: back off and try again.
                connection.rollback()
            time_module.sleep(0.002)
    finally:
        connection.close()


def test_corruption_under_concurrent_writers_never_escapes(tmp_path):
    """Writers race a byte-flipping corruptor: misses and counters, no errors."""
    store_path = str(tmp_path / "corrupt-store.db")
    stop_path = str(tmp_path / "stop-corrupting")
    context = multiprocessing.get_context("spawn")

    from repro.repository.store import SimilarityStore

    with SimilarityStore(store_path, writer=False) as store:
        assert store.cube_count() == 0  # create the schema up front

    corruptor = context.Process(target=corruption_worker, args=(store_path, stop_path))
    corruptor.start()
    result_paths = [
        str(tmp_path / f"victim-{index}.json") for index in range(CORRUPT_WORKERS)
    ]
    victims = [
        context.Process(
            target=corruption_victim_worker,
            args=(store_path, index, result_paths[index]),
        )
        for index in range(CORRUPT_WORKERS)
    ]
    try:
        for process in victims:
            process.start()
        for process in victims:
            process.join(timeout=180)
    finally:
        open(stop_path, "w").close()
        corruptor.join(timeout=30)
        if corruptor.is_alive():  # pragma: no cover - cleanup of a wedged child
            corruptor.kill()

    for index, process in enumerate(victims):
        assert process.exitcode == 0, (
            f"victim {index} crashed (exit {process.exitcode}): a store error "
            f"or garbage read escaped while bytes were being flipped"
        )
        assert os.path.exists(result_paths[index])

    results = [json.load(open(path)) for path in result_paths]
    # Every victim-side detection triggered a recompute, and none escaped
    # as an exception (exitcode 0 above); whether a victim *saw* corruption
    # is a race, so the guaranteed detection happens below.
    for result in results:
        assert result["recomputes"] <= result["corrupt"]

    # Deterministic corruption after the race: zero out one surviving row
    # the way the corruptor did, then sweep.  The sweep must serve every
    # surviving row crc-clean, detect + quarantine the poisoned one, and
    # count it -- no OperationalError anywhere.
    import sqlite3

    connection = sqlite3.connect(store_path, timeout=30.0)
    try:
        poisoned = connection.execute(
            "UPDATE cubes SET data = zeroblob(8) WHERE key IN "
            "(SELECT key FROM cubes ORDER BY key LIMIT 1)"
        ).rowcount
        connection.commit()
    finally:
        connection.close()
    assert poisoned == 1, "the racing corruptor quarantined every row?"

    schema = _stress_schema()
    paths = schema.paths()
    expected = _stress_cube(paths).as_array().tobytes()
    with SimilarityStore(store_path, writer=False) as store:
        scrubbed = 0
        for index in range(CORRUPT_WORKERS):
            for op in range(CORRUPT_OPS):
                loaded = store.load_cube(f"victim-{index}-{op}", paths, paths)
                if loaded is None:
                    scrubbed += 1
                else:
                    assert loaded.as_array().tobytes() == expected
        info = store.info()
        # At least the deliberately poisoned row was detected; every sweep
        # detection was quarantined (row deleted, both counters in step).
        assert info["corrupt"] >= 1
        assert info["quarantined"] == info["corrupt"]
        assert scrubbed >= info["corrupt"]


def test_wal_mode_is_active_on_file_stores(tmp_path):
    import sqlite3

    from repro.repository.store import SimilarityStore

    store_path = str(tmp_path / "wal-store.db")
    with SimilarityStore(store_path, writer=False) as store:
        assert store.cube_count() == 0
    connection = sqlite3.connect(store_path)
    try:
        mode = connection.execute("PRAGMA journal_mode").fetchone()[0]
    finally:
        connection.close()
    assert mode.lower() == "wal"
