"""Tests for the SQLite repository and schema serialisation."""

import pytest

from repro.core.match_operation import build_context, execute_matchers, match
from repro.exceptions import RepositoryError
from repro.matchers.hybrid import NameMatcher
from repro.matchers.reuse.provider import StoredMapping
from repro.matchers.reuse.schema_reuse import SchemaReuseMatcher
from repro.model.mapping import MatchResult
from repro.repository.repository import Repository
from repro.repository.serialization import schema_from_json, schema_to_json


class TestSerialization:
    def test_round_trip_preserves_paths(self, po2):
        restored = schema_from_json(schema_to_json(po2))
        assert {p.dotted() for p in restored.paths()} == {p.dotted() for p in po2.paths()}
        assert restored.statistics().as_row() == po2.statistics().as_row()

    def test_round_trip_preserves_types_and_references(self, po1):
        restored = schema_from_json(schema_to_json(po1))
        assert restored.find_path("PO1.ShipTo.poNo").source_type == "INT"
        assert len(restored.references()) == len(po1.references())

    def test_invalid_json_rejected(self):
        with pytest.raises(RepositoryError):
            schema_from_json("not json")

    def test_missing_keys_rejected(self):
        with pytest.raises(RepositoryError):
            schema_from_json("{}")


class TestRepositorySchemas:
    def test_store_and_load(self, po1):
        with Repository() as repository:
            repository.store_schema(po1)
            assert repository.has_schema("PO1")
            assert repository.schema_names() == ("PO1",)
            loaded = repository.load_schema("PO1")
            assert {p.dotted() for p in loaded.paths()} == {p.dotted() for p in po1.paths()}

    def test_missing_schema_raises(self):
        with Repository() as repository:
            with pytest.raises(RepositoryError):
                repository.load_schema("nope")

    def test_delete(self, po1):
        with Repository() as repository:
            repository.store_schema(po1)
            assert repository.delete_schema("PO1")
            assert not repository.delete_schema("PO1")

    def test_replace_flag(self, po1):
        with Repository() as repository:
            repository.store_schema(po1)
            with pytest.raises(RepositoryError):
                repository.store_schema(po1, replace=False)

    def test_file_backed_repository(self, tmp_path, po1):
        path = str(tmp_path / "repo.db")
        with Repository(path) as repository:
            repository.store_schema(po1)
        with Repository(path) as reopened:
            assert reopened.has_schema("PO1")


class TestRepositoryMappings:
    def test_store_match_result_and_filter_by_origin(self, po1, po2):
        result = MatchResult.from_tuples(
            po1, po2, [("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City", 0.9)]
        )
        with Repository() as repository:
            repository.store_mapping(result, origin="manual")
            repository.store_mapping(result, origin="automatic")
            assert repository.mapping_count() == 2
            assert repository.mapping_count(origin="manual") == 1
            manual = repository.stored_mappings(origin="manual")
            assert len(manual) == 1
            assert manual[0].rows[0][2] == pytest.approx(0.9)

    def test_mappings_between(self, po1, po2):
        result = MatchResult.from_tuples(
            po1, po2, [("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City", 1.0)]
        )
        with Repository() as repository:
            repository.store_mapping(result)
            assert len(repository.mappings_between("PO2", "PO1")) == 1
            assert len(repository.mappings_between("PO1", "Other")) == 0

    def test_delete_mappings(self, po1, po2):
        result = MatchResult.from_tuples(
            po1, po2, [("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City", 1.0)]
        )
        with Repository() as repository:
            repository.store_mapping(result, origin="manual")
            repository.store_mapping(result, origin="automatic")
            removed = repository.delete_mappings(origin="manual")
            assert removed == 1
            assert repository.mapping_count() == 1

    def test_repository_drives_schema_reuse_matcher(self, po1, po2):
        """End to end: store mappings, then let the Schema matcher reuse them via the context."""
        with Repository() as repository:
            repository.store_mapping(
                StoredMapping("PO1", "Middle", (("PO1.ShipTo.shipToCity", "Middle.City", 1.0),)),
                origin="manual",
            )
            repository.store_mapping(
                StoredMapping("Middle", "PO2",
                              (("Middle.City", "PO2.PO2.DeliverTo.Address.City", 0.8),)),
                origin="manual",
            )
            context = build_context(po1, po2, repository=repository)
            matcher = SchemaReuseMatcher(origin="manual")
            matrix = matcher.compute(po1.paths(), po2.paths(), context)
            assert matrix.get(
                po1.find_path("PO1.ShipTo.shipToCity"),
                po2.find_path("PO2.PO2.DeliverTo.Address.City"),
            ) == pytest.approx(0.9)


class TestRepositoryCubes:
    def test_store_and_load_cube(self, po1, po2):
        context = build_context(po1, po2)
        cube = execute_matchers([NameMatcher()], context)
        with Repository() as repository:
            repository.store_cube("PO1<->PO2", cube)
            assert repository.cube_tasks() == ("PO1<->PO2",)
            entries = repository.load_cube_entries("PO1<->PO2")
            assert entries
            assert all(matcher == "Name" for matcher, *_ in entries)
            name_entries = repository.load_cube_entries("PO1<->PO2", matcher="Name")
            assert len(name_entries) == len(entries)

    def test_replace_cube(self, po1, po2):
        context = build_context(po1, po2)
        cube = execute_matchers([NameMatcher()], context)
        with Repository() as repository:
            repository.store_cube("t", cube)
            first_count = len(repository.load_cube_entries("t"))
            repository.store_cube("t", cube)
            assert len(repository.load_cube_entries("t")) == first_count
