"""Differential harness: the sync and async front-ends serve identical bytes.

The async front-end (``repro/service/aserver.py``) replaces the transport
tier only -- every matching semantic must stay byte-identical to the
threading front-end.  This suite locks that down the strong way: one
*request script* covering every endpoint (schemas, match, batch -- valid and
invalid --, strategies, search, corpus, jobs with their event streams, plus
the 404/405 error paths) is executed against a sync server and an async
server built from the same configuration, and each step's canonical JSON
response is sha256-hashed.  The two hash transcripts must be equal, for the
thread *and* the process backend.

Volatile fields that legitimately differ between two server instances
(wall-clock uptimes/durations, worker pids, and the ``frontend`` stats block
whose difference is the whole point) are normalised out before hashing;
everything else -- float similarities included -- must match to the byte.
"""

from __future__ import annotations

import hashlib
import json
import threading

import pytest

from repro.datasets.figure1 import PO1_DDL, PO2_XSD
from repro.exceptions import ServiceError
from repro.service import ServiceClient, create_async_server, create_server

#: Response keys that legitimately differ between two separately started
#: servers: wall-clock readings, process ids, and the frontend stats block
#: (which *must* differ -- that is what the differential isolates away).
VOLATILE_KEYS = frozenset(
    {"uptime_seconds", "duration_seconds", "pid", "workers", "frontend"}
)


def _normalise(value):
    """Strip volatile keys recursively so hashes compare only semantics."""
    if isinstance(value, dict):
        return {
            key: _normalise(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [_normalise(item) for item in value]
    return value


def _digest(step_result) -> str:
    canonical = json.dumps(_normalise(step_result), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _call(client: ServiceClient, method: str, path: str, payload=None):
    """One scripted request as a canonicalisable (status, payload) pair.

    Error responses are part of the differential contract too: the status,
    message and structured details must match across front-ends.
    """
    try:
        return ("ok", client.request(method, path, payload))
    except ServiceError as error:
        return ("error", error.status, str(error), error.details)


def _run_script(client: ServiceClient):
    """The full endpoint sweep; returns ``[(label, result), ...]``."""
    steps = []

    def step(label, result):
        steps.append((label, result))

    step("health", _call(client, "GET", "/health"))
    step("upload-po1", _call(client, "POST", "/schemas", {
        "name": "PO1", "text": PO1_DDL, "format": "sql"}))
    step("upload-po2", _call(client, "POST", "/schemas", {
        "name": "PO2", "text": PO2_XSD, "format": "xsd"}))
    step("upload-conflict", _call(client, "POST", "/schemas", {
        "name": "PO1", "text": PO1_DDL, "format": "sql"}))
    step("list-schemas", _call(client, "GET", "/schemas"))
    step("get-schema", _call(client, "GET", "/schemas/PO1"))
    step("get-missing-schema", _call(client, "GET", "/schemas/NOPE"))

    step("match-default", _call(client, "POST", "/match", {
        "source": "PO1", "target": "PO2"}))
    step("match-strategy", _call(client, "POST", "/match", {
        "source": "PO1", "target": "PO2",
        "strategy": "Name+Leaves(Average,Both,Thr(0.6),Dice)"}))
    step("match-threshold", _call(client, "POST", "/match", {
        "source": "PO1", "target": "PO2", "min_similarity": 0.5}))

    step("batch-valid", _call(client, "POST", "/match/batch", {
        "requests": [
            {"source": "PO1", "target": "PO2"},
            {"source": "PO2", "target": "PO1",
             "strategy": "All(Max,Both,Thr(0.5)+MaxN(1),Average)"},
            {"source": "PO1", "target": "PO2", "min_similarity": 0.7},
        ]}))
    step("batch-all-invalid-indices", _call(client, "POST", "/match/batch", {
        "requests": [
            {"source": "PO1", "target": "MISSING"},
            {"target": "PO2"},
            {"source": "PO1", "target": "PO2"},
            {"source": "PO1", "target": "PO2", "strategy": "Bogus("},
        ]}))

    step("save-strategy", _call(client, "POST", "/strategies", {
        "name": "tuned", "spec": "All(Average,Both,Thr(0.5)+Delta(0.02),Average)"}))
    step("list-strategies", _call(client, "GET", "/strategies"))
    step("match-saved-strategy", _call(client, "POST", "/match", {
        "source": "PO1", "target": "PO2", "strategy": "tuned"}))

    step("corpus-info", _call(client, "GET", "/corpus"))
    step("search", _call(client, "POST", "/search", {
        "name": "PO1", "k": 1}))

    # -- jobs: submission, polling, streaming, cancellation -------------------
    accepted = _call(client, "POST", "/jobs", {
        "requests": [{"source": "PO1", "target": "PO2"}] * 5,
        "chunk_size": 2})
    step("job-submit", accepted)
    job_id = accepted[1]["job"]
    step("job-events", ("stream", list(client.stream_job(job_id))))
    final = client.wait_job(job_id)
    step("job-final-status", ("ok", final))
    step("job-unknown", _call(client, "GET", "/jobs/j999"))
    step("job-invalid-chunk", _call(client, "POST", "/jobs", {
        "requests": [{"source": "PO1", "target": "PO2"}], "chunk_size": 0}))
    step("job-invalid-batch", _call(client, "POST", "/jobs", {
        "requests": [{"source": "PO1", "target": "NOPE"}, {"source": "PO1"}]}))

    cancelled = _call(client, "POST", "/jobs", {
        "requests": [{"source": "PO1", "target": "PO2"}] * 64,
        "chunk_size": 1, "cancel_on_disconnect": True})
    step("job-submit-2", cancelled)
    step("job-cancel", _call(client, "DELETE", f"/jobs/{cancelled[1]['job']}"))
    terminal = client.wait_job(cancelled[1]["job"])
    # A cancel races the chunk loop: `done` depends on how many chunks ran
    # before the flag was seen.  The *state* is the deterministic part.
    step("job-cancelled-state", ("ok", terminal["state"]))
    step("jobs-table-states",
         ("ok", _call(client, "GET", "/jobs")[1]["by_state"]))

    step("unknown-route", _call(client, "GET", "/no/such/route"))
    step("bad-method", _call(client, "DELETE", "/stats"))
    step("delete-schema", _call(client, "DELETE", "/schemas/PO2"))
    # /stats carries per-run timing artifacts beyond the volatile keys (poll
    # counts from wait_job, cache totals from however many chunks the
    # cancelled job completed), so only its timing-free slice is hashed.
    stats = _call(client, "GET", "/stats")[1]
    step("stats-stable", ("ok", {
        key: stats[key] for key in ("backend", "schemas", "strategies")}))
    step("stats-pool-shape", ("ok", {
        "size": stats["pool"]["size"], "idle": stats["pool"]["idle"]}))
    return steps


def _transcript(client: ServiceClient):
    return [(label, _digest(result)) for label, result in _run_script(client)]


@pytest.mark.parametrize("backend,pool_size", [("thread", 2), ("process", 1)])
def test_front_ends_serve_sha256_identical_transcripts(backend, pool_size):
    sync_server = create_server(
        port=0, pool_size=pool_size, backend=backend, corpus_path=":memory:"
    )
    sync_thread = threading.Thread(target=sync_server.serve_forever, daemon=True)
    sync_thread.start()
    async_server = create_async_server(
        port=0, pool_size=pool_size, backend=backend, corpus_path=":memory:"
    )
    async_thread = async_server.run_in_thread()
    try:
        sync_client = ServiceClient(sync_server.url)
        async_client = ServiceClient(async_server.url)
        assert sync_client.health()["frontend"] == "sync"
        assert async_client.health()["frontend"] == "async"

        sync_steps = _transcript(sync_client)
        async_steps = _transcript(async_client)

        assert [label for label, _ in sync_steps] == \
               [label for label, _ in async_steps]
        mismatches = [
            label
            for (label, sync_hash), (_, async_hash)
            in zip(sync_steps, async_steps)
            if sync_hash != async_hash
        ]
        assert not mismatches, (
            f"sync and async front-ends disagree on: {mismatches}"
        )
    finally:
        sync_server.shutdown()
        sync_thread.join(timeout=10)
        sync_server.server_close()
        async_server.request_shutdown()
        async_thread.join(timeout=10)


def test_event_stream_lines_are_byte_identical_across_front_ends():
    """The raw NDJSON lines (not just parsed dicts) must match exactly."""
    import http.client

    def raw_event_lines(port: int) -> bytes:
        client = ServiceClient(f"http://127.0.0.1:{port}")
        client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
        client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
        job = client.submit_job(
            requests=[{"source": "PO1", "target": "PO2"}] * 3, chunk_size=2
        )
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request("GET", f"/jobs/{job['job']}/events")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            return response.read()
        finally:
            connection.close()
            client.close()

    sync_server = create_server(port=0, pool_size=1)
    sync_thread = threading.Thread(target=sync_server.serve_forever, daemon=True)
    sync_thread.start()
    async_server = create_async_server(port=0, pool_size=1)
    async_thread = async_server.run_in_thread()
    try:
        sync_bytes = raw_event_lines(sync_server.server_address[1])
        async_bytes = raw_event_lines(async_server.port)
        assert sync_bytes == async_bytes
        assert hashlib.sha256(sync_bytes).hexdigest() == \
               hashlib.sha256(async_bytes).hexdigest()
    finally:
        sync_server.shutdown()
        sync_thread.join(timeout=10)
        sync_server.server_close()
        async_server.request_shutdown()
        async_thread.join(timeout=10)
