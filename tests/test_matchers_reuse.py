"""Tests for MatchCompose, the Schema reuse matcher and the Fragment matcher."""

import pytest

from repro.core.match_operation import build_context
from repro.exceptions import MatcherError
from repro.matchers.reuse.compose import (
    average_composition,
    composition_by_name,
    match_compose,
    max_composition,
    min_composition,
    product_composition,
)
from repro.matchers.reuse.fragment import FragmentReuseMatcher
from repro.matchers.reuse.provider import InMemoryMappingStore, StoredMapping
from repro.matchers.reuse.schema_reuse import SchemaReuseMatcher, schema_a, schema_m
from repro.model.builder import SchemaBuilder


def _contact_schema(name: str, first: str, second: str, email: str):
    builder = SchemaBuilder(name)
    with builder.inner("Contact"):
        builder.leaf(first, "xsd:string")
        if second:
            builder.leaf(second, "xsd:string")
        builder.leaf(email, "xsd:string")
    return builder.build()


class TestMatchCompose:
    def test_figure3_example(self):
        """The composition of Figure 3: PO1<->PO2 with PO2<->PO3 yields PO1<->PO3."""
        match1 = StoredMapping("PO1", "PO2", (
            ("PO1.Contact.Name", "PO2.Contact.name", 1.0),
            ("PO1.Contact.Email", "PO2.Contact.e-mail", 1.0),
        ))
        match2 = StoredMapping("PO2", "PO3", (
            ("PO2.Contact.name", "PO3.Contact.firstName", 0.6),
            ("PO2.Contact.name", "PO3.Contact.lastName", 0.6),
            ("PO2.Contact.e-mail", "PO3.Contact.email", 1.0),
        ))
        composed = match_compose(match1, match2)
        rows = {(s, t): v for s, t, v in composed.rows}
        assert rows[("PO1.Contact.Name", "PO3.Contact.firstName")] == pytest.approx(0.8)
        assert rows[("PO1.Contact.Name", "PO3.Contact.lastName")] == pytest.approx(0.8)
        assert rows[("PO1.Contact.Email", "PO3.Contact.email")] == pytest.approx(1.0)
        # company has no counterpart in PO2 -> missed, exactly as in the paper
        assert not any("company" in s for s, _, _ in composed.rows)

    def test_average_vs_product_composition(self):
        """The paper's argument: 0.5 and 0.7 compose to 0.6 with Average, 0.35 with product."""
        assert average_composition(0.5, 0.7) == pytest.approx(0.6)
        assert product_composition(0.5, 0.7) == pytest.approx(0.35)
        assert min_composition(0.5, 0.7) == 0.5
        assert max_composition(0.5, 0.7) == 0.7

    def test_composition_by_name(self):
        assert composition_by_name("Average") is average_composition
        with pytest.raises(MatcherError):
            composition_by_name("geometric")

    def test_mismatched_middle_schema_rejected(self):
        first = StoredMapping("A", "B", (("A.x", "B.y", 1.0),))
        second = StoredMapping("C", "D", (("C.y", "D.z", 1.0),))
        with pytest.raises(MatcherError):
            match_compose(first, second)

    def test_self_composition_rejected(self):
        first = StoredMapping("A", "B", (("A.x", "B.y", 1.0),))
        second = StoredMapping("B", "A", (("B.y", "A.x", 1.0),))
        with pytest.raises(MatcherError):
            match_compose(first, second)

    def test_duplicate_join_keeps_max(self):
        first = StoredMapping("A", "B", (("A.x", "B.y", 0.6), ("A.x", "B.z", 1.0)))
        second = StoredMapping("B", "C", (("B.y", "C.q", 1.0), ("B.z", "C.q", 0.4)))
        composed = match_compose(first, second)
        rows = {(s, t): v for s, t, v in composed.rows}
        assert rows[("A.x", "C.q")] == pytest.approx(0.8)


class TestStoredMapping:
    def test_orientation(self):
        mapping = StoredMapping("A", "B", (("A.x", "B.y", 0.9),))
        assert mapping.oriented("A", "B") is mapping
        inverted = mapping.oriented("B", "A")
        assert inverted.rows == (("B.y", "A.x", 0.9),)
        assert mapping.oriented("A", "C") is None
        assert mapping.other_schema("A") == "B"
        assert mapping.other_schema("C") is None


class TestSchemaReuseMatcher:
    def _setup(self):
        s1 = _contact_schema("S1", "Name", "", "Email")
        s2 = _contact_schema("S2", "name", "", "e-mail")
        s3 = _contact_schema("S3", "firstName", "lastName", "email")
        store = InMemoryMappingStore()
        store.add(StoredMapping("S1", "S2", (
            ("S1.Contact.Name", "S2.Contact.name", 1.0),
            ("S1.Contact.Email", "S2.Contact.e-mail", 1.0),
        ), origin="manual"))
        store.add(StoredMapping("S2", "S3", (
            ("S2.Contact.name", "S3.Contact.firstName", 0.8),
            ("S2.Contact.e-mail", "S3.Contact.email", 1.0),
        ), origin="manual"))
        return s1, s3, store

    def test_reuse_via_intermediary(self):
        s1, s3, store = self._setup()
        context = build_context(s1, s3)
        matcher = SchemaReuseMatcher(provider=store, origin="manual")
        matrix = matcher.compute(s1.paths(), s3.paths(), context)
        name = s1.find_path("S1.Contact.Name")
        first = s3.find_path("S3.Contact.firstName")
        email_pair = matrix.get(s1.find_path("S1.Contact.Email"), s3.find_path("S3.Contact.email"))
        assert matrix.get(name, first) == pytest.approx(0.9)
        assert email_pair == pytest.approx(1.0)

    def test_direct_mapping_is_not_reused(self):
        s1, s3, store = self._setup()
        # a stored direct mapping between S1 and S3 must be ignored
        store.add(StoredMapping("S1", "S3", (("S1.Contact.Name", "S3.Contact.lastName", 1.0),),
                                origin="manual"))
        context = build_context(s1, s3)
        matrix = SchemaReuseMatcher(provider=store, origin="manual").compute(
            s1.paths(), s3.paths(), context
        )
        last = s3.find_path("S3.Contact.lastName")
        assert matrix.get(s1.find_path("S1.Contact.Name"), last) == 0.0

    def test_origin_filter(self):
        s1, s3, store = self._setup()
        context = build_context(s1, s3)
        automatic_only = SchemaReuseMatcher(provider=store, origin="automatic")
        matrix = automatic_only.compute(s1.paths(), s3.paths(), context)
        assert matrix.values.max() == 0.0

    def test_requires_provider(self):
        s1, s3, _ = self._setup()
        context = build_context(s1, s3)
        with pytest.raises(MatcherError):
            SchemaReuseMatcher().compute(s1.paths(), s3.paths(), context)

    def test_variant_factories(self):
        assert schema_m().name == "SchemaM"
        assert schema_m().origin == "manual"
        assert schema_a().name == "SchemaA"
        assert schema_a().origin == "automatic"


class TestFragmentReuseMatcher:
    def test_fragment_transfer(self):
        s1 = _contact_schema("S1", "Name", "", "Email")
        s3 = _contact_schema("S3", "Name", "", "Email")
        other_a = _contact_schema("OtherA", "Name", "", "Email")
        other_b = _contact_schema("OtherB", "Name", "", "Email")
        store = InMemoryMappingStore()
        store.add(StoredMapping("OtherA", "OtherB", (
            ("OtherA.Contact.Name", "OtherB.Contact.Name", 1.0),
        )))
        context = build_context(s1, s3)
        matcher = FragmentReuseMatcher(provider=store)
        matrix = matcher.compute(s1.paths(), s3.paths(), context)
        assert matrix.get(s1.find_path("S1.Contact.Name"), s3.find_path("S3.Contact.Name")) > 0.0
        # no stored fragment mentions Email, so that pair stays 0
        assert matrix.get(s1.find_path("S1.Contact.Email"), s3.find_path("S3.Contact.Email")) == 0.0

    def test_invalid_configuration(self):
        with pytest.raises(MatcherError):
            FragmentReuseMatcher(max_fragment_length=1, min_fragment_length=2)
