"""Tests for the generic type system, the compatibility table and the schema builder."""

import pytest

from repro.exceptions import SchemaError
from repro.model.builder import SchemaBuilder
from repro.model.datatypes import (
    GenericType,
    TypeCompatibilityTable,
    map_source_type,
    normalise_source_type,
)
from repro.model.element import ElementKind


class TestTypeMapping:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("VARCHAR(200)", GenericType.STRING),
            ("varchar", GenericType.STRING),
            ("TEXT", GenericType.STRING),
            ("INT", GenericType.INTEGER),
            ("bigint", GenericType.INTEGER),
            ("NUMERIC(10, 2)", GenericType.DECIMAL),
            ("double precision", GenericType.FLOAT),
            ("BOOLEAN", GenericType.BOOLEAN),
            ("timestamp with tz", GenericType.DATETIME),
            ("xsd:string", GenericType.STRING),
            ("xs:decimal", GenericType.DECIMAL),
            ("xsd:dateTime", GenericType.DATETIME),
            ("xsd:ID", GenericType.IDENTIFIER),
            ("uuid", GenericType.IDENTIFIER),
            ("frobnicator", GenericType.UNKNOWN),
            (None, GenericType.UNKNOWN),
            ("", GenericType.UNKNOWN),
        ],
    )
    def test_map_source_type(self, source, expected):
        assert map_source_type(source) is expected

    def test_normalise_strips_arguments(self):
        assert normalise_source_type("  VARCHAR(200) ") == "varchar"
        assert normalise_source_type("NUMERIC(10, 2)") == "numeric"


class TestCompatibilityTable:
    def test_identical_types_are_fully_compatible(self):
        table = TypeCompatibilityTable()
        assert table.compatibility(GenericType.STRING, GenericType.STRING) == 1.0
        assert table.compatibility("int", "integer") == 1.0

    def test_numeric_group_is_highly_compatible(self):
        table = TypeCompatibilityTable()
        assert table.compatibility(GenericType.INTEGER, GenericType.DECIMAL) == pytest.approx(0.8)

    def test_symmetry(self):
        table = TypeCompatibilityTable()
        for a in GenericType:
            for b in GenericType:
                assert table.compatibility(a, b) == table.compatibility(b, a)

    def test_override(self):
        table = TypeCompatibilityTable()
        table.set(GenericType.STRING, GenericType.BOOLEAN, 0.9)
        assert table.compatibility(GenericType.BOOLEAN, GenericType.STRING) == 0.9
        with pytest.raises(ValueError):
            table.set(GenericType.STRING, GenericType.BOOLEAN, 1.5)

    def test_items_cover_all_pairs(self):
        table = TypeCompatibilityTable()
        pairs = list(table.items())
        count = len(list(GenericType))
        assert len(pairs) == count * (count + 1) // 2
        assert all(0.0 <= sim <= 1.0 for _, _, sim in pairs)


class TestSchemaBuilder:
    def test_nested_construction(self):
        builder = SchemaBuilder("PO")
        with builder.inner("ShipTo"):
            builder.leaf("City", "xsd:string")
            with builder.inner("Contact"):
                builder.leaf("Phone", "xsd:string")
        schema = builder.build()
        assert "PO.ShipTo.Contact.Phone" in {p.dotted() for p in schema.paths()}

    def test_leaves_helper(self):
        builder = SchemaBuilder("S")
        with builder.inner("A"):
            builder.leaves(("x", "int"), "y")
        schema = builder.build()
        assert schema.find_path("S.A.x").source_type == "int"
        assert schema.find_path("S.A.y").source_type is None

    def test_shared_fragment(self):
        builder = SchemaBuilder("PO")
        with builder.shared("Address"):
            builder.leaf("City", "xsd:string")
        with builder.inner("ShipTo"):
            builder.attach_shared("Address")
        with builder.inner("BillTo"):
            builder.attach_shared("Address")
        schema = builder.build()
        dotted = {p.dotted() for p in schema.paths()}
        assert "PO.ShipTo.Address.City" in dotted
        assert "PO.BillTo.Address.City" in dotted

    def test_unknown_fragment_rejected(self):
        builder = SchemaBuilder("S")
        with pytest.raises(SchemaError):
            builder.attach_shared("Nope")

    def test_duplicate_fragment_rejected(self):
        builder = SchemaBuilder("S")
        with builder.shared("F"):
            builder.leaf("x")
        with pytest.raises(SchemaError):
            with builder.shared("F"):
                pass

    def test_build_only_once(self):
        builder = SchemaBuilder("S")
        builder.leaf("x")
        builder.build()
        with pytest.raises(SchemaError):
            builder.build()

    def test_reference_link(self):
        builder = SchemaBuilder("S")
        with builder.inner("A"):
            fk = builder.leaf("other_id", "int")
        with builder.inner("B"):
            pk = builder.leaf("id", "int")
        builder.reference(fk, pk)
        schema = builder.build()
        assert len(schema.references()) == 1

    def test_element_kinds(self):
        builder = SchemaBuilder("S")
        with builder.inner("T", kind=ElementKind.TABLE):
            builder.leaf("c", "int", kind=ElementKind.COLUMN)
        schema = builder.build()
        assert schema.find_element("T").kind is ElementKind.TABLE
        assert schema.find_element("c").kind is ElementKind.COLUMN
