"""Integration tests for the evaluation campaign (on a two-task subset for speed)."""

import pytest

from repro.combination.aggregation import AVERAGE
from repro.combination.direction import BOTH
from repro.combination.selection import CombinedSelection, MaxDelta, MaxN, Threshold
from repro.datasets.gold_standard import load_task
from repro.evaluation.campaign import EvaluationCampaign
from repro.evaluation.grid import SeriesSpec
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def campaign():
    """A campaign over a triangle of small tasks (1-2, 1-3, 2-3), prepared once.

    The triangle matters: the Schema reuse matcher needs, for each task, a pair
    of stored mappings sharing an intermediary schema.
    """
    tasks = [load_task(1, 2), load_task(1, 3), load_task(2, 3)]
    return EvaluationCampaign(tasks=tasks).prepare()


def _default_selection():
    return CombinedSelection([Threshold(0.5), MaxDelta(0.02)])


class TestCampaign:
    def test_prepare_is_idempotent(self, campaign):
        assert campaign.prepare() is campaign

    def test_workbench_layers_exist(self, campaign):
        workbench = campaign.workbench("1<->2")
        for matcher in ("Name", "NamePath", "TypeName", "Children", "Leaves"):
            assert workbench.layer(matcher, "Average").shape[0] > 0
            assert workbench.layer(matcher, "Dice").shape[0] > 0
        # reuse layers are variant-independent
        assert workbench.layer("SchemaM", "Dice").shape == workbench.layer("SchemaM", "Average").shape

    def test_unknown_layer_raises(self, campaign):
        workbench = campaign.workbench("1<->2")
        with pytest.raises(EvaluationError):
            workbench.layer("Bogus", "Average")

    def test_unknown_task_raises(self, campaign):
        with pytest.raises(EvaluationError):
            campaign.workbench("9<->9")

    def test_automatic_mapping_available(self, campaign):
        mapping = campaign.automatic_mapping("1<->2")
        assert len(mapping) > 0

    def test_series_evaluation_bounds(self, campaign):
        spec = SeriesSpec(
            matchers=("Name", "NamePath", "TypeName", "Children", "Leaves"),
            aggregation=AVERAGE, direction=BOTH, selection=_default_selection(),
        )
        result = campaign.evaluate_series(spec)
        assert 0.0 <= result.average.precision <= 1.0
        assert 0.0 <= result.average.recall <= 1.0
        assert result.average.overall <= 1.0
        assert len(result.per_task) == 3

    def test_combination_beats_or_matches_weak_single(self, campaign):
        """The paper's core claim: matcher combinations improve over weak single matchers."""
        selection = _default_selection()
        all_spec = SeriesSpec(
            matchers=("Name", "NamePath", "TypeName", "Children", "Leaves"),
            aggregation=AVERAGE, direction=BOTH, selection=selection,
        )
        name_spec = SeriesSpec(matchers=("Name",), aggregation=AVERAGE, direction=BOTH,
                               selection=selection)
        all_result = campaign.evaluate_series(all_spec)
        name_result = campaign.evaluate_series(name_spec)
        assert all_result.average.overall > name_result.average.overall

    def test_schema_m_reuse_outperforms_no_reuse_single(self, campaign):
        """Reuse of manually confirmed mappings beats any single no-reuse matcher."""
        selection = _default_selection()
        schema_m = campaign.evaluate_series(
            SeriesSpec(matchers=("SchemaM",), aggregation=AVERAGE, direction=BOTH,
                       selection=selection)
        )
        name_path = campaign.evaluate_series(
            SeriesSpec(matchers=("NamePath",), aggregation=AVERAGE, direction=BOTH,
                       selection=selection)
        )
        assert schema_m.average.overall > name_path.average.overall
        assert schema_m.average.precision >= name_path.average.precision

    def test_predicted_mapping_matches_series_quality(self, campaign):
        spec = SeriesSpec(matchers=("NamePath",), aggregation=AVERAGE, direction=BOTH,
                          selection=MaxN(1))
        task = campaign.tasks[0]
        predicted = campaign.predicted_mapping(spec, task)
        quality = campaign.evaluate_series_on_task(spec, task)
        assert quality.predicted == len(predicted)

    def test_evaluate_many(self, campaign):
        specs = [
            SeriesSpec(matchers=("NamePath",), aggregation=AVERAGE, direction=BOTH,
                       selection=MaxN(1)),
            SeriesSpec(matchers=("Leaves",), aggregation=AVERAGE, direction=BOTH,
                       selection=MaxN(1)),
        ]
        results = campaign.evaluate_many(specs)
        assert len(results) == 2

    def test_empty_campaign_rejected(self):
        with pytest.raises(EvaluationError):
            EvaluationCampaign(tasks=[])

    def test_unknown_hybrid_matcher_rejected(self):
        with pytest.raises(EvaluationError):
            EvaluationCampaign(tasks=[load_task(1, 2)], hybrid_matchers=("Name", "Bogus")).prepare()
