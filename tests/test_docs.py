"""Documentation checks: markdown links resolve, docstring examples run.

Two cheap, dependency-free guards that keep the docs suite honest:

* every relative link (and in-page anchor) in ``README.md`` and ``docs/``
  points at a file / heading that actually exists;
* the runnable examples in the ``repro.session`` / ``repro.engine`` /
  ``repro.service`` docstrings execute cleanly (the same modules CI runs
  through ``pytest --doctest-modules``).
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: The documentation set covered by the link check.
DOCUMENTS = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

#: Inline markdown links: [text](target) -- images and nested brackets are
#: out of scope for this docs set.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Markdown headings, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks: their brackets are code, not links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _anchor_of(heading: str) -> str:
    """GitHub's anchor slug for a heading (sufficient for this docs set)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"[\s]+", "-", slug).strip("-")


def _anchors(path: pathlib.Path) -> set:
    return {
        _anchor_of(match.group(1))
        for match in _HEADING.finditer(path.read_text(encoding="utf-8"))
    }


def _links(path: pathlib.Path):
    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    return [match.group(1) for match in _LINK.finditer(text)]


class TestMarkdownLinks:
    @pytest.mark.parametrize(
        "document", DOCUMENTS, ids=[d.relative_to(REPO_ROOT).as_posix() for d in DOCUMENTS]
    )
    def test_relative_links_resolve(self, document):
        assert document.exists(), f"documentation file {document} disappeared"
        broken = []
        for link in _links(document):
            if re.match(r"^[a-z][a-z0-9+.-]*:", link):  # http:, https:, mailto:
                continue
            target, _, anchor = link.partition("#")
            base = document.parent / target if target else document
            if target and not base.exists():
                broken.append(link)
                continue
            if anchor and base.suffix == ".md" and _anchor_of(anchor) not in _anchors(base):
                broken.append(link)
        assert not broken, f"broken links in {document.name}: {broken}"

    def test_docs_suite_is_complete(self):
        """The three documentation pages exist and README links all of them."""
        expected = {"architecture.md", "strategy-spec.md", "service.md", "robustness.md"}
        present = {path.name for path in (REPO_ROOT / "docs").glob("*.md")}
        assert expected <= present
        readme_links = _links(REPO_ROOT / "README.md")
        for name in expected:
            assert any(link.endswith(f"docs/{name}") for link in readme_links), (
                f"README.md does not link docs/{name}"
            )


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.session",
            "repro.session.session",
            "repro.engine.engine",
            "repro.engine.profiles",
            "repro.service.pool",
            "repro.service.server",
            "repro.service.client",
            "repro.faults.plan",
            "repro.faults.catalog",
        ],
    )
    def test_module_doctests_pass(self, module_name):
        module = __import__(module_name, fromlist=["_"])
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"

    def test_session_module_has_examples(self):
        """The docstring pass is real: the session exposes runnable examples."""
        module = __import__("repro.session.session", fromlist=["_"])
        finder = doctest.DocTestFinder()
        examples = [test for test in finder.find(module) if test.examples]
        assert len(examples) >= 10
