"""End-to-end resilience: every catalog fault plan, replayed and survived.

The contract under test: whatever the armed fault plan does -- corrupt store
bytes, wedge a worker, crash-loop workers, lose the corpus index, kill a
process mid-write -- the stack either returns results **byte-identical** to
the fault-free run or fails with a **typed error**, inside a hard wall-clock
bound.  Never a hang, never a silently wrong answer.

Byte-identity is asserted on the full similarity cube (every layer's raw
bytes), not just the selected correspondences: a recompute path that drifted
numerically would be caught here even if the ranking happened to survive.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.datasets.figure1 import load_po1, load_po2
from repro.exceptions import PoolTimeoutError, ServiceError
from repro.faults import KILL_EXIT_CODE, catalog_plan
from repro.parallel import ProcessSessionPool
from repro.repository.store import SimilarityStore, schema_content_digest
from repro.service.server import MatchService
from repro.session import MatchSession

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: Hard wall-clock bound on any single faulted operation in this suite.
OPERATION_BOUND_SECONDS = 30.0


@pytest.fixture(autouse=True)
def _always_disarmed():
    faults.disarm()
    yield
    faults.disarm()


def cube_fingerprint(outcome):
    """Every layer's raw bytes plus the selected correspondences."""
    layers = tuple(
        (name, matrix.values.tobytes()) for name, matrix in outcome.cube.layers()
    )
    rows = tuple(
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    )
    return layers, rows


@pytest.fixture(scope="module")
def baseline():
    """The fault-free reference run (po1 x po2, default strategy)."""
    session = MatchSession()
    outcome = session.match(load_po1(), load_po2())
    return cube_fingerprint(outcome)


def _store_one(store, outcome, key="cube-key"):
    store.store_cube(
        key,
        outcome.cube,
        schema_content_digest(outcome.context.source_schema),
        schema_content_digest(outcome.context.target_schema),
        outcome.cube.matcher_names,
        "config",
    )


class TestStoreCorruptionPlans:
    @pytest.mark.parametrize("plan_name", ["store-corruption", "store-truncation"])
    def test_corrupt_blobs_are_quarantined_and_served_as_misses(
        self, tmp_path, plan_name
    ):
        store_path = str(tmp_path / "store.db")
        session = MatchSession()
        outcome = session.match(load_po1(), load_po2())
        source_paths = outcome.context.source_schema.paths()
        target_paths = outcome.context.target_schema.paths()
        with SimilarityStore(store_path, writer=False) as store:
            _store_one(store, outcome)
            assert store.cube_count() == 1
        with SimilarityStore(store_path, writer=False) as store:
            with faults.armed(catalog_plan(plan_name)):
                loaded = store.load_cube("cube-key", source_paths, target_paths)
            # Corruption surfaces as a *miss*, never an exception or bad data.
            assert loaded is None
            info = store.info()
            assert info["corrupt"] == 1
            assert info["quarantined"] == 1
            assert store.cube_count() == 0  # the poisoned row is gone
            # The recompute-and-restore path then serves clean bytes again.
            _store_one(store, outcome)
            reloaded = store.load_cube("cube-key", source_paths, target_paths)
            assert reloaded is not None
            assert reloaded.as_array().tobytes() == outcome.cube.as_array().tobytes()

    def test_session_recomputes_identically_over_a_corrupted_store(
        self, tmp_path, baseline
    ):
        store_path = str(tmp_path / "store.db")
        warm = MatchSession(store=store_path)
        try:
            warm.match(load_po1(), load_po2())
        finally:
            warm.close()  # flush the background writer
        with faults.armed(catalog_plan("store-corruption")):
            session = MatchSession(store=store_path)
            try:
                start = time.monotonic()
                outcome = session.match(load_po1(), load_po2())
                elapsed = time.monotonic() - start
            finally:
                session.close()
        assert cube_fingerprint(outcome) == baseline
        assert elapsed < OPERATION_BOUND_SECONDS


class TestWorkerHangPlan:
    def test_watchdog_converts_a_wedged_worker_into_a_typed_timeout(self):
        plan = catalog_plan("worker-hang")
        pool = ProcessSessionPool(size=1, fault_plan=plan.to_dict())
        try:
            start = time.monotonic()
            with pytest.raises(PoolTimeoutError) as excinfo:
                pool.match_many([(load_po1(), load_po2())], timeout=2.0)
            elapsed = time.monotonic() - start
            # Within deadline + grace, not after the 120s injected wedge.
            assert elapsed < 10.0
            assert excinfo.value.status == 504
            info = pool.resilience_info()
            assert info["watchdog_kills"] == 1
            # The background respawner must return the slot to the free list.
            deadline = time.monotonic() + OPERATION_BOUND_SECONDS
            while pool.idle < 1:
                assert time.monotonic() < deadline, "slot never came back"
                time.sleep(0.05)
            assert pool.resilience_info()["respawns"] >= 1
        finally:
            pool.close()


class TestWorkerCrashLoopPlan:
    def test_breaker_routes_around_crash_looping_workers(self, baseline):
        plan = catalog_plan("worker-crash-loop")
        pool = ProcessSessionPool(size=1, fault_plan=plan.to_dict())
        try:
            start = time.monotonic()
            # Every fresh worker kills itself on its first frames (respawns
            # re-arm the plan), so each request rides death -> replay ->
            # death -> in-process fallback; the third trips the breaker.
            for _ in range(3):
                outcome = pool.match(load_po1(), load_po2())
                assert cube_fingerprint(outcome) == baseline
            elapsed = time.monotonic() - start
            assert elapsed < OPERATION_BOUND_SECONDS
            info = pool.resilience_info()
            assert info["breaker"]["state"] == "open"
            assert info["breaker"]["trips"] >= 1
            assert info["breaker"]["routed_local"] >= 1
            assert info["respawns"] >= 2
            assert pool.idle == 1  # no leaked slot despite all the deaths
        finally:
            pool.close()


class TestCorpusIndexLossPlan:
    def test_search_degrades_to_a_typed_503_and_recovers(self):
        plan = catalog_plan("corpus-index-loss")
        service = MatchService(
            pool_size=1, corpus_path=":memory:", fault_plan=plan.to_dict()
        )
        try:
            service.register_schema(load_po1())
            service.register_schema(load_po2())
            status, payload = service.handle_request(
                "POST", "/search", {"source": "PO1", "k": 2}
            )
            assert status == 503
            assert payload["component"] == "corpus"
            assert "corpus search unavailable" in payload["error"]
            # /health flags exactly the corpus component.
            status, health = service.handle_request("GET", "/health", None)
            assert health["status"] == "degraded"
            assert health["components"]["corpus"]["status"] == "degraded"
            assert health["components"]["pool"]["status"] == "ok"
            # Plain pair matching is unaffected by the lost index.
            status, match = service.handle_request(
                "POST", "/match", {"source": "PO1", "target": "PO2"}
            )
            assert status == 200 and match["correspondences"]
            # Recovery: the index is "back" (plan disarmed), one successful
            # search clears the degradation mark.
            faults.disarm()
            status, result = service.handle_request(
                "POST", "/search", {"source": "PO1", "k": 2}
            )
            assert status == 200 and result["results"]
            status, health = service.handle_request("GET", "/health", None)
            assert health["status"] == "ok"
        finally:
            service.close()


_MID_WRITE_KILL_SCRIPT = """\
import sys
sys.path.insert(0, {src!r})
from repro import faults
from repro.datasets.figure1 import load_po1, load_po2
from repro.faults import catalog_plan
from repro.repository.store import SimilarityStore, schema_content_digest
from repro.session import MatchSession

faults.arm(catalog_plan("mid-write-kill"))
outcome = MatchSession().match(load_po1(), load_po2())
store = SimilarityStore({store!r}, writer=False)
for index in range(4):
    store.store_cube(
        "key-%d" % index,
        outcome.cube,
        schema_content_digest(outcome.context.source_schema),
        schema_content_digest(outcome.context.target_schema),
        outcome.cube.matcher_names,
        "config",
    )
raise SystemExit("the mid-write kill never fired")
"""


class TestMidWriteKillPlan:
    def test_a_killed_writer_leaves_only_crc_clean_blobs(self, tmp_path):
        store_path = str(tmp_path / "store.db")
        script = tmp_path / "sacrifice.py"
        script.write_text(
            _MID_WRITE_KILL_SCRIPT.format(src=SRC_DIR, store=store_path)
        )
        completed = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            timeout=OPERATION_BOUND_SECONDS * 4,
        )
        assert completed.returncode == KILL_EXIT_CODE, completed.stderr.decode()

        # The survivor's view: whatever rows landed are complete and
        # crc-clean; a torn second write must not be visible at all.
        outcome = MatchSession().match(load_po1(), load_po2())
        source_paths = outcome.context.source_schema.paths()
        target_paths = outcome.context.target_schema.paths()
        with SimilarityStore(store_path, writer=False) as store:
            assert store.cube_count() == 1  # write 1 landed, write 2 died
            loaded = store.load_cube("key-0", source_paths, target_paths)
            assert loaded is not None
            assert loaded.as_array().tobytes() == outcome.cube.as_array().tobytes()
            for index in range(1, 4):
                assert (
                    store.load_cube(f"key-{index}", source_paths, target_paths)
                    is None
                )
            assert store.info()["corrupt"] == 0  # absent, not torn


class TestFaultPlansShipToWorkers:
    def test_worker_processes_arm_the_parents_plan(self, baseline):
        # A raise rule on the worker seam only fires if the *child* process
        # armed the plan it was spawned with: the worker answers its first
        # match frame with the injected error (a typed ServiceError here --
        # the worker survives, so there is nothing to replay), and the next
        # request over the same worker succeeds byte-identically.
        plan = faults.FaultPlan(
            [faults.FaultRule(point="worker.match", action="raise", nth=1)],
            name="worker-raise-once",
        )
        pool = ProcessSessionPool(size=1, fault_plan=plan.to_dict())
        try:
            with pytest.raises(ServiceError, match="injected fault"):
                pool.match(load_po1(), load_po2())
            outcome = pool.match(load_po1(), load_po2())
            assert cube_fingerprint(outcome) == baseline
        finally:
            pool.close()
