"""Tests for the matcher library / registry (Table 3)."""

import pytest

from repro.exceptions import UnknownMatcherError
from repro.matchers.base import Matcher
from repro.matchers.registry import (
    DEFAULT_LIBRARY,
    EVALUATION_HYBRID_MATCHERS,
    MatcherLibrary,
    default_library,
)


class TestDefaultLibrary:
    def test_table3_matchers_present(self):
        library = default_library()
        for name in (
            "Affix", "Digram", "Trigram", "EditDistance", "Soundex", "Synonym",
            "DataType", "UserFeedback", "Name", "NamePath", "TypeName", "Children",
            "Leaves", "Schema", "SchemaM", "SchemaA", "Fragment",
        ):
            assert name in library

    def test_kinds(self):
        library = default_library()
        assert set(library.names(kind="hybrid")) == set(EVALUATION_HYBRID_MATCHERS)
        assert "Schema" in library.names(kind="reuse")
        assert "Trigram" in library.names(kind="simple")

    def test_create_is_case_insensitive_and_returns_fresh_instances(self):
        library = default_library()
        first = library.create("namepath")
        second = library.create("NamePath")
        assert isinstance(first, Matcher)
        assert first is not second

    def test_create_many_preserves_order(self):
        library = default_library()
        matchers = library.create_many(["Leaves", "Name"])
        assert [m.name for m in matchers] == ["Leaves", "Name"]

    def test_unknown_matcher(self):
        library = default_library()
        with pytest.raises(UnknownMatcherError):
            library.create("Cupid")
        with pytest.raises(UnknownMatcherError):
            library.info("Cupid")

    def test_entries_describe_table3_columns(self):
        library = default_library()
        info = library.info("Synonym")
        assert info.kind == "simple"
        assert "dictionar" in info.auxiliary_info.lower()
        entries = library.entries()
        assert len(entries) == len(library)


class TestCustomRegistration:
    def test_register_and_replace(self):
        library = MatcherLibrary()

        class Dummy(Matcher):
            name = "Dummy"

            def compute(self, source_paths, target_paths, context):  # pragma: no cover
                raise NotImplementedError

        library.register("Dummy", Dummy)
        assert "Dummy" in library
        with pytest.raises(ValueError):
            library.register("Dummy", Dummy)
        library.register("Dummy", Dummy, replace=True)
        assert len(library) == 1

    def test_default_library_singleton_is_prepopulated(self):
        assert len(DEFAULT_LIBRARY) >= 17
