"""Client resilience: retries across recycled keep-alive connections.

The regression these tests lock down: a long-lived :class:`ServiceClient`
whose server is killed and restarted mid-lifetime must transparently recover
on idempotent GETs (``/health``, ``/stats``) -- including when the dropped
connection was *fresh* (a restarting server resetting the first request) --
while non-GET requests are never silently re-submitted on a fresh connection.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.datasets.figure1 import PO1_DDL, PO2_XSD
from repro.exceptions import ServiceError
from repro.service import ServiceClient, create_async_server, create_server

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def _free_port() -> int:
    with socket.create_server(("127.0.0.1", 0)) as listener:
        return listener.getsockname()[1]


class _ServerDied(RuntimeError):
    """The child exited before coming healthy (e.g. the picked port was
    re-bound by another process between ``_free_port`` and the spawn)."""


def _spawn_server(port: int) -> subprocess.Popen:
    """Run ``coma serve`` in a real child process (a killable server).

    An in-process ``server_close()`` is not a faithful restart: the
    threading server's daemon handler threads keep serving *established*
    keep-alive connections, so the client's pooled connection would never go
    stale.  Killing a child process drops every connection the way a real
    restart does.
    """
    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC_DIR + os.pathsep + environment.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--workers", "1", "--quiet",
        ],
        env=environment,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    probe = ServiceClient(f"http://127.0.0.1:{port}", timeout=5.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise _ServerDied(
                f"coma serve exited with {process.returncode} before "
                f"serving on port {port} (port race?)"
            )
        try:
            if probe.health()["status"] == "ok":
                probe.close()
                return process
        except ServiceError:
            time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"coma serve did not come up on port {port}")


def _spawn_server_on_a_free_port() -> "tuple[subprocess.Popen, int]":
    """Pick a port with ``bind(0)`` and spawn on it; retry once on a race.

    The pick-then-bind window is small but real under parallel test runs:
    another process can grab the port between ``_free_port`` releasing it and
    the child binding it.  One retry with a freshly picked port removes that
    flake without masking genuine startup failures.
    """
    for attempt in (1, 2):
        port = _free_port()
        try:
            return _spawn_server(port), port
        except _ServerDied:
            if attempt == 2:
                raise
    raise AssertionError("unreachable")


def _kill(process: subprocess.Popen) -> None:
    process.kill()
    process.wait(timeout=10)


class TestRestartMidClientLifetime:
    def test_idempotent_gets_survive_a_server_restart(self):
        first, port = _spawn_server_on_a_free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}")
        try:
            assert client.health()["status"] == "ok"  # keep-alive established
        finally:
            _kill(first)

        # The client's pooled connection is now stale: the next GET hits a
        # recycled keep-alive socket the dead server dropped.  With a fresh
        # server on the same port, one retry must recover transparently.
        second = _spawn_server(port)
        try:
            assert client.health()["status"] == "ok"
            assert client.stats()["requests"]["total"] >= 1
            # Non-GET traffic also flows again (on the re-opened connection).
            client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
            client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
            assert client.match("PO1", "PO2")["correspondences"]
        finally:
            _kill(second)

    def test_requests_fail_cleanly_when_the_server_stays_down(self):
        server, port = _spawn_server_on_a_free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
        assert client.health()["status"] == "ok"
        _kill(server)
        with pytest.raises(ServiceError):
            client.health()  # one retry, then a clean error -- no hang


class _ResetFirstConnectionProxy(threading.Thread):
    """A TCP proxy that resets its first connection, then tunnels the rest.

    This reproduces the restart race the retry exists for: the *first*
    connection a client opens is dropped without a response (as a restarting
    server does), while subsequent connections reach the real server.
    """

    def __init__(self, target_port: int):
        super().__init__(daemon=True)
        self._target_port = target_port
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._dropped_one = False
        self._running = True

    def run(self) -> None:
        while self._running:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            if not self._dropped_one:
                self._dropped_one = True
                # RST instead of FIN, so the client sees ConnectionResetError
                # (a FIN would surface as RemoteDisconnected -- also retried).
                connection.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                connection.close()
                continue
            upstream = socket.create_connection(("127.0.0.1", self._target_port))
            for source, sink in ((connection, upstream), (upstream, connection)):
                threading.Thread(
                    target=self._pump, args=(source, sink), daemon=True
                ).start()

    @staticmethod
    def _pump(source: socket.socket, sink: socket.socket) -> None:
        try:
            while True:
                data = source.recv(1 << 16)
                if not data:
                    break
                sink.sendall(data)
        except OSError:
            pass
        for endpoint in (source, sink):
            try:
                endpoint.close()
            except OSError:
                pass

    def stop(self) -> None:
        self._running = False
        self._listener.close()


@pytest.fixture()
def real_server():
    server = create_server(port=0, pool_size=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()


class _SaturatedAsyncServer:
    """A real async front-end wedged at capacity (every slot parked).

    ``max_queue`` raw requests are parked on a patched ``/block`` route, so
    the *next* request of any client is answered with a genuine
    ``429 Too Many Requests`` + ``Retry-After`` by the production admission
    path -- no mocked responses anywhere.  ``release()`` un-parks them,
    draining the queue so retried requests are admitted.
    """

    def __init__(self, max_queue: int = 2):
        self.server = create_async_server(port=0, pool_size=1, max_queue=max_queue)
        self.thread = self.server.run_in_thread()
        self.max_queue = max_queue
        self._release = threading.Event()
        self._original = self.server.service.handle_request
        self._parked: "list[socket.socket]" = []

        def blocking(method, path, payload=None):
            if path.rstrip("/") == "/block":
                self._release.wait(timeout=30)
                return 200, {"blocked": True}
            return self._original(method, path, payload)

        self.server.service.handle_request = blocking

    def saturate(self) -> None:
        for _ in range(self.max_queue):
            sock = socket.create_connection(("127.0.0.1", self.server.port), timeout=10)
            sock.sendall(b"GET /block HTTP/1.1\r\n\r\n")
            self._parked.append(sock)
        deadline = time.monotonic() + 10
        while self.server._in_flight < self.max_queue:
            assert time.monotonic() < deadline, "parked requests never admitted"
            time.sleep(0.01)

    def release(self) -> None:
        self._release.set()

    def release_after(self, seconds: float) -> None:
        threading.Timer(seconds, self.release).start()

    def close(self) -> None:
        self.release()
        for sock in self._parked:
            sock.close()
        self.server.service.handle_request = self._original
        self.server.request_shutdown()
        self.thread.join(timeout=10)


class TestRetryAfterBackoff:
    def test_default_client_fails_fast_with_the_retry_hint(self):
        wedged = _SaturatedAsyncServer()
        try:
            wedged.saturate()
            client = ServiceClient(f"http://127.0.0.1:{wedged.server.port}")
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            assert excinfo.value.status == 429
            # The server's Retry-After header rides along for callers that
            # want to implement their own policy.
            assert excinfo.value.details["retry_after"] == "1"
        finally:
            wedged.close()

    def test_opted_in_client_honours_retry_after_and_succeeds(self):
        wedged = _SaturatedAsyncServer()
        try:
            wedged.saturate()
            client = ServiceClient(
                f"http://127.0.0.1:{wedged.server.port}", retries=5
            )
            # The queue drains while the client sleeps the advertised
            # Retry-After; the retried request is then admitted for real.
            wedged.release_after(0.5)
            start = time.monotonic()
            assert client.health()["status"] == "ok"
            elapsed = time.monotonic() - start
            assert elapsed >= 0.5  # it genuinely waited for capacity
            assert wedged.server._rejected_429 >= 1  # the 429 was real
        finally:
            wedged.close()

    def test_retries_exhaust_into_the_original_429(self):
        wedged = _SaturatedAsyncServer()
        try:
            wedged.saturate()
            # Never released: every retry meets the same full queue, and the
            # caller gets the typed 429 (not a hang) once retries run out.
            client = ServiceClient(
                f"http://127.0.0.1:{wedged.server.port}", retries=1
            )
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            assert excinfo.value.status == 429
        finally:
            wedged.close()


class TestRetryDelayClamping:
    """Unit tests for the Retry-After clamp: a hostile or buggy server header
    must never stall the client (negative, huge, infinite) nor crash the
    retry loop (garbage).  No server needed -- the delay computation is pure."""

    @staticmethod
    def _delay(header, attempt=0):
        from repro.service.client import ServiceClient

        client = ServiceClient("http://127.0.0.1:1", retries=1)
        details = {} if header is None else {"retry_after": header}
        error = ServiceError("throttled", status=429, details=details)
        return client._retry_delay(error, attempt)

    def test_negative_header_waits_nothing(self):
        assert self._delay("-5") == 0.0
        assert self._delay("-1e9") == 0.0
        assert self._delay("-inf") == 0.0

    def test_zero_header_waits_nothing(self):
        assert self._delay("0") == 0.0

    def test_ordinary_header_is_honoured_verbatim(self):
        assert self._delay("1") == 1.0
        assert self._delay("2.5") == 2.5

    def test_huge_and_infinite_headers_wait_the_cap_at_most(self):
        from repro.service.client import MAX_RETRY_WAIT

        assert self._delay("1e9") == MAX_RETRY_WAIT
        assert self._delay(str(10**12)) == MAX_RETRY_WAIT
        assert self._delay("inf") == MAX_RETRY_WAIT

    def test_garbage_headers_fall_back_to_doubling(self):
        from repro.service.client import RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP

        for garbage in ("soon", "", "nan", "1s", None):
            expected = min(RETRY_BACKOFF_CAP, RETRY_BACKOFF_BASE * 2**3)
            assert self._delay(garbage, attempt=3) == expected

    def test_doubling_fallback_is_capped(self):
        from repro.service.client import RETRY_BACKOFF_CAP

        assert self._delay(None, attempt=50) == RETRY_BACKOFF_CAP


class TestFreshConnectionSemantics:
    def test_fresh_get_is_retried_once_after_a_reset(self, real_server):
        proxy = _ResetFirstConnectionProxy(real_server.server_address[1])
        proxy.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{proxy.port}")
            # The very first connection this client ever opens is reset; the
            # idempotent GET must be replayed on a new connection.
            assert client.health()["status"] == "ok"
        finally:
            proxy.stop()

    def test_fresh_post_is_not_silently_replayed(self, real_server):
        proxy = _ResetFirstConnectionProxy(real_server.server_address[1])
        proxy.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{proxy.port}")
            with pytest.raises(ServiceError):
                # A POST on a fresh connection must surface the failure: the
                # server may have received (and be executing) the request.
                client.upload_schema(
                    name="PO1", text=PO1_DDL, format="sql"
                )
            # The transport itself is fine -- the next call simply works.
            assert client.health()["status"] == "ok"
        finally:
            proxy.stop()
