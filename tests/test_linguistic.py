"""Tests for name tokenization and abbreviation expansion."""

import pytest

from repro.linguistic.abbreviations import AbbreviationTable, default_abbreviations
from repro.linguistic.tokenizer import NameTokenizer, split_name


class TestSplitName:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("POShipTo", ["PO", "Ship", "To"]),
            ("shipToStreet", ["ship", "To", "Street"]),
            ("ship_to_street", ["ship", "to", "street"]),
            ("ship-to.street", ["ship", "to", "street"]),
            ("Address1", ["Address", "1"]),
            ("HTTPServer", ["HTTP", "Server"]),
            ("simple", ["simple"]),
            ("", []),
        ],
    )
    def test_split(self, name, expected):
        assert split_name(name) == expected


class TestAbbreviationTable:
    def test_expand_known_and_unknown(self):
        table = default_abbreviations()
        assert table.expand("po") == ("purchase", "order")
        assert table.expand("PO") == ("purchase", "order")
        assert table.expand("city") == ("city",)

    def test_add_and_remove(self):
        table = AbbreviationTable()
        table.add("qty", "quantity")
        assert table.knows("QTY")
        assert table.remove("qty")
        assert not table.remove("qty")

    def test_invalid_entries_rejected(self):
        table = AbbreviationTable()
        with pytest.raises(ValueError):
            table.add("", "x")
        with pytest.raises(ValueError):
            table.add("x", [])

    def test_merge_prefers_other(self):
        first = AbbreviationTable({"no": "number"})
        second = AbbreviationTable({"no": "negation"})
        merged = first.merged_with(second)
        assert merged.expand("no") == ("negation",)

    def test_contains_and_len(self):
        table = AbbreviationTable({"no": "number"})
        assert "no" in table
        assert "yes" not in table
        assert len(table) == 1


class TestNameTokenizer:
    def test_tokenize_expands_abbreviations(self):
        tokenizer = NameTokenizer()
        assert tokenizer.tokenize("POShipTo") == ("purchase", "order", "ship", "to")

    def test_tokenize_without_expansion(self):
        tokenizer = NameTokenizer(expand_abbreviations=False)
        assert tokenizer.tokenize("POShipTo") == ("po", "ship", "to")

    def test_tokenize_path_concatenates(self):
        tokenizer = NameTokenizer(expand_abbreviations=False)
        assert tokenizer.tokenize_path(["ShipTo", "Street"]) == ("ship", "to", "street")

    def test_drop_digits_option(self):
        tokenizer = NameTokenizer(drop_digits=True)
        assert "1" not in tokenizer.tokenize("Address1")
        tokenizer_keep = NameTokenizer(drop_digits=False)
        assert "1" in tokenizer_keep.tokenize("Address1")

    def test_token_set(self):
        tokenizer = NameTokenizer(expand_abbreviations=False)
        assert tokenizer.token_set("ShipShip") == frozenset({"ship"})

    def test_custom_abbreviations(self):
        table = AbbreviationTable({"cst": "customer"})
        tokenizer = NameTokenizer(abbreviations=table)
        assert tokenizer.tokenize("cstName") == ("customer", "name")
