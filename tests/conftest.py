"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.match_operation import build_context
from repro.datasets.figure1 import load_po1, load_po2
from repro.datasets.gold_standard import load_all_tasks, load_task
from repro.model.builder import SchemaBuilder


@pytest.fixture(scope="session")
def po1():
    """The relational PO1 schema of Figure 1."""
    return load_po1()


@pytest.fixture(scope="session")
def po2():
    """The XML PO2 schema of Figure 1 (with the shared Address fragment)."""
    return load_po2()


@pytest.fixture(scope="session")
def figure1_context(po1, po2):
    """A ready-made match context over the Figure 1 schemas."""
    return build_context(po1, po2)


@pytest.fixture()
def tiny_pair():
    """A small hand-built schema pair used by matcher unit tests."""
    left_builder = SchemaBuilder("Left")
    with left_builder.inner("ShipTo"):
        left_builder.leaf("shipToStreet", "varchar(100)")
        left_builder.leaf("shipToCity", "varchar(100)")
        left_builder.leaf("shipToZip", "varchar(10)")
    with left_builder.inner("Customer"):
        left_builder.leaf("custName", "varchar(100)")
        left_builder.leaf("custCity", "varchar(100)")
    left = left_builder.build()

    right_builder = SchemaBuilder("Right")
    with right_builder.inner("DeliverTo"):
        with right_builder.inner("Address"):
            right_builder.leaf("Street", "xsd:string")
            right_builder.leaf("City", "xsd:string")
            right_builder.leaf("Zip", "xsd:decimal")
    with right_builder.inner("Buyer"):
        right_builder.leaf("Name", "xsd:string")
    right = right_builder.build()
    return left, right


@pytest.fixture()
def tiny_context(tiny_pair):
    """A match context over the tiny schema pair."""
    left, right = tiny_pair
    return build_context(left, right)


@pytest.fixture(scope="session")
def small_task():
    """The smallest evaluation task (schemas 1 and 2)."""
    return load_task(1, 2)


@pytest.fixture(scope="session")
def all_tasks():
    """All 10 evaluation tasks (loaded once per test session)."""
    return load_all_tasks()
