"""Fuzz/property tests: the bit-parallel kernels equal the scalar DP.

The batch kernel (:func:`repro.matchers.string.edit_distance
.levenshtein_distance_many`) routes pairs through the vectorized Myers
bit-parallel recurrence (with a padded batch-DP fallback); these tests pin
it -- and the scalar Myers kernel behind :func:`levenshtein_distance` -- to
the classic two-row DP reference on arbitrary unicode input, including the
edges the bit packing has to get right (empty strings, equal strings,
patterns crossing the 64- and 128-bit word boundaries, astral code points),
and check the upper-bound short-circuit contract of the scalar kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matchers.memo import KernelMemoPool, set_active_pool
from repro.matchers.string import bitparallel
from repro.matchers.string.edit_distance import (
    EditDistanceMatcher,
    levenshtein_distance,
    levenshtein_distance_dp,
    levenshtein_distance_many,
)

#: Unicode text including combining marks, CJK and astral code points -- the
#: batch kernel works on raw code points, so anything ord() accepts is fair.
unicode_names = st.text(min_size=0, max_size=16)
ascii_names = st.text(
    alphabet="abcdefghijklmnop_ -0123456789", min_size=0, max_size=12
)
#: Long names spanning the multi-word ladder (>64 and >128 code points) from
#: a small alphabet so edits collide often; astral code points included.
long_names = st.text(
    alphabet="ab\U0001f600", min_size=0, max_size=200
)


def scalar_reference(a: str, b: str) -> int:
    """The classic two-row DP (the ground truth for every comparison)."""
    return levenshtein_distance_dp(a, b)


class TestBatchEqualsScalar:
    @given(pairs=st.lists(st.tuples(unicode_names, unicode_names), max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_random_unicode_pairs(self, pairs):
        batch = levenshtein_distance_many(pairs)
        expected = [scalar_reference(a, b) for a, b in pairs]
        assert batch.tolist() == expected

    @given(words=st.lists(unicode_names, min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_cross_product_blocks(self, words):
        pairs = [(a, b) for a in words for b in words]
        batch = levenshtein_distance_many(pairs)
        expected = [scalar_reference(a, b) for a, b in pairs]
        assert batch.tolist() == expected

    def test_edge_cases(self):
        pairs = [
            ("", ""),
            ("", "abc"),
            ("abc", ""),
            ("abc", "abc"),
            ("a", "b"),
            ("a", "a"),
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("日本語", "日本"),
            ("naïve", "naive"),
            ("\U0001f600", "\U0001f601"),  # astral plane code points
            ("aaaa", "aaaa"),
            ("ab" * 8, "ba" * 8),
        ]
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in pairs]

    def test_empty_batch(self):
        assert levenshtein_distance_many([]).tolist() == []

    def test_chunked_batches_agree_with_scalar(self):
        """Chunked execution (the bounded-memory path) matches the scalar DP."""
        import repro.matchers.string.edit_distance as module

        pairs = [(f"name{i}", f"label{i % 7}") for i in range(40)]
        distances = np.zeros(len(pairs), dtype=np.intp)
        indices = list(range(len(pairs)))
        for start in range(0, len(indices), 3):  # force 3-pair chunks
            module._batch_dp(pairs, indices[start : start + 3], distances)
        assert distances.tolist() == [scalar_reference(a, b) for a, b in pairs]
        # The public entry point (whose chunk size floors at 1024) agrees too.
        assert module.levenshtein_distance_many(pairs).tolist() == distances.tolist()

    def test_mixed_lengths_in_one_batch(self):
        # Pairs finishing at very different outer iterations share one batch:
        # each must record its result at exactly its own final DP row.
        pairs = [("a" * n, "b" * (17 - n)) for n in range(1, 17)]
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in pairs]

    def test_forced_dp_kernel_agrees(self):
        pairs = [("kitten", "sitting"), ("a" * 70, "b" * 70), ("", "xy")]
        forced = levenshtein_distance_many(pairs, kernel="dp")
        assert forced.tolist() == [scalar_reference(a, b) for a, b in pairs]
        with pytest.raises(ValueError):
            levenshtein_distance_many(pairs, kernel="simd")


class TestBitParallelKernel:
    """The Myers kernels (scalar + vectorized ladder) against the two-row DP."""

    @given(a=long_names, b=long_names)
    @settings(max_examples=150, deadline=None)
    def test_scalar_myers_matches_dp(self, a, b):
        assert bitparallel.myers_distance(a, b) == scalar_reference(a, b)

    @given(pairs=st.lists(st.tuples(long_names, long_names), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_multiword_ladder_matches_dp(self, pairs):
        # Lengths up to 200 span the 1-, 2- and 3-word ladders in one batch.
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in pairs]

    def test_word_boundary_lengths(self):
        # Patterns of exactly 63/64/65 and 127/128/129 code points exercise
        # the score bit landing on (and wrapping off) the top of a word.
        pairs = []
        for m in (63, 64, 65, 127, 128, 129):
            pairs.append(("a" * m, "a" * (m - 1) + "b"))
            pairs.append(("a" * m, "b" * m))
            pairs.append(("ab" * (m // 2), "ba" * (m // 2) + "a"))
            pairs.append(("a" * m, "a" * (m + 40)))
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in pairs]

    def test_astral_plane_multiword(self):
        # Astral code points (> 0xFFFF) in patterns crossing word boundaries.
        a = "\U0001f600\U0001f601" * 40  # 80 code points, 2 words
        b = "\U0001f600\U0001f602" * 45
        pairs = [(a, b), (a, a[:-1]), ("x" + a, b + "\U0001f603")]
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(x, y) for x, y in pairs]

    def test_all_equal_block(self):
        # An all-equal batch never enters the kernel (short-circuit) but must
        # still come back all-zero, and a block where every pair shares one
        # text must finish every pair on the same step.
        same = [("purchase_order", "purchase_order")] * 50
        assert levenshtein_distance_many(same).tolist() == [0] * 50
        shared = [("name%d" % i, "label") for i in range(50)]
        batch = levenshtein_distance_many(shared)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in shared]

    def test_empty_strings_short_circuit(self):
        pairs = [("", ""), ("", "abc"), ("abc", ""), ("", "\U0001f600")]
        assert levenshtein_distance_many(pairs).tolist() == [0, 3, 3, 1]

    def test_fallback_beyond_ladder_cap(self):
        # Patterns longer than MAX_PATTERN_LENGTH take the batch-DP fallback
        # inside levenshtein_distance_many; results stay exact.
        m = bitparallel.MAX_PATTERN_LENGTH + 5
        pairs = [("a" * m, "a" * (m - 3) + "bcd"), ("ab" * m, "ba" * m), ("s", "t")]
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in pairs]

    def test_chunked_peq_budget(self, monkeypatch):
        # Shrink the Peq budget so one call spans many chunks; per-chunk
        # alphabets and score scatter must still line up pair-by-pair.
        monkeypatch.setattr(bitparallel, "_PEQ_BUDGET_BYTES", 2048)
        pairs = [("name%d" % i, "label%d" % (i % 7)) for i in range(300)]
        batch = levenshtein_distance_many(pairs)
        assert batch.tolist() == [scalar_reference(a, b) for a, b in pairs]


class TestScalarUpperBound:
    @given(a=unicode_names, b=unicode_names)
    @settings(max_examples=150, deadline=None)
    def test_bound_contract(self, a, b):
        """With a bound, the result is exact below it and >= the bound otherwise."""
        exact = scalar_reference(a, b)
        bound = max(len(a), len(b))
        result = levenshtein_distance(a, b, upper_bound=bound)
        if exact < bound:
            assert result == exact
        else:
            assert bound <= result <= exact

    def test_length_difference_short_circuit(self):
        # The length difference alone reaches the bound: the DP is skipped
        # and the (lower-bound) length difference comes back.
        assert levenshtein_distance("po", "purchaseorder", upper_bound=11) == 11
        # One character less and the DP must run (bound not yet reached).
        assert levenshtein_distance("po", "purchaseorder", upper_bound=12) == 11

    def test_no_bound_is_exact(self):
        assert levenshtein_distance("abcdef", "xyz") == 6


class TestMatcherBatchEquivalence:
    """EditDistanceMatcher.similarity_many == per-pair similarity, exactly."""

    @pytest.fixture(autouse=True)
    def fresh_pool(self):
        previous = set_active_pool(KernelMemoPool())
        yield
        set_active_pool(previous)

    @given(
        sources=st.lists(ascii_names, min_size=1, max_size=8),
        targets=st.lists(ascii_names, min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_matrix_equals_pairwise(self, sources, targets):
        matcher = EditDistanceMatcher()
        got = matcher.similarity_many(sources, targets)
        want = np.array(
            [[matcher.similarity(a, b) for b in targets] for a in sources]
        )
        assert np.array_equal(got, want)

    @given(
        sources=st.lists(ascii_names, min_size=1, max_size=6),
        targets=st.lists(ascii_names, min_size=1, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_pool_disabled_equals_pooled(self, sources, targets):
        matcher = EditDistanceMatcher()
        pooled = matcher.similarity_many(sources, targets)
        previous = set_active_pool(None)
        try:
            plain = matcher.similarity_many(sources, targets)
        finally:
            set_active_pool(previous)
        assert np.array_equal(pooled, plain)

    def test_case_sensitive_variant(self):
        matcher = EditDistanceMatcher(case_sensitive=True)
        got = matcher.similarity_many(["Ab", "ab"], ["AB", "ab"])
        want = np.array(
            [[matcher.similarity(a, b) for b in ("AB", "ab")] for a in ("Ab", "ab")]
        )
        assert np.array_equal(got, want)
