"""Tests for the declarative strategy spec grammar and its dict/JSON form."""

import pytest

from repro.combination.combined import combined_similarity_by_name
from repro.combination.selection import CombinedSelection, MaxDelta, MaxN, Threshold
from repro.combination.strategy import (
    CombinationStrategy,
    combination_from_spec,
    default_combination,
    parse_selection,
    split_top_level,
)
from repro.core.strategy import MatchStrategy, default_strategy
from repro.evaluation.grid import full_grid
from repro.exceptions import StrategyError
from repro.matchers.hybrid import NameMatcher
from repro.matchers.registry import DEFAULT_LIBRARY, EVALUATION_HYBRID_MATCHERS


class TestSelectionParsing:
    def test_delta_modes_round_trip(self):
        relative = parse_selection("Delta(0.02,rel)")
        absolute = parse_selection("Delta(0.02,abs)")
        assert isinstance(relative, MaxDelta) and relative.relative
        assert isinstance(absolute, MaxDelta) and not absolute.relative
        assert parse_selection(str(relative)) == relative
        assert parse_selection(str(absolute)) == absolute

    def test_paper_style_trailing_counts(self):
        assert parse_selection("Max1") == MaxN(1)
        assert parse_selection("Max3") == MaxN(3)
        assert parse_selection("MaxN2") == MaxN(2)

    def test_threshold_aliases(self):
        assert parse_selection("Threshold(0.7)") == Threshold(0.7)
        assert parse_selection("Thr(0.7)") == Threshold(0.7)

    def test_combined_selection_round_trip(self):
        combined = CombinedSelection([Threshold(0.5), MaxDelta(0.02)])
        assert parse_selection(str(combined)) == combined

    def test_invalid_terms_raise(self):
        with pytest.raises(StrategyError):
            parse_selection("Bogus(1)")
        with pytest.raises(StrategyError):
            parse_selection("Delta(0.02,sideways)")
        with pytest.raises(StrategyError):
            parse_selection("")


class TestSplitTopLevel:
    def test_respects_parentheses(self):
        assert split_top_level("Average,Both,Thr(0.5)+Delta(0.02,rel),Dice") == [
            "Average", "Both", "Thr(0.5)+Delta(0.02,rel)", "Dice",
        ]

    def test_unbalanced_raises(self):
        with pytest.raises(StrategyError):
            split_top_level("Thr(0.5")
        with pytest.raises(StrategyError):
            split_top_level("Thr0.5)")


class TestCombinationSpec:
    def test_round_trip_default(self):
        combination = default_combination()
        assert CombinationStrategy.parse(combination.to_spec()) == combination

    def test_accepts_paper_tuple_notation(self):
        combination = default_combination()
        assert combination_from_spec(combination.describe()) == combination

    def test_three_part_spec_defaults_combined_similarity(self):
        combination = combination_from_spec("Max,Both,MaxN(1)")
        assert str(combination.combined_similarity) == "Average"

    def test_wrong_arity_raises(self):
        with pytest.raises(StrategyError):
            combination_from_spec("Average,Both")
        with pytest.raises(StrategyError):
            combination_from_spec("Average,Both,MaxN(1),Dice,Extra")


class TestStrategySpec:
    def test_default_strategy_round_trips(self):
        strategy = default_strategy()
        spec = strategy.to_spec()
        assert spec.startswith("All(")
        assert MatchStrategy.parse(spec) == strategy

    def test_all_alias_expands_in_order(self):
        strategy = MatchStrategy.parse("All")
        assert strategy.matcher_names() == tuple(EVALUATION_HYBRID_MATCHERS)
        assert strategy.name == "All"

    def test_all_plus_reuse_label(self):
        strategy = MatchStrategy.parse("All+SchemaM(Average,Both,Thr(0.5)+Delta(0.02),Average)")
        assert strategy.matcher_names() == tuple(EVALUATION_HYBRID_MATCHERS) + ("SchemaM",)
        assert strategy.to_spec().startswith("All+SchemaM(")

    def test_bare_matcher_uses_default_combination(self):
        strategy = MatchStrategy.parse("Name")
        assert strategy.matcher_names() == ("Name",)
        assert strategy.combination == default_combination()

    def test_library_validation(self):
        with pytest.raises(StrategyError):
            MatchStrategy.parse("NoSuchMatcher", library=DEFAULT_LIBRARY)
        # without a library, resolution is deferred to resolve_matchers
        deferred = MatchStrategy.parse("NoSuchMatcher")
        assert deferred.matcher_names() == ("NoSuchMatcher",)

    def test_malformed_specs_raise(self):
        for bad in ("", "  ", "(Average,Both,MaxN(1))", "All(Average,Both",
                    "All()", "Name++Leaves"):
            with pytest.raises(StrategyError):
                MatchStrategy.parse(bad)

    def test_instance_matchers_serialise_by_name(self):
        strategy = MatchStrategy(matchers=[NameMatcher()], name="custom")
        assert MatchStrategy.parse(strategy.to_spec()).matcher_names() == ("Name",)

    def test_table6_grid_round_trips(self):
        """Every strategy of the Table 6 evaluation grid survives parse(to_spec())."""
        grid = full_grid()
        assert len(grid) > 10_000  # the full enumeration, not the reduced one
        for series in grid:
            strategy = MatchStrategy(
                matchers=list(series.matchers),
                combination=CombinationStrategy(
                    aggregation=series.aggregation,
                    direction=series.direction,
                    selection=series.selection,
                    combined_similarity=combined_similarity_by_name(
                        series.combined_similarity
                    ),
                ),
            )
            spec = strategy.to_spec()
            assert MatchStrategy.parse(spec) == strategy, spec
            # the spec is stable: serialising the parsed strategy reproduces it
            assert MatchStrategy.parse(spec).to_spec() == spec


class TestStrategyDictForm:
    def test_round_trip_includes_feedback_flag(self):
        strategy = default_strategy().replaced(apply_feedback_overrides=False)
        data = strategy.to_dict()
        assert data["apply_feedback_overrides"] is False
        rebuilt = MatchStrategy.from_dict(data)
        assert rebuilt == strategy
        assert rebuilt.name == strategy.name

    def test_combination_as_spec_string(self):
        rebuilt = MatchStrategy.from_dict(
            {"matchers": ["Name"], "combination": "Max,Both,MaxN(1),Dice"}
        )
        assert str(rebuilt.combination.aggregation) == "Max"
        assert str(rebuilt.combination.combined_similarity) == "Dice"

    def test_invalid_dicts_raise(self):
        with pytest.raises(StrategyError):
            MatchStrategy.from_dict({"matchers": []})
        with pytest.raises(StrategyError):
            MatchStrategy.from_dict({"matchers": "Name"})  # a bare string, not a list
        with pytest.raises(StrategyError):
            MatchStrategy.from_dict({"matchers": [42]})
        with pytest.raises(StrategyError):
            MatchStrategy.from_dict({"matchers": ["Name"], "combination": 7})
        with pytest.raises(StrategyError):
            MatchStrategy.from_dict("not a mapping")


class TestReplaced:
    def test_apply_feedback_overrides_is_replaceable(self):
        strategy = default_strategy()
        assert strategy.apply_feedback_overrides is True
        disabled = strategy.replaced(apply_feedback_overrides=False)
        assert disabled.apply_feedback_overrides is False
        # the other fields are carried over unchanged
        assert disabled.matcher_names() == strategy.matcher_names()
        assert disabled.combination == strategy.combination
        # and the flag survives further copies that do not touch it
        assert disabled.replaced(name="x").apply_feedback_overrides is False

    def test_name_is_a_display_label_only(self):
        strategy = default_strategy()
        assert strategy.replaced(name="renamed") == strategy
