"""Tests for the hybrid matchers: Name, NamePath, TypeName, Children, Leaves."""

import pytest

from repro.combination.combined import DICE_COMBINED
from repro.matchers.hybrid.name import NameMatcher, NamePathMatcher
from repro.matchers.hybrid.structural import ChildrenMatcher, LeavesMatcher
from repro.matchers.hybrid.type_name import TypeNameMatcher
from repro.exceptions import MatcherError


class TestNameMatcher:
    def test_identical_names_score_one(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matcher = NameMatcher()
        matrix = matcher.compute(left.paths(), right.paths(), tiny_context)
        city = left.find_path("Left.ShipTo.shipToCity")
        target = right.find_path("Right.DeliverTo.Address.City")
        # token sets {ship,to,city} vs {city}: one perfect token match out of 4 tokens
        assert matrix.get(city, target) == pytest.approx(0.5)

    def test_synonym_tokens_boost_similarity(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matcher = NameMatcher()
        matrix = matcher.compute(left.paths(), right.paths(), tiny_context)
        ship = left.find_path("Left.ShipTo")
        deliver = right.find_path("Right.DeliverTo")
        # ship<->deliver via the synonym dictionary, to<->to literal
        assert matrix.get(ship, deliver) == pytest.approx(1.0)

    def test_dice_variant_is_at_least_average(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        average = NameMatcher().compute(left.paths(), right.paths(), tiny_context)
        dice = NameMatcher().with_combined_similarity(DICE_COMBINED).compute(
            left.paths(), right.paths(), tiny_context
        )
        assert (dice.values >= average.values - 1e-9).all()

    def test_requires_constituents(self):
        with pytest.raises(ValueError):
            NameMatcher(constituents=[])

    def test_values_within_bounds(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        matrix = NameMatcher().compute(left.paths(), right.paths(), tiny_context)
        assert matrix.values.min() >= 0.0
        assert matrix.values.max() <= 1.0


class TestNamePathMatcher:
    def test_path_context_distinguishes_shared_elements(self, po1, po2, figure1_context):
        matcher = NamePathMatcher()
        matrix = matcher.compute(po1.paths(), po2.paths(), figure1_context)
        ship_city = po1.find_path("PO1.ShipTo.shipToCity")
        deliver_city = po2.find_path("PO2.PO2.DeliverTo.Address.City")
        bill_city = po2.find_path("PO2.PO2.BillTo.Address.City")
        # The DeliverTo context shares the ship/deliver synonym; BillTo does not.
        assert matrix.get(ship_city, deliver_city) > matrix.get(ship_city, bill_city)

    def test_namepath_differs_from_name(self, po1, po2, figure1_context):
        name = NameMatcher().compute(po1.paths(), po2.paths(), figure1_context)
        name_path = NamePathMatcher().compute(po1.paths(), po2.paths(), figure1_context)
        assert (name.values != name_path.values).any()


class TestTypeNameMatcher:
    def test_weighted_combination(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        type_name = TypeNameMatcher()
        name_only = type_name.name_matcher
        type_matrix = type_name.datatype_matcher.compute(left.paths(), right.paths(), tiny_context)
        name_matrix = name_only.compute(left.paths(), right.paths(), tiny_context)
        combined = type_name.compute(left.paths(), right.paths(), tiny_context)
        city = left.find_path("Left.ShipTo.shipToCity")
        target = right.find_path("Right.DeliverTo.Address.City")
        expected = 0.7 * name_matrix.get(city, target) + 0.3 * type_matrix.get(city, target)
        assert combined.get(city, target) == pytest.approx(expected)

    def test_custom_weights_are_normalised(self):
        matcher = TypeNameMatcher(name_weight=2.0, type_weight=2.0)
        assert matcher.weights == (0.5, 0.5)

    def test_invalid_weights(self):
        with pytest.raises(MatcherError):
            TypeNameMatcher(name_weight=0.0, type_weight=0.0)
        with pytest.raises(MatcherError):
            TypeNameMatcher(name_weight=-1.0)

    def test_with_combined_similarity_returns_new_matcher(self):
        matcher = TypeNameMatcher()
        dice_variant = matcher.with_combined_similarity(DICE_COMBINED)
        assert dice_variant is not matcher
        assert dice_variant.weights == matcher.weights


class TestStructuralMatchers:
    def test_leaves_finds_structural_conflict_correspondence(self, po1, po2, figure1_context):
        """The paper's Figure 1 example: Leaves relates ShipTo to DeliverTo, Children favours Address."""
        ship_to = po1.find_path("PO1.ShipTo")
        deliver_to = po2.find_path("PO2.PO2.DeliverTo")
        address_under_deliver = po2.find_path("PO2.PO2.DeliverTo.Address")
        leaves = LeavesMatcher().compute(po1.paths(), po2.paths(), figure1_context)
        children = ChildrenMatcher().compute(po1.paths(), po2.paths(), figure1_context)
        # Leaves sees the same leaf set below DeliverTo and below Address, so
        # ShipTo <-> DeliverTo is as similar as ShipTo <-> Address.
        assert leaves.get(ship_to, deliver_to) == pytest.approx(
            leaves.get(ship_to, address_under_deliver)
        )
        # Children can only relate ShipTo to Address (whose children are the leaves).
        assert children.get(ship_to, address_under_deliver) > children.get(ship_to, deliver_to)

    def test_leaf_pairs_use_leaf_matcher(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        leaves = LeavesMatcher()
        matrix = leaves.compute(left.paths(), right.paths(), tiny_context)
        type_name = leaves.leaf_matcher.compute(left.paths(), right.paths(), tiny_context)
        city = left.find_path("Left.ShipTo.shipToCity")
        target = right.find_path("Right.DeliverTo.Address.City")
        assert matrix.get(city, target) == pytest.approx(type_name.get(city, target))

    def test_children_recursion_bounds(self, po1, po2, figure1_context):
        matrix = ChildrenMatcher().compute(po1.paths(), po2.paths(), figure1_context)
        assert matrix.values.min() >= 0.0
        assert matrix.values.max() <= 1.0

    def test_with_combined_similarity(self, tiny_pair, tiny_context):
        left, right = tiny_pair
        dice = LeavesMatcher().with_combined_similarity(DICE_COMBINED)
        matrix = dice.compute(left.paths(), right.paths(), tiny_context)
        assert matrix.values.max() <= 1.0
        assert isinstance(dice, LeavesMatcher)
