"""Tests for the schema graph model (elements, links, paths, statistics)."""

import pytest

from repro.exceptions import CycleError, SchemaError, UnknownElementError
from repro.model.element import ElementKind, LinkKind
from repro.model.schema import Schema, schemas_by_size


def _linear_schema():
    schema = Schema("S")
    a = schema.add_element("A")
    b = schema.add_element("B", parent=a)
    c = schema.add_element("C", parent=b, source_type="int")
    return schema, a, b, c


class TestConstruction:
    def test_root_is_created_automatically(self):
        schema = Schema("Orders")
        assert schema.root.name == "Orders"
        assert schema.root.kind is ElementKind.SCHEMA

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("   ")

    def test_add_element_defaults_to_root_parent(self):
        schema = Schema("S")
        element = schema.add_element("A")
        assert schema.parents(element) == (schema.root,)

    def test_duplicate_containment_link_rejected(self):
        schema, a, b, _ = _linear_schema()
        with pytest.raises(SchemaError):
            schema.add_link(a, b)

    def test_cycle_detection(self):
        schema, a, b, c = _linear_schema()
        with pytest.raises(CycleError):
            schema.add_link(c, a)

    def test_self_cycle_detection(self):
        schema, a, _, _ = _linear_schema()
        with pytest.raises(CycleError):
            schema.add_link(a, a)

    def test_root_cannot_become_child(self):
        schema, a, _, _ = _linear_schema()
        with pytest.raises(CycleError):
            schema.add_link(a, schema.root)

    def test_foreign_element_rejected(self):
        schema = Schema("S")
        other = Schema("T")
        stranger = other.add_element("X")
        with pytest.raises(UnknownElementError):
            schema.add_link(schema.root, stranger)

    def test_reference_links_are_tracked_separately(self):
        schema, a, _, c = _linear_schema()
        schema.add_link(c, a, LinkKind.REFERENCE)
        assert len(schema.references()) == 1
        assert schema.references_from(c)[0].target is a
        # references do not create paths
        assert len(schema.paths()) == 3


class TestPaths:
    def test_paths_in_dfs_order(self):
        schema, a, b, c = _linear_schema()
        assert [p.dotted() for p in schema.paths()] == ["S.A", "S.A.B", "S.A.B.C"]

    def test_shared_fragment_yields_multiple_paths(self):
        schema = Schema("S")
        ship = schema.add_element("ShipTo")
        bill = schema.add_element("BillTo")
        address = schema.add_detached_element("Address")
        city = schema.add_element("City", parent=address)
        schema.add_link(ship, address)
        schema.add_link(bill, address)
        dotted = {p.dotted() for p in schema.paths()}
        assert "S.ShipTo.Address.City" in dotted
        assert "S.BillTo.Address.City" in dotted
        assert schema.is_shared(address)
        # 2 top elements + 2 * (Address + City) = 6 paths from 4 non-root nodes
        assert len(schema.paths()) == 6

    def test_leaf_and_inner_paths(self):
        schema, a, b, c = _linear_schema()
        assert [p.dotted() for p in schema.leaf_paths()] == ["S.A.B.C"]
        assert [p.dotted() for p in schema.inner_paths()] == ["S.A", "S.A.B"]

    def test_find_path_accepts_with_and_without_root(self):
        schema, *_ = _linear_schema()
        assert schema.find_path("S.A.B.C").name == "C"
        assert schema.find_path("A.B.C").name == "C"
        with pytest.raises(UnknownElementError):
            schema.find_path("A.X")

    def test_child_and_descendant_paths(self):
        schema, a, b, c = _linear_schema()
        top = schema.find_path("S.A")
        assert [p.dotted() for p in schema.child_paths(top)] == ["S.A.B"]
        assert [p.dotted() for p in schema.descendant_paths(top)] == ["S.A.B", "S.A.B.C"]
        assert [p.dotted() for p in schema.leaf_paths_under(top)] == ["S.A.B.C"]

    def test_paths_of_shared_element(self):
        schema = Schema("S")
        x = schema.add_element("X")
        y = schema.add_element("Y")
        shared = schema.add_detached_element("Z")
        schema.add_link(x, shared)
        schema.add_link(y, shared)
        assert len(schema.paths_of(shared)) == 2

    def test_contains_protocol(self):
        schema, a, *_ = _linear_schema()
        assert a in schema
        assert "S.A.B" in schema
        assert "S.Nope" not in schema


class TestStatistics:
    def test_statistics_of_linear_schema(self):
        schema, *_ = _linear_schema()
        statistics = schema.statistics()
        assert statistics.node_count == 3
        assert statistics.path_count == 3
        assert statistics.inner_node_count == 2
        assert statistics.leaf_node_count == 1
        assert statistics.max_depth == 3

    def test_statistics_count_shared_nodes_once(self):
        schema = Schema("S")
        x = schema.add_element("X")
        y = schema.add_element("Y")
        shared = schema.add_detached_element("Z")
        schema.add_link(x, shared)
        schema.add_link(y, shared)
        statistics = schema.statistics()
        assert statistics.node_count == 3
        assert statistics.path_count == 4
        assert statistics.leaf_node_count == 1
        assert statistics.leaf_path_count == 2

    def test_schemas_by_size(self):
        small, *_ = _linear_schema()
        large = Schema("L")
        for index in range(5):
            large.add_element(f"E{index}")
        bigger, smaller = schemas_by_size(small, large)
        assert bigger is large and smaller is small
        bigger, smaller = schemas_by_size(large, small)
        assert bigger is large and smaller is small
