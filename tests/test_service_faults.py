"""Fault injection against the async front-end: misbehaving clients and load.

The differential suite proves the happy paths are byte-identical; this suite
proves the async front-end *fails* the way it promises to:

* a slow-loris client (drip-feeding a request head or body forever) is
  answered 408 and dropped within the read timeout, never pinning the loop;
* malformed request lines / invalid JSON / oversized bodies get clean 4xx
  JSON answers (and recoverable ones keep the connection alive);
* a saturated dispatch queue answers ``429`` + ``Retry-After`` immediately
  instead of queueing unbounded work, and a draining server answers 503;
* pipelined requests are answered strictly in order;
* a client that disconnects mid-event-stream gets its
  ``cancel_on_disconnect`` job cancelled -- and the worker shard the job was
  using is reaped back into the pool's free-list (no leak);
* handler exceptions never leak a pool shard (the free-list invariant holds
  after 100 raising requests).
"""

from __future__ import annotations

import http.client
import json
import socket
import struct
import threading
import time

import pytest

from repro.datasets.figure1 import PO1_DDL, PO2_XSD
from repro.exceptions import ServiceError
from repro.service import ServiceClient, SessionPool, create_async_server
from repro.service.server import MAX_BODY_BYTES


def _start(read_timeout=30.0, max_queue=64, **service_kwargs):
    server = create_async_server(
        port=0, read_timeout=read_timeout, max_queue=max_queue, **service_kwargs
    )
    thread = server.run_in_thread()
    return server, thread


def _stop(server, thread):
    server.request_shutdown()
    thread.join(timeout=10)


def _connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _read_response(sock: socket.socket) -> tuple:
    """One (status, headers, body) parsed off a raw socket."""
    response = http.client.HTTPResponse(sock)
    response.begin()
    body = response.read()
    return response.status, dict(response.getheaders()), body


class TestSlowLoris:
    def test_stalled_request_head_is_answered_408_and_dropped(self):
        server, thread = _start(read_timeout=0.5, pool_size=1)
        try:
            sock = _connect(server.port)
            sock.sendall(b"GET /health HT")  # ...and then never finish
            status, _, body = _read_response(sock)
            assert status == 408
            assert b"slow client or stalled request" in body
            assert sock.recv(64) == b""  # server closed the connection
            sock.close()
        finally:
            _stop(server, thread)

    def test_stalled_request_body_is_answered_408(self):
        server, thread = _start(read_timeout=0.5, pool_size=1)
        try:
            sock = _connect(server.port)
            sock.sendall(
                b"POST /match HTTP/1.1\r\nContent-Length: 50\r\n"
                b"Content-Type: application/json\r\n\r\n{\"so"
            )
            status, _, body = _read_response(sock)
            assert status == 408
            assert b"request body" in body
            sock.close()
        finally:
            _stop(server, thread)

    def test_a_stalled_connection_does_not_block_other_clients(self):
        server, thread = _start(read_timeout=5.0, pool_size=1)
        try:
            stalled = _connect(server.port)
            stalled.sendall(b"GET /heal")  # parked mid-request-line
            client = ServiceClient(server.url)
            start = time.monotonic()
            assert client.health()["status"] == "ok"
            assert time.monotonic() - start < 2.0  # served while one stalls
            stalled.close()
            client.close()
        finally:
            _stop(server, thread)


class TestMalformedInput:
    def test_garbage_request_line_is_a_400(self):
        server, thread = _start(pool_size=1)
        try:
            sock = _connect(server.port)
            sock.sendall(b"NONSENSE\r\n\r\n")
            status, _, body = _read_response(sock)
            assert status == 400
            assert b"malformed" in body
            sock.close()
        finally:
            _stop(server, thread)

    def test_invalid_json_body_is_a_400_and_keeps_the_connection(self):
        server, thread = _start(pool_size=1)
        try:
            sock = _connect(server.port)
            bad = b"{not json"
            sock.sendall(
                b"POST /match HTTP/1.1\r\n"
                + b"Content-Length: %d\r\n\r\n" % len(bad) + bad
            )
            status, headers, body = _read_response(sock)
            assert status == 400
            assert b"not valid JSON" in body
            assert headers["Connection"] == "keep-alive"
            # The same connection still serves the next (valid) request.
            sock.sendall(b"GET /health HTTP/1.1\r\n\r\n")
            status, _, body = _read_response(sock)
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            sock.close()
        finally:
            _stop(server, thread)

    def test_oversized_body_is_a_413_without_reading_it(self):
        server, thread = _start(pool_size=1)
        try:
            sock = _connect(server.port)
            declared = 5 * MAX_BODY_BYTES  # over the drain threshold: cut off
            sock.sendall(
                b"POST /schemas HTTP/1.1\r\n"
                + b"Content-Length: %d\r\n\r\n" % declared
            )
            status, headers, body = _read_response(sock)
            assert status == 413
            assert str(MAX_BODY_BYTES).encode() in body
            assert headers["Connection"] == "close"
            sock.close()
        finally:
            _stop(server, thread)

    def test_negative_content_length_is_a_400(self):
        server, thread = _start(pool_size=1)
        try:
            sock = _connect(server.port)
            sock.sendall(b"POST /match HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
            status, _, body = _read_response(sock)
            assert status == 400
            assert b"Content-Length" in body
            sock.close()
        finally:
            _stop(server, thread)

    def test_chunked_request_bodies_are_refused_with_411(self):
        server, thread = _start(pool_size=1)
        try:
            sock = _connect(server.port)
            sock.sendall(
                b"POST /match HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
            status, _, body = _read_response(sock)
            assert status == 411
            sock.close()
        finally:
            _stop(server, thread)


class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after_immediately(self):
        server, thread = _start(max_queue=3, pool_size=1)
        release = threading.Event()
        original = server.service.handle_request

        def blocking(method, path, payload=None):
            if path.rstrip("/") == "/block":
                release.wait(timeout=30)
                return 200, {"blocked": True}
            return original(method, path, payload)

        server.service.handle_request = blocking
        try:
            # Saturate every admission slot with parked requests.
            def park():
                sock = _connect(server.port)
                sock.sendall(b"GET /block HTTP/1.1\r\n\r\n")
                return sock

            parked = [park() for _ in range(3)]
            deadline = time.monotonic() + 10
            while server._in_flight < 3:
                assert time.monotonic() < deadline, "requests never admitted"
                time.sleep(0.01)

            # The next request must be rejected *now*, not queued.
            start = time.monotonic()
            sock = _connect(server.port)
            sock.sendall(b"GET /health HTTP/1.1\r\n\r\n")
            status, headers, body = _read_response(sock)
            elapsed = time.monotonic() - start
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert b"at capacity" in body
            assert elapsed < 2.0  # rejected immediately, not after the stall
            # 429 keeps the keep-alive connection usable for the retry.
            assert headers["Connection"] == "keep-alive"

            release.set()
            for parked_sock in parked:  # the admitted requests all complete
                status, _, body = _read_response(parked_sock)
                assert status == 200 and json.loads(body)["blocked"]
                parked_sock.close()
            sock.sendall(b"GET /health HTTP/1.1\r\n\r\n")  # the retry succeeds
            status, _, _ = _read_response(sock)
            assert status == 200
            sock.close()
            assert server._rejected_429 >= 1
        finally:
            release.set()
            server.service.handle_request = original
            _stop(server, thread)

    def test_draining_server_answers_503_and_closes(self):
        server, thread = _start(pool_size=1)
        try:
            sock = _connect(server.port)  # established before the drain
            server._draining = True  # what close() flips first during shutdown
            sock.sendall(b"GET /health HTTP/1.1\r\n\r\n")
            status, headers, body = _read_response(sock)
            assert status == 503
            assert b"draining" in body
            assert headers["Connection"] == "close"
            sock.close()
            assert server._rejected_503 >= 1
        finally:
            server._draining = False
            _stop(server, thread)


class TestPipelining:
    def test_pipelined_requests_are_answered_strictly_in_order(self):
        server, thread = _start(pool_size=2)
        try:
            sock = _connect(server.port)
            sock.sendall(
                b"GET /health HTTP/1.1\r\n\r\n"
                b"GET /stats HTTP/1.1\r\n\r\n"
                b"GET /schemas HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
            first = _read_response(sock)
            second = _read_response(sock)
            third = _read_response(sock)
            assert json.loads(first[2])["status"] == "ok"
            assert "uptime_seconds" in json.loads(second[2])
            assert json.loads(third[2]) == {"schemas": []}
            assert third[1]["Connection"] == "close"
            sock.close()
        finally:
            _stop(server, thread)


class TestDisconnectReapsJobs:
    def test_mid_stream_disconnect_cancels_the_job_without_leaking_a_shard(self):
        server, thread = _start(pool_size=1)
        service = server.service
        pool = service.pool
        slow_original = pool.match_many

        def slow_match_many(items):
            time.sleep(0.15)  # stretch each chunk so the stream outlives us
            return slow_original(items)

        pool.match_many = slow_match_many
        try:
            client = ServiceClient(server.url)
            client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
            client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
            job = client.submit_job(
                requests=[{"source": "PO1", "target": "PO2"}] * 200,
                chunk_size=1, cancel_on_disconnect=True,
            )

            sock = _connect(server.port)
            sock.sendall(
                f"GET /jobs/{job['job']}/events HTTP/1.1\r\n\r\n".encode()
            )
            head = sock.recv(4096)  # the 200 + at least the accepted event
            assert b"200 OK" in head
            # Hard disconnect: SO_LINGER(on, 0) turns close() into a RST,
            # which is what a crashed consumer looks like to the server.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()

            final = client.wait_job(job["job"], timeout=30.0)
            assert final["state"] == "cancelled"
            assert final["done"] < final["total"]  # stopped mid-campaign

            # The reap invariant: no shard left checked out by the dead job.
            deadline = time.monotonic() + 10
            while pool.idle != pool.size:
                assert time.monotonic() < deadline, (
                    f"leaked a shard: idle={pool.idle} size={pool.size}"
                )
                time.sleep(0.05)
            # ...and the pool still serves new work.
            assert client.match("PO1", "PO2")["correspondences"]
            client.close()
        finally:
            pool.match_many = slow_original
            _stop(server, thread)

    def test_disconnect_leaves_jobs_without_the_flag_running(self):
        server, thread = _start(pool_size=1)
        try:
            client = ServiceClient(server.url)
            client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
            client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
            job = client.submit_job(
                requests=[{"source": "PO1", "target": "PO2"}] * 6,
                chunk_size=2,  # default cancel_on_disconnect=False
            )
            sock = _connect(server.port)
            sock.sendall(
                f"GET /jobs/{job['job']}/events HTTP/1.1\r\n\r\n".encode()
            )
            assert b"200 OK" in sock.recv(4096)
            sock.close()  # polite FIN, job must keep running
            final = client.wait_job(job["job"], timeout=60.0)
            assert final["state"] == "done"
            assert final["done"] == 6
            client.close()
        finally:
            _stop(server, thread)


class TestShardLeakOnHandlerExceptions:
    def test_pool_free_list_survives_raising_sessions(self):
        pool = SessionPool(size=2)

        class Boom(RuntimeError):
            pass

        failures = 0
        for _ in range(100):
            try:
                with pool.session():
                    raise Boom("handler blew up mid-request")
            except Boom:
                failures += 1
        assert failures == 100
        assert pool.idle == pool.size  # every shard released despite the raise

    def test_100_raising_requests_leave_the_service_pool_intact(self):
        server, thread = _start(pool_size=2, max_queue=8)
        service = server.service
        pool = service.pool
        try:
            client = ServiceClient(server.url)
            client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
            client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")

            # Every shard's match() raises mid-request from now on.
            broken = []
            for session in pool.sessions:
                broken.append((session, session.match))

                def exploding(*args, _s=session, **kwargs):
                    raise RuntimeError("injected session failure")

                session.match = exploding
            try:
                for _ in range(100):
                    with pytest.raises(ServiceError) as failure:
                        client.match("PO1", "PO2")
                    assert failure.value.status == 500
            finally:
                for session, original in broken:
                    session.match = original

            assert pool.idle == pool.size  # the free-list invariant
            # And the service still works with the sessions restored.
            assert client.match("PO1", "PO2")["correspondences"]
            client.close()
        finally:
            _stop(server, thread)
