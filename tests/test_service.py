"""Tests for the HTTP match service: pool, endpoints, client, concurrency."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets.figure1 import PO1_DDL, PO2_XSD, load_po1, load_po2
from repro.exceptions import ServiceError
from repro.service import MatchService, ServiceClient, SessionPool, create_server
from repro.session import MatchSession

#: Cacheable strategies exercising different combination tuples.
SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "All(Max,Both,Thr(0.5)+MaxN(1),Average)",
    "Name+Leaves(Average,Both,Thr(0.6),Dice)",
)


def _rows(result: dict):
    return [
        (row["source"], row["target"], row["similarity"])
        for row in result["correspondences"]
    ]


def _expected_rows(source, target, strategy=None):
    outcome = MatchSession().match(source, target, strategy=strategy)
    return [
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    ]


@pytest.fixture(scope="module")
def service_client():
    """A running server (ephemeral port) + client, shut down after the module."""
    server = create_server(port=0, pool_size=3)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)
    client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
    client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
    yield client
    client.shutdown()
    thread.join(timeout=10)
    server.server_close()


class TestSessionPool:
    def test_round_robin_acquisition(self):
        pool = SessionPool(size=2)
        with pool.session() as first:
            with pool.session() as second:
                assert first is not second  # busy shard is skipped

    def test_size_validation(self):
        with pytest.raises(ServiceError):
            SessionPool(size=0)

    def test_cache_info_aggregates(self):
        pool = SessionPool(size=2)
        a, b = load_po1(), load_po2()
        with pool.session() as session:
            session.match(a, b)
        info = pool.cache_info()
        assert info["cube_misses"] == 1
        assert len(info["shards"]) == 2
        pool.clear_caches()
        assert pool.cache_info()["profiles"] == 0

    def test_blocks_when_all_busy(self):
        pool = SessionPool(size=1)
        entered = threading.Event()
        release = threading.Event()
        order = []

        def hold():
            with pool.session():
                entered.set()
                release.wait(timeout=10)
                order.append("first")

        holder = threading.Thread(target=hold)
        holder.start()
        assert entered.wait(timeout=10)

        def wait_for_shard():
            with pool.session():
                order.append("second")

        waiter = threading.Thread(target=wait_for_shard)
        waiter.start()
        release.set()
        holder.join(timeout=10)
        waiter.join(timeout=10)
        assert order == ["first", "second"]


class TestSchemaEndpoints:
    def test_health(self, service_client):
        payload = service_client.health()
        assert payload["status"] == "ok"
        assert payload["pool_size"] == 3
        assert payload["schemas"] >= 2

    def test_list_and_details(self, service_client):
        names = [entry["name"] for entry in service_client.schemas()]
        assert "PO1" in names and "PO2" in names
        details = service_client.schema("PO1")
        assert details["paths"] == len(load_po1().paths())
        assert details["statistics"]["max_depth"] >= 2

    def test_upload_dict_spec_and_delete(self, service_client):
        created = service_client.upload_schema(
            spec={"name": "Tiny", "elements": [{"name": "City"}, {"name": "Street"}]}
        )
        assert created == {**created, "name": "Tiny", "paths": 2, "replaced": False}
        replaced = service_client.upload_schema(
            spec={"name": "Tiny", "elements": [{"name": "City"}]}
        )
        assert replaced["replaced"] is True
        assert service_client.delete_schema("Tiny") == {"deleted": "Tiny"}
        with pytest.raises(ServiceError) as error:
            service_client.schema("Tiny")
        assert error.value.status == 404

    def test_upload_validation(self, service_client):
        with pytest.raises(ServiceError) as error:
            service_client.upload_schema(name="X", text="CREATE TABLE t (a INT);")
        assert error.value.status == 400  # no format given
        with pytest.raises(ServiceError):
            service_client.upload_schema(name="X", text="not sql at all", format="nope")
        with pytest.raises(ServiceError):
            service_client.upload_schema(name="X", spec={"name": "X", "elements": []})

    def test_unknown_routes(self, service_client):
        with pytest.raises(ServiceError) as error:
            service_client.request("GET", "/bogus")
        assert error.value.status == 404
        with pytest.raises(ServiceError) as error:
            service_client.request("DELETE", "/match")
        assert error.value.status == 405


class TestMatchEndpoints:
    def test_match_equals_direct_session(self, service_client):
        result = service_client.match("PO1", "PO2")
        assert _rows(result) == _expected_rows(load_po1(), load_po2())
        assert result["strategy"] == "All(Average,Both,Thr(0.5)+Delta(0.02,rel),Average)"
        assert 0.0 <= result["schema_similarity"] <= 1.0

    def test_match_with_spec_and_min_similarity(self, service_client):
        everything = service_client.match("PO1", "PO2", strategy=SPECS[1])
        filtered = service_client.match(
            "PO1", "PO2", strategy=SPECS[1], min_similarity=0.7
        )
        assert set(_rows(filtered)) <= set(_rows(everything))
        assert all(row[2] >= 0.7 for row in _rows(filtered))

    def test_match_unknown_schema(self, service_client):
        with pytest.raises(ServiceError) as error:
            service_client.match("PO1", "Missing")
        assert error.value.status == 404
        assert "known schemas" in str(error.value)

    def test_batch_matches_per_request_strategy(self, service_client):
        results = service_client.match_batch(
            [
                {"source": "PO1", "target": "PO2"},
                {"source": "PO1", "target": "PO2", "strategy": SPECS[2]},
            ],
            strategy=SPECS[1],
        )
        assert len(results) == 2
        assert results[0]["strategy"] == "All(Max,Both,Thr(0.5)+MaxN(1),Average)"
        assert results[1]["strategy"] == "Name+Leaves(Average,Both,Thr(0.6),Dice)"
        expected = _expected_rows(load_po1(), load_po2(), strategy=SPECS[2])
        assert _rows(results[1]) == expected

    def test_batch_min_similarity(self, service_client):
        # Default-strategy PO1/PO2 similarities span ~0.630-0.641, so 0.639
        # filters some rows but not all.
        unfiltered = service_client.match_batch([{"source": "PO1", "target": "PO2"}])
        filtered = service_client.match_batch(
            [{"source": "PO1", "target": "PO2"}], min_similarity=0.639
        )
        assert 0 < len(filtered[0]["correspondences"]) < len(
            unfiltered[0]["correspondences"]
        )
        assert all(r["similarity"] >= 0.639 for r in filtered[0]["correspondences"])
        # a per-entry threshold overrides the batch-level one
        overridden = service_client.match_batch(
            [{"source": "PO1", "target": "PO2", "min_similarity": 0.0}],
            min_similarity=0.99,
        )
        assert _rows(overridden[0]) == _rows(unfiltered[0])

    def test_batch_validation(self, service_client):
        with pytest.raises(ServiceError) as error:
            service_client.request("POST", "/match/batch", {"requests": "nope"})
        assert error.value.status == 400

    def test_batch_validation_reports_every_invalid_entry_with_its_index(
        self, service_client
    ):
        """The 400 payload pins ALL invalid pairs, not just the first.

        Contract: ``{"error": <summary>, "invalid": [{"index": i, "error":
        <reason>}, ...]}`` with one entry per bad request, in index order --
        a client fixing a large campaign must not need one round trip per
        mistake.
        """
        with pytest.raises(ServiceError) as error:
            service_client.match_batch([
                {"source": "PO1", "target": "PO2"},          # 0: valid
                {"source": "PO1", "target": "MISSING"},      # 1: unknown schema
                {"target": "PO2"},                           # 2: no source
                {"source": "PO1", "target": "PO2",
                 "strategy": "Bogus("},                      # 3: bad strategy
                "not-even-an-object",                        # 4: wrong type
            ])
        assert error.value.status == 400
        assert "4 of 5 batch requests are invalid" in str(error.value)
        invalid = error.value.details["invalid"]
        assert [entry["index"] for entry in invalid] == [1, 2, 3, 4]
        assert all(entry["error"] for entry in invalid)
        assert "MISSING" in invalid[0]["error"]
        assert "source" in invalid[1]["error"]


class TestStrategyEndpoints:
    def test_crud_round_trip(self, service_client):
        created = service_client.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
        assert created == {
            "name": "tuned", "spec": "All(Max,Both,Thr(0.6),Dice)", "replaced": False,
        }
        assert {"name": "tuned", "spec": "All(Max,Both,Thr(0.6),Dice)"} in (
            service_client.strategies()
        )
        document = service_client.strategy("tuned")["document"]
        assert document["matchers"] == ["Name", "NamePath", "TypeName", "Children", "Leaves"]

        by_name = service_client.match("PO1", "PO2", strategy="tuned")
        direct = service_client.match("PO1", "PO2", strategy="All(Max,Both,Thr(0.6),Dice)")
        assert _rows(by_name) == _rows(direct)

        replaced = service_client.save_strategy("tuned", SPECS[0])
        assert replaced["replaced"] is True
        assert service_client.delete_strategy("tuned") == {"deleted": "tuned"}
        with pytest.raises(ServiceError) as error:
            service_client.match("PO1", "PO2", strategy="tuned")
        assert error.value.status == 404

    def test_spec_shaped_name_is_not_a_stored_strategy(self, service_client):
        """GET /strategies/{name} is a stored-name lookup, not a spec parser."""
        with pytest.raises(ServiceError) as error:
            service_client.strategy("Name(Max,Both,MaxN(1),Dice)")
        assert error.value.status == 404

    def test_names_with_special_characters_round_trip(self, service_client):
        service_client.upload_schema(
            spec={"name": "My Schema #1", "elements": [{"name": "City"}]}
        )
        assert service_client.schema("My Schema #1")["paths"] == 1
        service_client.save_strategy("tuned v2", "All(Max,Both,Thr(0.6),Dice)")
        assert service_client.strategy("tuned v2")["name"] == "tuned v2"
        assert service_client.delete_strategy("tuned v2") == {"deleted": "tuned v2"}
        assert service_client.delete_schema("My Schema #1") == {
            "deleted": "My Schema #1"
        }

    def test_validation(self, service_client):
        with pytest.raises(ServiceError) as error:
            service_client.save_strategy("bad(name)", "All")
        assert error.value.status == 400
        with pytest.raises(ServiceError) as error:
            service_client.save_strategy("ok", "NotAMatcher(Max,Both,Thr(0.5))")
        assert error.value.status == 400
        with pytest.raises(ServiceError) as error:
            service_client.delete_strategy("never-stored")
        assert error.value.status == 404


class TestServiceRepository:
    def test_strategies_persist_through_repository(self, tmp_path):
        database = str(tmp_path / "service.db")
        first = MatchService(pool_size=1, repository_path=database)
        status, payload = first.handle_request(
            "POST", "/strategies", {"name": "tuned", "spec": "All(Max,Both,Thr(0.6),Dice)"}
        )
        assert (status, payload["name"]) == (201, "tuned")

        second = MatchService(pool_size=1, repository_path=database)
        status, payload = second.handle_request("GET", "/strategies/tuned", None)
        assert status == 200
        assert payload["spec"] == "All(Max,Both,Thr(0.6),Dice)"


class TestServiceConcurrency:
    def test_concurrent_matches_byte_identical(self, service_client):
        """Acceptance: service results under concurrent load == direct session."""
        po1, po2 = load_po1(), load_po2()
        expected = {
            spec: _expected_rows(po1, po2, strategy=spec) for spec in SPECS
        }
        work = [SPECS[i % len(SPECS)] for i in range(24)]

        def issue(spec):
            return spec, _rows(service_client.match("PO1", "PO2", strategy=spec))

        with ThreadPoolExecutor(max_workers=8) as executor:
            outcomes = list(executor.map(issue, work))
        assert len(outcomes) == len(work)
        for spec, rows in outcomes:
            assert rows == expected[spec], f"diverged under load for {spec}"

    def test_stats_counters_consistent_after_load(self, service_client):
        stats = service_client.stats()
        pool = stats["pool"]
        assert pool["cube_hits"] + pool["cube_misses"] >= len(SPECS)
        assert stats["requests"]["total"] >= stats["requests"]["by_route"].get("match", 0)
        assert len(pool["shards"]) == 3
