"""Mechanics of the process pool and its wire codec (scheduling, recovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.figure1 import load_po1, load_po2
from repro.exceptions import ServiceError
from repro.parallel import ProcessSessionPool, decode_frame, encode_frame
from repro.parallel.codec import MAGIC
from repro.session import MatchSession


@pytest.fixture(scope="module")
def pool():
    pool = ProcessSessionPool(size=2)
    yield pool
    pool.close()


class TestCodec:
    def test_frame_round_trip_preserves_header_and_buffer_bytes(self):
        stack = np.linspace(0.0, 1.0, 12).reshape(3, 4)
        frame = encode_frame({"kind": "x", "n": 3}, [b"raw", stack])
        header, buffers = decode_frame(frame)
        assert header == {"kind": "x", "n": 3}
        assert bytes(buffers[0]) == b"raw"
        assert np.frombuffer(buffers[1], dtype=np.float64).reshape(3, 4).tobytes() \
            == stack.tobytes()

    def test_bad_magic_is_rejected(self):
        frame = bytearray(encode_frame({"kind": "x"}))
        frame[:4] = b"NOPE"
        with pytest.raises(ServiceError):
            decode_frame(bytes(frame))
        assert MAGIC == b"CPF1"

    def test_truncated_frame_is_rejected(self):
        frame = encode_frame({"kind": "x"}, [b"0123456789"])
        with pytest.raises(ServiceError):
            decode_frame(frame[: len(frame) - 4])


class TestPoolMechanics:
    def test_size_validation(self):
        with pytest.raises(ServiceError):
            ProcessSessionPool(size=0)

    def test_remote_errors_surface_as_service_errors(self, pool):
        with pytest.raises(ServiceError) as excinfo:
            pool.match(load_po1(), load_po2(), strategy="NoSuchMatcher(Max,Both,Thr(0.5),Dice)")
        assert "worker" in str(excinfo.value)

    def test_request_tuple_validation(self, pool):
        with pytest.raises(ServiceError):
            pool.match_many([(load_po1(),)])

    def test_worker_death_is_recovered_by_respawn_and_replay(self):
        a, b = load_po1(), load_po2()
        with ProcessSessionPool(size=1) as lone:
            before = lone.match(a, b)
            old_pid = lone._workers[0].pid
            lone._workers[0].process.terminate()
            lone._workers[0].process.join(timeout=10)
            # The dead worker is respawned on first touch and the request
            # replayed there (schemas re-shipped transparently).
            after = lone.match(a, b)
            assert after.result.as_tuples() == before.result.as_tuples()
            assert lone._workers[0].pid != old_pid
            assert lone._workers[0].process.is_alive()

    def test_worker_stats_observe_and_heal_a_dead_worker(self, pool):
        victim = pool._workers[0]
        victim.process.terminate()
        victim.process.join(timeout=10)
        first = pool.worker_stats()  # touches every slot; the dead one respawns
        assert any(not shard.get("alive", True) for shard in first)
        second = pool.worker_stats()
        assert all(shard.get("alive", True) for shard in second)
        assert all(worker.process.is_alive() for worker in pool._workers)

    def test_worker_stats_and_cache_info_shapes(self, pool):
        pool.match(load_po1(), load_po2())
        info = pool.cache_info()
        assert info["backend"] == "process"
        assert len(info["shards"]) == 2 and len(info["workers"]) == 2
        for key in ("profiles", "cubes", "cube_hits", "cube_misses",
                    "store_hits", "store_misses"):
            assert key in info
        assert sum(worker["requests"] for worker in info["workers"]) >= 1

    def test_clear_caches_resets_worker_sessions(self, pool):
        pool.match(load_po1(), load_po2())
        pool.clear_caches()
        info = pool.cache_info()
        assert info["cubes"] == 0 and info["profiles"] == 0
        assert all(worker["schemas"] == 0 for worker in info["workers"])

    def test_batch_preserves_request_order(self, pool):
        a, b = load_po1(), load_po2()
        outcomes = pool.match_many([(a, b), (b, a), (a, b)])
        assert [o.context.source_schema.name for o in outcomes] == ["PO1", "PO2", "PO1"]

    def test_closed_pool_refuses_work(self):
        pool = ProcessSessionPool(size=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ServiceError):
            pool.match(load_po1(), load_po2())


class TestSchemaCacheEviction:
    def test_tiny_worker_cache_survives_chunks_larger_than_the_bound(self):
        from repro.datasets.generators import generate_pair

        pairs = [
            generate_pair(
                sections=1, fields_per_section=2, seed=seed,
                source_name=f"EvA{seed}", target_name=f"EvB{seed}",
            )
            for seed in range(4)
        ]
        with ProcessSessionPool(size=1, schema_cache_bound=2) as tiny:
            # One chunk references 8 distinct schemas -- four times the
            # worker-side bound; the worker must keep this frame's schemas
            # and evict only between frames.
            outcomes = tiny.match_many(
                [(pair.source, pair.target) for pair in pairs]
            )
            assert len(outcomes) == 4
            # The next single match trims the worker cache down to the bound;
            # replaying another pair afterwards hits schemas the parent
            # believes shipped but the worker evicted -- the unknown-schema
            # recovery round trip re-ships them transparently.
            first = tiny.match(pairs[0].source, pairs[0].target)
            second = tiny.match(pairs[1].source, pairs[1].target)
        assert first.result.as_tuples() == outcomes[0].result.as_tuples()
        assert second.result.as_tuples() == outcomes[1].result.as_tuples()


class TestStoreSeededWorkers:
    def test_workers_share_one_persistent_store(self, tmp_path):
        store_path = str(tmp_path / "store.db")
        a, b = load_po1(), load_po2()
        # First pool computes and persists; second pool starts warm.
        with ProcessSessionPool(size=1, store_path=store_path) as warm_up:
            first = warm_up.match(a, b)
            info = warm_up.cache_info()
            assert info["store_misses"] >= 1
        with ProcessSessionPool(size=1, store_path=store_path) as warm:
            second = warm.match(a, b)
            assert warm.cache_info()["store_hits"] >= 1
        assert first.cube.as_array().tobytes() == second.cube.as_array().tobytes()

    def test_ephemeral_session_fan_out_spawns_and_closes(self):
        a, b = load_po1(), load_po2()
        session = MatchSession()
        outcomes = session.match_many([(a, b)], processes=1)
        reference = MatchSession().match(a, b)
        assert outcomes[0].result.as_tuples() == reference.result.as_tuples()


class TestCompactDtypes:
    def test_dtype_options_are_validated(self):
        with pytest.raises(ServiceError):
            ProcessSessionPool(size=1, store_dtype="float16")
        with pytest.raises(ServiceError):
            ProcessSessionPool(size=1, wire_dtype="int8")

    def test_workers_write_the_configured_store_dtype(self, tmp_path):
        from repro.repository.store import SimilarityStore

        store_path = str(tmp_path / "compact.db")
        a, b = load_po1(), load_po2()
        with ProcessSessionPool(
            size=1, store_path=store_path, store_dtype="uint16"
        ) as pool:
            first = pool.match(a, b)
        with SimilarityStore(store_path, writer=False) as store:
            assert set(store.info()["cube_dtypes"]) == {"uint16"}
        # A second pool over the quantized store answers warm, and the
        # mapping-deciding floats agree exactly with the cold run (the cube
        # tier alone carries the tested quantization error).
        with ProcessSessionPool(
            size=1, store_path=store_path, store_dtype="uint16"
        ) as warm:
            second = warm.match(a, b)
            assert warm.cache_info()["store_hits"] >= 1
        assert [(s, t) for s, t, _ in second.result.as_tuples()] == \
            [(s, t) for s, t, _ in first.result.as_tuples()]
        for (_, _, got), (_, _, want) in zip(
            second.result.as_tuples(), first.result.as_tuples()
        ):
            assert abs(got - want) <= 1e-4
        error = np.max(np.abs(second.cube.as_array() - first.cube.as_array()))
        assert error <= 1e-4

    def test_compact_wire_dtype_round_trip(self):
        a, b = load_po1(), load_po2()
        reference = MatchSession().match(a, b)
        with ProcessSessionPool(size=1, wire_dtype="uint16") as pool:
            outcome = pool.match(a, b)
        # Correspondences and the aggregated matrix always travel float64.
        assert outcome.result.as_tuples() == reference.result.as_tuples()
        assert np.array_equal(
            outcome.aggregated.values, reference.aggregated.values
        )
        error = np.max(np.abs(outcome.cube.as_array() - reference.cube.as_array()))
        assert error <= 1e-4
