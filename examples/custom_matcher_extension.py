"""Extending the matcher library with a custom matcher and a custom strategy.

COMA is explicitly designed as an *extensible* platform: new matchers can be
registered in the library and combined with the existing ones.  This example
adds a documentation-based matcher (comparing free-text annotations with the
Trigram string matcher), registers it, and combines it with NamePath and the
Similarity Flooding baseline under a custom combination strategy.

Run with::

    python examples/custom_matcher_extension.py
"""

from __future__ import annotations

from repro import match
from repro.baselines.similarity_flooding import SimilarityFloodingMatcher
from repro.combination.matrix import SimilarityMatrix
from repro.combination.strategy import parse_combination
from repro.datasets.figure1 import figure1_reference_mapping, load_po1, load_po2
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_table
from repro.matchers.base import MatchContext, PairwiseMatcher
from repro.matchers.registry import default_library
from repro.matchers.string.ngram import TrigramMatcher
from repro.model.path import SchemaPath


class DocumentationMatcher(PairwiseMatcher):
    """Compares the free-text documentation of elements with Trigram similarity."""

    name = "Documentation"
    kind = "simple"

    def __init__(self):
        self._trigram = TrigramMatcher()

    def pair_similarity(self, source: SchemaPath, target: SchemaPath,
                        context: MatchContext) -> float:
        first = source.leaf.documentation or source.name
        second = target.leaf.documentation or target.name
        return self._trigram.similarity(first, second)

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return path.leaf.documentation or path.name


def main() -> None:
    po1, po2 = load_po1(), load_po2()
    reference = figure1_reference_mapping(po1, po2)

    library = default_library()
    library.register("Documentation", DocumentationMatcher, kind="simple",
                     schema_info="Element documentation")
    library.register("SimilarityFlooding", SimilarityFloodingMatcher, kind="baseline",
                     schema_info="Graph structure")

    combination = parse_combination("Average", "Both", "Thr(0.5)+Delta(0.02)")
    rows = []
    for label, matchers in [
        ("NamePath only", ["NamePath"]),
        ("SimilarityFlooding baseline", ["SimilarityFlooding"]),
        ("NamePath + Documentation + SF", ["NamePath", "Documentation", "SimilarityFlooding"]),
        ("All five hybrid matchers", None),
    ]:
        outcome = match(po1, po2, matchers=matchers, combination=combination, library=library)
        quality = evaluate_mapping(outcome.result, reference)
        rows.append({
            "strategy": label,
            "proposed": quality.predicted,
            "precision": quality.precision,
            "recall": quality.recall,
            "overall": quality.overall,
        })

    print(format_table(rows, title="Custom matchers combined through the COMA framework (PO1 <-> PO2)"))


if __name__ == "__main__":
    main()
