"""The match service round-trip: upload -> stored-strategy match -> stats.

Starts a local match service on an ephemeral port (in-process, the same
server ``coma serve`` runs), then drives it through the stdlib
:class:`~repro.service.client.ServiceClient`:

1. upload the Figure 1 schemas (relational DDL and XSD, through the regular
   importer registry),
2. store a named strategy and match by that name,
3. match the same pair again and read the cache counters off ``/stats`` --
   the second request is served from the warm session's cube cache.

Run with::

    PYTHONPATH=src python examples/service_client.py

Against an already-running server (``coma serve``), point ``ServiceClient``
at its URL instead of starting one here.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.figure1 import PO1_DDL, PO2_XSD  # noqa: E402
from repro.service import ServiceClient, create_server  # noqa: E402


def main() -> None:
    # pool_size=1 keeps every request on the same warm session, so the cache
    # effect in step 3 is visible; port 0 picks an ephemeral port.
    server = create_server(port=0, pool_size=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)
    print(f"service up at {server.url}: {client.health()['status']}")

    # 1. upload the Figure 1 schemas through the importer registry
    for name, text, format_name in (
        ("PO1", PO1_DDL, "sql"),
        ("PO2", PO2_XSD, "xsd"),
    ):
        uploaded = client.upload_schema(name=name, text=text, format=format_name)
        print(f"uploaded {uploaded['name']:4} ({format_name}): "
              f"{uploaded['paths']} paths")

    # 2. store a named strategy and match by name
    stored = client.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
    print(f"stored strategy {stored['name']!r}: {stored['spec']}")
    result = client.match("PO1", "PO2", strategy="tuned")
    print(f"\nPO1 <-> PO2 under {result['strategy']} "
          f"(schema similarity {result['schema_similarity']:.3f}):")
    for row in result["correspondences"]:
        print(f"  {row['source']:35} <-> {row['target']:35} {row['similarity']:.2f}")

    # 3. the same pair again: the pooled session serves it from its cube cache
    client.match("PO1", "PO2", strategy="tuned")
    pool = client.stats()["pool"]
    print(f"\npool caches after a repeat match: cube_hits={pool['cube_hits']} "
          f"cube_misses={pool['cube_misses']} profiles={pool['profiles']}")

    client.shutdown()
    thread.join(timeout=10)
    print("service stopped")


if __name__ == "__main__":
    main()
