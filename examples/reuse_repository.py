"""Reuse of previous match results through the repository (Section 5 of the paper).

The scenario: a data-warehouse team has already matched (and manually
confirmed) the CIDX and Noris purchase-order schemas against the Excel schema.
A new source arrives whose schema is CIDX-like and must be matched against
Noris.  Instead of matching from scratch, the Schema reuse matcher composes
the stored mappings via the shared Excel schema (MatchCompose) and combines
the result with the regular hybrid matchers.

Run with::

    python examples/reuse_repository.py
"""

from __future__ import annotations

from repro import Repository, match
from repro.datasets.gold_standard import load_task
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_table
from repro.matchers.reuse.schema_reuse import SchemaReuseMatcher


def main() -> None:
    task_13 = load_task(1, 3)        # the new match problem: CIDX <-> Noris
    task_12 = load_task(1, 2)        # previously matched: CIDX <-> Excel
    task_23 = load_task(2, 3)        # previously matched: Excel <-> Noris

    with Repository() as repository:
        # Store the schemas and the previously confirmed mappings.
        for schema in (task_13.source, task_12.target, task_13.target):
            repository.store_schema(schema)
        repository.store_mapping(task_12.reference, origin="manual", name="CIDX<->Excel (confirmed)")
        repository.store_mapping(task_23.reference, origin="manual", name="Excel<->Noris (confirmed)")

        # Baseline: match CIDX <-> Noris from scratch with the default strategy.
        no_reuse = match(task_13.source, task_13.target)
        no_reuse_quality = evaluate_mapping(no_reuse.result, task_13.reference)

        # Reuse: add the SchemaM matcher (composition of stored manual mappings).
        schema_m = SchemaReuseMatcher(origin="manual", name="SchemaM")
        with_reuse = match(
            task_13.source,
            task_13.target,
            matchers=["Name", "NamePath", "TypeName", "Children", "Leaves", schema_m],
            repository=repository,
        )
        reuse_quality = evaluate_mapping(with_reuse.result, task_13.reference)

        # Reuse only: how far does pure composition get?
        reuse_only = match(task_13.source, task_13.target, matchers=[schema_m],
                           repository=repository)
        reuse_only_quality = evaluate_mapping(reuse_only.result, task_13.reference)

    rows = [
        {"strategy": "All (no reuse)", "precision": no_reuse_quality.precision,
         "recall": no_reuse_quality.recall, "overall": no_reuse_quality.overall},
        {"strategy": "SchemaM only (pure reuse)", "precision": reuse_only_quality.precision,
         "recall": reuse_only_quality.recall, "overall": reuse_only_quality.overall},
        {"strategy": "All + SchemaM", "precision": reuse_quality.precision,
         "recall": reuse_quality.recall, "overall": reuse_quality.overall},
    ]
    print(format_table(rows, title="CIDX <-> Noris: value of reusing confirmed mappings"))
    print("\nReusing the two confirmed mappings via MatchCompose recovers most of the new "
          "mapping without re-matching from scratch - the paper's Section 5 insight.")


if __name__ == "__main__":
    main()
