"""Quickstart: match the paper's Figure 1 schemas with the default strategy.

Run with::

    python examples/quickstart.py

The example opens a :class:`~repro.session.session.MatchSession` (the
service-shaped public entry point owning the shared matcher library, engine
and caches), imports the relational PO1 schema and the XML PO2 schema (the
paper's running example), runs the default match operation (all five hybrid
matchers combined with Average / Both / Threshold(0.5)+Delta(0.02)), prints the
proposed mapping, and evaluates it against the intended correspondences.
"""

from __future__ import annotations

from repro import MatchSession
from repro.datasets.figure1 import figure1_reference_mapping, load_po1, load_po2
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_key_values, format_table


def main() -> None:
    po1 = load_po1()
    po2 = load_po2()
    print(f"PO1: {len(po1.paths())} paths, PO2: {len(po2.paths())} paths "
          f"(shared Address fragment creates multiple paths)\n")

    session = MatchSession()
    outcome = session.match(po1, po2)

    rows = [
        {
            "PO1 element": correspondence.source.dotted(),
            "PO2 element": correspondence.target.dotted(),
            "similarity": correspondence.similarity,
        }
        for correspondence in outcome.result
    ]
    print(format_table(rows, title="Proposed mapping (default strategy: All matchers)"))
    print()

    reference = figure1_reference_mapping(po1, po2)
    quality = evaluate_mapping(outcome.result, reference)
    print(format_key_values(
        [
            ("schema similarity", outcome.schema_similarity),
            ("precision", quality.precision),
            ("recall", quality.recall),
            ("overall", quality.overall),
        ],
        title="Quality against the intended Figure 1 correspondences",
    ))


if __name__ == "__main__":
    main()
