"""Interactive, iterative matching with user feedback (Section 3, Figure 2).

The example simulates the interactive mode of COMA: the first iteration runs
automatically; a (simulated) user then reviews the proposed candidates --
confirming the correct ones and rejecting false positives -- and a second
iteration is run.  Confirmed pairs keep similarity 1.0, rejected pairs are
suppressed, and the match quality improves accordingly.

Run with::

    python examples/interactive_feedback.py
"""

from __future__ import annotations

from repro import MatchProcessor
from repro.datasets.gold_standard import load_task
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_table


def main() -> None:
    task = load_task(2, 5)  # Excel <-> Apertum, a mid-sized task with shared fragments
    gold = task.reference.pair_set()
    processor = MatchProcessor(task.source, task.target)

    print(f"Interactive matching for task {task.name} "
          f"({task.source.name} <-> {task.target.name})\n")

    first = processor.run_iteration()
    before = evaluate_mapping(first.result, task.reference)

    # The "user" reviews the 15 most similar proposals of the first iteration.
    reviewed = sorted(first.result, key=lambda c: -c.similarity)[:15]
    accepted = rejected = 0
    for correspondence in reviewed:
        key = (correspondence.source.dotted(), correspondence.target.dotted())
        if key in gold:
            processor.accept(correspondence.source, correspondence.target)
            accepted += 1
        else:
            processor.reject(correspondence.source, correspondence.target)
            rejected += 1

    processor.run_iteration()
    after = evaluate_mapping(processor.current_result(), task.reference)

    rows = [
        {"iteration": "1 (automatic)", "precision": before.precision,
         "recall": before.recall, "overall": before.overall},
        {"iteration": f"2 (after {accepted} accepts / {rejected} rejects)",
         "precision": after.precision, "recall": after.recall, "overall": after.overall},
    ]
    print(format_table(rows, title="Match quality before and after user feedback"))
    print(f"\nStill awaiting review: {len(processor.pending_candidates())} proposed candidates.")


if __name__ == "__main__":
    main()
