"""Purchase-order message integration: compare match strategies on the test schemas.

The scenario from the paper's introduction: an integration developer must map
heterogeneous purchase-order message schemas onto each other.  The example
loads two of the bundled test schemas (the abbreviation-heavy CIDX and the
deeply nested Paragon), runs several match strategies -- single matchers, the
combination of all hybrid matchers, and a custom combination -- and compares
their quality against the gold standard.

Run with::

    python examples/purchase_order_integration.py
"""

from __future__ import annotations

from repro import match
from repro.combination.strategy import parse_combination
from repro.datasets.gold_standard import load_task
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_table


def evaluate_strategy(task, label, matchers=None, combination=None):
    """Run one strategy on a task and return its quality row."""
    outcome = match(task.source, task.target, matchers=matchers, combination=combination)
    quality = evaluate_mapping(outcome.result, task.reference)
    return {
        "strategy": label,
        "proposed": quality.predicted,
        "precision": quality.precision,
        "recall": quality.recall,
        "overall": quality.overall,
    }


def main() -> None:
    task = load_task(1, 4)  # CIDX <-> Paragon
    print(f"Match task {task.name}: {task.source.name} ({len(task.source.paths())} paths) "
          f"<-> {task.target.name} ({len(task.target.paths())} paths), "
          f"{task.match_count} real correspondences\n")

    rows = [
        evaluate_strategy(task, "Name (single)", matchers=["Name"]),
        evaluate_strategy(task, "NamePath (single)", matchers=["NamePath"]),
        evaluate_strategy(task, "Leaves (single)", matchers=["Leaves"]),
        evaluate_strategy(task, "NamePath+Leaves", matchers=["NamePath", "Leaves"]),
        evaluate_strategy(task, "All (default)"),
        evaluate_strategy(
            task,
            "All with Max aggregation + Max1",
            combination=parse_combination("Max", "Both", "Thr(0.5)+MaxN(1)"),
        ),
    ]
    print(format_table(rows, title="Strategy comparison on CIDX <-> Paragon"))
    print()

    best = max(rows, key=lambda row: row["overall"])
    print(f"Best strategy on this task: {best['strategy']} "
          f"(Overall {best['overall']:.2f}) - matcher combinations analyse element names, "
          "paths, data types and structure simultaneously, which is exactly the paper's point.")


if __name__ == "__main__":
    main()
