"""The match session: COMA as a long-lived service object.

The paper describes COMA as a *system*: schemas, similarity cubes, mappings
and strategies live in a repository and many match operations reuse them.  A
:class:`MatchSession` is the in-process embodiment of that idea -- a
service-shaped entry point constructed once with the shared resources every
operation needs (matcher library, batch engine, tokenizer, synonym dictionary,
type-compatibility table, optional feedback store and repository) and reused
across arbitrarily many operations:

* :meth:`~MatchSession.match` / :meth:`~MatchSession.match_many` run automatic
  match operations through the batch :class:`~repro.engine.engine.MatchEngine`,
* :meth:`~MatchSession.iterate` opens an interactive
  :class:`~repro.core.processor.MatchProcessor` on the session's resources,
* :meth:`~MatchSession.evaluate` spins up an
  :class:`~repro.evaluation.campaign.EvaluationCampaign` whose per-task
  contexts share the session caches,
* :meth:`~MatchSession.save_strategy` / :meth:`~MatchSession.load_strategy`
  manage named declarative strategy specs, persisted through the repository
  when one is attached.

Two cross-operation caches amortise work the stateless free functions redo on
every call:

* the **profile cache** shares each schema's
  :class:`~repro.engine.profiles.PathSetProfile` (tokenized names, n-gram
  sets, soundex codes, generic types) across all operations of the session --
  an all-pairs campaign over ``n`` schemas builds ``n`` profiles instead of
  ``n * (n - 1)``;
* the **cube cache** keeps the matcher-specific
  :class:`~repro.combination.cube.SimilarityCube` of each (schema pair,
  matcher usage), so re-matching a pair under a different combination
  strategy -- the paper's core workflow when tuning strategies (Section 3
  stores cubes in the repository for exactly this reason) -- skips matcher
  execution entirely and only re-runs the combination pipeline.

Cubes are cached only for deterministic matcher usages (simple and hybrid
library matchers referenced by name).  Strategies naming reuse matchers or
``UserFeedback``, or carrying pre-configured matcher instances, bypass the
cube cache because their results depend on state outside the cube key.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from repro.auxiliary.synonyms import SynonymDictionary, default_purchase_order_synonyms
from repro.combination.cube import SimilarityCube
from repro.core.match_operation import MatchOutcome, combine_cube
from repro.core.processor import MatchProcessor
from repro.core.strategy import MatchStrategy, default_strategy
from repro.engine.engine import DEFAULT_ENGINE, MatchEngine
from repro.engine.profiles import PathSetProfile
from repro.exceptions import SessionError, UnknownMatcherError
from repro.linguistic.tokenizer import NameTokenizer
from repro.matchers.base import MatchContext
from repro.matchers.registry import DEFAULT_LIBRARY, MatcherLibrary
from repro.matchers.simple.user_feedback import UserFeedbackStore
from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, TypeCompatibilityTable
from repro.model.path import SchemaPath
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.campaign import EvaluationCampaign
    from repro.repository.repository import Repository

#: How callers may reference a strategy: an object, a spec / stored name, or
#: ``None`` for the session default.
StrategyLike = Union[MatchStrategy, str, None]

#: One batch item: ``(source, target)`` or ``(source, target, strategy)``.
MatchRequest = Union[
    Tuple[Schema, Schema],
    Tuple[Schema, Schema, StrategyLike],
]

#: Matcher kinds whose similarity cubes are fully determined by the session's
#: shared resources (reuse matchers depend on mutable mapping stores and
#: ``UserFeedback`` on the feedback store, so their cubes are never cached).
_CACHEABLE_KINDS = frozenset({"simple", "hybrid"})

#: Sentinel distinguishing "no feedback override" from "explicitly no store".
_UNSET = object()


class MatchSession:
    """A long-lived match service owning the resources shared by all operations.

    Parameters
    ----------
    library:
        The matcher library strategies resolve their matcher names against
        (default: :data:`~repro.matchers.registry.DEFAULT_LIBRARY`).
    engine:
        The :class:`~repro.engine.engine.MatchEngine` executing matcher
        batches (default: the vectorized sequential engine).
    strategy:
        The default strategy of :meth:`match` / :meth:`match_many`; a
        :class:`~repro.core.strategy.MatchStrategy` or a spec string
        (default: the paper's default operation).
    tokenizer / synonyms / type_compatibility:
        The linguistic resources shared by every context the session builds
        (the type-compatibility table is copied per context; mutating the
        session's table reconfigures subsequently built contexts only).
    feedback:
        An optional session-wide user-feedback store applied to every
        operation (individual calls may override it).
    repository:
        An optional :class:`~repro.repository.repository.Repository` used by
        reuse matchers and for persisting named strategies.
    cache_cubes:
        Keep similarity cubes per (schema pair, matcher usage) so repeated
        matches of a pair (e.g. under different combination strategies) skip
        matcher execution.  Enabled by default.
    max_cached_cubes / max_cached_profiles:
        Bounds on the two caches (oldest entries are evicted first), keeping a
        long-lived session's memory finite under a stream of distinct schema
        pairs.  The defaults comfortably cover the bundled evaluation
        workloads; pass ``None`` for an unbounded cache.
    """

    #: Default cache bounds: enough for the all-pairs Figure 8 campaign with
    #: plenty of headroom, while keeping a serving session's memory finite.
    DEFAULT_MAX_CACHED_CUBES = 256
    DEFAULT_MAX_CACHED_PROFILES = 1024

    def __init__(
        self,
        library: Optional[MatcherLibrary] = None,
        engine: Optional[MatchEngine] = None,
        strategy: StrategyLike = None,
        tokenizer: Optional[NameTokenizer] = None,
        synonyms: Optional[SynonymDictionary] = None,
        type_compatibility: Optional[TypeCompatibilityTable] = None,
        feedback: Optional[UserFeedbackStore] = None,
        repository: Optional["Repository"] = None,
        cache_cubes: bool = True,
        max_cached_cubes: Optional[int] = DEFAULT_MAX_CACHED_CUBES,
        max_cached_profiles: Optional[int] = DEFAULT_MAX_CACHED_PROFILES,
    ):
        self._library = library if library is not None else DEFAULT_LIBRARY
        self._engine = engine if engine is not None else DEFAULT_ENGINE
        self._tokenizer = tokenizer if tokenizer is not None else NameTokenizer()
        self._synonyms = (
            synonyms if synonyms is not None else default_purchase_order_synonyms()
        )
        self._type_compatibility = (
            type_compatibility
            if type_compatibility is not None
            else DEFAULT_TYPE_COMPATIBILITY.copy()
        )
        self._feedback = feedback
        self._repository = repository
        self._cache_cubes = bool(cache_cubes)
        for bound, label in ((max_cached_cubes, "max_cached_cubes"),
                             (max_cached_profiles, "max_cached_profiles")):
            if bound is not None and bound < 1:
                raise SessionError(f"{label} must be >= 1 or None, got {bound}")
        self._max_cached_cubes = max_cached_cubes
        self._max_cached_profiles = max_cached_profiles
        self._profile_cache: Dict[Tuple[SchemaPath, ...], PathSetProfile] = {}
        self._cube_cache: Dict[tuple, SimilarityCube] = {}
        self._cube_hits = 0
        self._cube_misses = 0
        self._named_strategies: Dict[str, MatchStrategy] = {}
        # resolve_strategy needs library / repository / named registry in place,
        # and accepts the same references (object, spec or stored name) here as
        # every other strategy entry point.
        self._default_strategy = default_strategy()
        if strategy is not None:
            self._default_strategy = self.resolve_strategy(strategy)

    # -- shared resources ------------------------------------------------------

    @property
    def library(self) -> MatcherLibrary:
        """The matcher library strategies are resolved against."""
        return self._library

    @property
    def engine(self) -> MatchEngine:
        """The engine executing matcher batches."""
        return self._engine

    @property
    def repository(self) -> Optional["Repository"]:
        """The attached repository (``None`` for a repository-less session)."""
        return self._repository

    @property
    def feedback(self) -> Optional[UserFeedbackStore]:
        """The session-wide user-feedback store, if configured."""
        return self._feedback

    @property
    def default_strategy(self) -> MatchStrategy:
        """The strategy used when a call does not specify one."""
        return self._default_strategy

    def set_default_strategy(self, strategy: StrategyLike) -> MatchStrategy:
        """Replace the session's default strategy (object, spec or stored name)."""
        self._default_strategy = self.resolve_strategy(strategy)
        return self._default_strategy

    # -- contexts and profiles -------------------------------------------------

    def context_for(
        self, source: Schema, target: Schema, feedback: object = _UNSET
    ) -> MatchContext:
        """A match context over the session's shared resources.

        All contexts of one session share the same profile-cache dict, so
        path-set profiles are computed once per schema per session regardless
        of how many operations touch that schema.  The type-compatibility
        table is *copied* per context (preserving the per-operation isolation
        :class:`~repro.matchers.base.MatchContext` documents): customising one
        operation's table cannot leak into others, while reconfiguring the
        session's own table affects all subsequently built contexts.
        """
        return MatchContext(
            source_schema=source,
            target_schema=target,
            tokenizer=self._tokenizer,
            synonyms=self._synonyms,
            type_compatibility=self._type_compatibility.copy(),
            feedback=self._feedback if feedback is _UNSET else feedback,  # type: ignore[arg-type]
            repository=self._repository,
            profile_cache=self._profile_cache,
        )

    def profile_for(self, schema: Schema) -> PathSetProfile:
        """The (session-cached) path-set profile of a schema's full path set."""
        key = tuple(schema.paths())
        profile = self._profile_cache.get(key)
        if profile is None:
            profile = PathSetProfile(key, self._tokenizer)
            self._profile_cache[key] = profile
            self._trim_caches()
        return profile

    # -- strategies ------------------------------------------------------------

    def resolve_strategy(self, strategy: StrategyLike) -> MatchStrategy:
        """Resolve a strategy reference: ``None`` (session default), an object,
        a stored strategy name, or a declarative spec string."""
        if strategy is None:
            return self._default_strategy
        if isinstance(strategy, MatchStrategy):
            return strategy
        if isinstance(strategy, str):
            named = self._named_strategies.get(strategy)
            if named is not None:
                return named
            # Stored names never contain parentheses (save_strategy rejects
            # them), so full specs skip the per-call repository lookup.
            if (
                "(" not in strategy
                and self._repository is not None
                and self._repository.has_strategy(strategy)
            ):
                return self.load_strategy(strategy)
            return MatchStrategy.parse(strategy, library=self._library)
        raise SessionError(
            f"strategies must be MatchStrategy objects, spec strings or stored "
            f"names, got {strategy!r}"
        )

    def save_strategy(self, name: str, strategy: StrategyLike) -> MatchStrategy:
        """Register a named strategy, persisting it when a repository is attached."""
        if not name:
            raise SessionError("a named strategy needs a non-empty name")
        if "(" in name or ")" in name:
            raise SessionError(
                f"strategy names must not contain parentheses (got {name!r}); "
                f"they would be indistinguishable from spec strings"
            )
        resolved = self.resolve_strategy(strategy).replaced(name=name)
        # Persist first: a repository failure must not leave the name
        # resolvable in this session but absent from the shared store.
        if self._repository is not None:
            self._repository.store_strategy(name, resolved)
        self._named_strategies[name] = resolved
        return resolved

    def load_strategy(self, name: str) -> MatchStrategy:
        """A previously saved strategy, from the session or its repository."""
        named = self._named_strategies.get(name)
        if named is not None:
            return named
        if self._repository is not None and self._repository.has_strategy(name):
            loaded = self._repository.load_strategy(name, library=self._library)
            self._named_strategies[name] = loaded
            return loaded
        raise SessionError(f"no strategy named {name!r} in this session or its repository")

    def strategy_names(self) -> Tuple[str, ...]:
        """Names of all saved strategies (session-local and repository-persisted)."""
        names = set(self._named_strategies)
        if self._repository is not None:
            names.update(self._repository.strategy_names())
        return tuple(sorted(names))

    # -- match operations ------------------------------------------------------

    def match(
        self,
        source: Schema,
        target: Schema,
        strategy: StrategyLike = None,
        feedback: object = _UNSET,
    ) -> MatchOutcome:
        """Run one automatic match operation through the session's resources."""
        active = self.resolve_strategy(strategy)
        context = self.context_for(source, target, feedback=feedback)
        cube = self._execute(active, context)
        result, aggregated, schema_similarity = combine_cube(
            cube,
            active.combination,
            context,
            apply_feedback_overrides=active.apply_feedback_overrides,
        )
        return MatchOutcome(
            result=result,
            cube=cube,
            aggregated=aggregated,
            schema_similarity=schema_similarity,
            strategy=active,
            context=context,
        )

    def match_many(
        self,
        requests: Iterable[MatchRequest],
        strategy: StrategyLike = None,
    ) -> List[MatchOutcome]:
        """Run a batch of match operations, amortising the session caches.

        Each request is ``(source, target)`` or ``(source, target, strategy)``;
        a per-request strategy overrides the batch-level ``strategy`` argument.
        Path-set profiles are pre-built once per distinct schema, so an
        all-pairs fan-out (the Figure 8 campaign) derives each schema's
        profile exactly once for the whole batch.
        """
        items: List[Tuple[Schema, Schema, StrategyLike]] = []
        for request in requests:
            if len(request) == 2:
                items.append((request[0], request[1], strategy))
            elif len(request) == 3:
                # only None falls back to the batch strategy: a falsy spec such
                # as "" must fail loudly in resolve_strategy, not be replaced
                items.append(
                    (request[0], request[1],
                     request[2] if request[2] is not None else strategy)
                )
            else:
                raise SessionError(
                    f"match requests must be (source, target[, strategy]) tuples, "
                    f"got a tuple of length {len(request)}"
                )
        seen_schemas: set = set()
        for source, target, _ in items:
            for schema in (source, target):
                if id(schema) not in seen_schemas:
                    seen_schemas.add(id(schema))
                    self.profile_for(schema)
        return [
            self.match(source, target, strategy=item_strategy)
            for source, target, item_strategy in items
        ]

    def schema_similarity(
        self, source: Schema, target: Schema, strategy: StrategyLike = None
    ) -> float:
        """The combined schema similarity of one match operation (Figure 8)."""
        return self.match(source, target, strategy=strategy).schema_similarity

    # -- iterative / evaluation front-ends -------------------------------------

    def iterate(
        self,
        source: Schema,
        target: Schema,
        strategy: StrategyLike = None,
        feedback: Optional[UserFeedbackStore] = None,
    ) -> MatchProcessor:
        """An interactive :class:`~repro.core.processor.MatchProcessor` on this session.

        The processor gets its own feedback store unless the session (or the
        call) provides one, and its context shares the session's caches.
        """
        store = feedback
        if store is None:
            store = self._feedback if self._feedback is not None else UserFeedbackStore()
        context = self.context_for(source, target, feedback=store)
        return MatchProcessor(
            source,
            target,
            strategy=self.resolve_strategy(strategy),
            library=self._library,
            engine=self._engine,
            feedback=store,
            context=context,
        )

    def evaluate(self, tasks: Optional[Sequence] = None, **kwargs) -> "EvaluationCampaign":
        """An :class:`~repro.evaluation.campaign.EvaluationCampaign` on this session.

        Per-task contexts are built through :meth:`context_for`, so the
        campaign's matcher executions share the session's profile cache; extra
        keyword arguments are forwarded to the campaign constructor.
        """
        from repro.evaluation.campaign import EvaluationCampaign

        kwargs.setdefault("engine", self._engine)
        kwargs.setdefault("context_factory", self.context_for)
        return EvaluationCampaign(tasks=tasks, **kwargs)

    # -- cube execution and caches ---------------------------------------------

    def _cube_key(
        self, source: Schema, target: Schema, strategy: MatchStrategy
    ) -> Optional[tuple]:
        """The cache key of a match execution, or ``None`` when not cacheable."""
        if not self._cache_cubes:
            return None
        names: List[str] = []
        for reference in strategy.matchers:
            if not isinstance(reference, str):
                return None  # matcher instances may carry per-use state
            names.append(reference.strip().lower())
        try:
            infos = [self._library.info(name) for name in names]
        except UnknownMatcherError:
            return None  # let resolve_matchers raise the canonical error
        for info in infos:
            if info.kind not in _CACHEABLE_KINDS or info.name == "UserFeedback":
                return None
        return (source.paths(), target.paths(), tuple(names))

    def _execute(self, strategy: MatchStrategy, context: MatchContext) -> SimilarityCube:
        """Execute the strategy's matchers, serving repeats from the cube cache."""
        key = self._cube_key(context.source_schema, context.target_schema, strategy)
        if key is not None:
            cached = self._cube_cache.get(key)
            if cached is not None:
                self._cube_hits += 1
                return cached
        matchers = strategy.resolve_matchers(self._library)
        cube = self._engine.execute(matchers, context)
        if key is not None:
            self._cube_misses += 1
            self._cube_cache[key] = cube
        self._trim_caches()
        return cube

    def _trim_caches(self) -> None:
        """Evict oldest entries beyond the configured bounds (insertion order).

        Contexts insert profiles into the shared dict directly during matcher
        execution, so trimming runs after every execution as well as after
        explicit :meth:`profile_for` inserts.  Evicted entries are simply
        recomputed on next use.
        """
        if self._max_cached_cubes is not None:
            while len(self._cube_cache) > self._max_cached_cubes:
                self._cube_cache.pop(next(iter(self._cube_cache)))
        if self._max_cached_profiles is not None:
            while len(self._profile_cache) > self._max_cached_profiles:
                self._profile_cache.pop(next(iter(self._profile_cache)))

    def cache_info(self) -> Dict[str, int]:
        """Cache occupancy and hit counters (used by tests and the benchmark)."""
        return {
            "profiles": len(self._profile_cache),
            "cubes": len(self._cube_cache),
            "cube_hits": self._cube_hits,
            "cube_misses": self._cube_misses,
        }

    def clear_caches(self) -> None:
        """Drop all cached profiles and cubes (counters are kept).

        Call this after mutating a shared resource in place (synonym
        dictionary, type-compatibility table): cached cubes reflect the
        resources at execution time.
        """
        self._profile_cache.clear()
        self._cube_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"MatchSession(library={len(self._library)} matchers, "
            f"profiles={info['profiles']}, cubes={info['cubes']}, "
            f"repository={'attached' if self._repository is not None else 'none'})"
        )
