"""The match session: COMA as a long-lived service object.

The paper describes COMA as a *system*: schemas, similarity cubes, mappings
and strategies live in a repository and many match operations reuse them.  A
:class:`MatchSession` is the in-process embodiment of that idea -- a
service-shaped entry point constructed once with the shared resources every
operation needs (matcher library, batch engine, tokenizer, synonym dictionary,
type-compatibility table, optional feedback store and repository) and reused
across arbitrarily many operations:

* :meth:`~MatchSession.match` / :meth:`~MatchSession.match_many` run automatic
  match operations through the batch :class:`~repro.engine.engine.MatchEngine`,
* :meth:`~MatchSession.iterate` opens an interactive
  :class:`~repro.core.processor.MatchProcessor` on the session's resources,
* :meth:`~MatchSession.evaluate` spins up an
  :class:`~repro.evaluation.campaign.EvaluationCampaign` whose per-task
  contexts share the session caches,
* :meth:`~MatchSession.save_strategy` / :meth:`~MatchSession.load_strategy`
  manage named declarative strategy specs, persisted through the repository
  when one is attached.

Two cross-operation caches amortise work the stateless free functions redo on
every call:

* the **profile cache** shares each schema's
  :class:`~repro.engine.profiles.PathSetProfile` (tokenized names, n-gram
  sets, soundex codes, generic types) across all operations of the session --
  an all-pairs campaign over ``n`` schemas builds ``n`` profiles instead of
  ``n * (n - 1)``;
* the **cube cache** keeps the matcher-specific
  :class:`~repro.combination.cube.SimilarityCube` of each (schema pair,
  matcher usage), so re-matching a pair under a different combination
  strategy -- the paper's core workflow when tuning strategies (Section 3
  stores cubes in the repository for exactly this reason) -- skips matcher
  execution entirely and only re-runs the combination pipeline.

Cubes are cached only for deterministic matcher usages (simple and hybrid
library matchers referenced by name).  Strategies naming reuse matchers or
``UserFeedback``, or carrying pre-configured matcher instances, bypass the
cube cache because their results depend on state outside the cube key.

**Thread safety.**  A session may be shared by many threads -- that is how the
:mod:`repro.service` layer keeps one warm session behind a network boundary.
All cache structures are guarded by one reentrant lock: cache *lookups* are
lock-free reads, cache *mutations* (inserts, trims, counter updates, named
strategy registration) take the lock, and the shared profile dict itself is a
lock-guarded mapping so contexts inserting profiles mid-execution serialise
with cache trimming.  Matcher execution -- the expensive part -- always runs
outside the lock, so concurrent match operations genuinely overlap.  Two
threads racing to fill the same cache entry may both compute it; the first
published entry wins and both threads return identical values, so results are
byte-identical to serial execution and ``cube_hits + cube_misses`` always
equals the number of cacheable executions.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

import numpy as np

from repro.auxiliary.synonyms import SynonymDictionary, default_purchase_order_synonyms
from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix
from repro.core.match_operation import MatchOutcome, combine_cube
from repro.core.processor import MatchProcessor
from repro.core.strategy import MatchStrategy, default_strategy
from repro.engine.engine import DEFAULT_ENGINE, MatchEngine
from repro.engine.profiles import PathSetProfile
from repro.exceptions import SessionError, UnknownMatcherError
from repro.linguistic.tokenizer import NameTokenizer
from repro.matchers.base import MatchContext
from repro.matchers.registry import DEFAULT_LIBRARY, MatcherLibrary
from repro.matchers.simple.user_feedback import UserFeedbackStore
from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, TypeCompatibilityTable
from repro.model.path import SchemaPath
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.campaign import EvaluationCampaign
    from repro.parallel.pool import ProcessSessionPool
    from repro.repository.repository import Repository
    from repro.repository.store import SimilarityStore
    from repro.search.corpus import SchemaCorpus
    from repro.search.searcher import CorpusSearcher, MatchManyFn, SearchResult

#: How callers may reference a strategy: an object, a spec / stored name, or
#: ``None`` for the session default.
StrategyLike = Union[MatchStrategy, str, None]

#: One batch item: ``(source, target)`` or ``(source, target, strategy)``.
MatchRequest = Union[
    Tuple[Schema, Schema],
    Tuple[Schema, Schema, StrategyLike],
]

#: Matcher kinds whose similarity cubes are fully determined by the session's
#: shared resources (reuse matchers depend on mutable mapping stores and
#: ``UserFeedback`` on the feedback store, so their cubes are never cached).
_CACHEABLE_KINDS = frozenset({"simple", "hybrid"})

#: Sentinel distinguishing "no feedback override" from "explicitly no store".
_UNSET = object()


class _GuardedDict(dict):
    """A dict whose mutating operations run under an owning reentrant lock.

    The session hands this to every context it builds as the shared profile
    cache: contexts insert profiles directly during matcher execution, and the
    lock serialises those inserts with the session's cache trimming (which
    iterates the dict).  Reads stay lock-free -- under CPython they are safe
    against the guarded mutations, and a reader either sees a fully
    constructed entry or none at all.
    """

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.RLock):
        super().__init__()
        self._lock = lock

    def __setitem__(self, key, value):
        with self._lock:
            super().__setitem__(key, value)

    def setdefault(self, key, default=None):
        with self._lock:
            return super().setdefault(key, default)

    def pop(self, *args):
        with self._lock:
            return super().pop(*args)

    def popitem(self):
        with self._lock:
            return super().popitem()

    def update(self, *args, **kwargs):
        with self._lock:
            super().update(*args, **kwargs)

    def clear(self):
        with self._lock:
            super().clear()

    def __reduce__(self):  # pragma: no cover - locks are not picklable
        raise TypeError("session caches cannot be pickled")


class MatchSession:
    """A long-lived match service owning the resources shared by all operations.

    Parameters
    ----------
    library:
        The matcher library strategies resolve their matcher names against
        (default: :data:`~repro.matchers.registry.DEFAULT_LIBRARY`).
    engine:
        The :class:`~repro.engine.engine.MatchEngine` executing matcher
        batches (default: the vectorized sequential engine).
    strategy:
        The default strategy of :meth:`match` / :meth:`match_many`; a
        :class:`~repro.core.strategy.MatchStrategy` or a spec string
        (default: the paper's default operation).
    tokenizer / synonyms / type_compatibility:
        The linguistic resources shared by every context the session builds
        (the type-compatibility table is copied per context; mutating the
        session's table reconfigures subsequently built contexts only).
    feedback:
        An optional session-wide user-feedback store applied to every
        operation (individual calls may override it).
    repository:
        An optional :class:`~repro.repository.repository.Repository` used by
        reuse matchers and for persisting named strategies.  Pass a
        repository opened with ``threadsafe=True`` when the session is
        shared across threads.
    store:
        An optional persistent :class:`~repro.repository.store.SimilarityStore`
        (or a path string, opened on the spot and closed by :meth:`close`):
        cube-cache misses consult the store by content address before
        executing matchers, computed cubes are written back asynchronously,
        and the session's name-token memo is seeded from (and flushed back
        to) the store's token artifacts.  A restarted process is then warm
        from its first request.  Only cacheable executions (see
        ``cache_cubes``) use the store, and only sessions on the *default*
        matcher library consult it at all -- stored cubes are addressed by
        matcher name, which is sound only when every process resolves those
        names identically; a custom ``library`` silently bypasses the store.
    store_dtype:
        The storage dtype for cubes written by a store the session *opens
        itself* (``store`` given as a path string): ``"float64"`` (default,
        bit-identical round trips), ``"float32"``, or quantized ``"uint16"``
        (see :data:`repro.repository.store.CUBE_DTYPES`).  Passing it next
        to an already-open :class:`SimilarityStore` object with a different
        dtype raises :class:`SessionError` rather than silently disagreeing.
    cache_cubes:
        Keep similarity cubes per (schema pair, matcher usage) so repeated
        matches of a pair (e.g. under different combination strategies) skip
        matcher execution.  Enabled by default.  Disabling this also
        disables the persistent store path.
    max_cached_cubes / max_cached_profiles:
        Bounds on the two caches (oldest entries are evicted first), keeping a
        long-lived session's memory finite under a stream of distinct schema
        pairs.  The defaults comfortably cover the bundled evaluation
        workloads; pass ``None`` for an unbounded cache.

    Raises
    ------
    SessionError
        If a cache bound is below 1, or ``strategy`` is not a strategy
        object, spec string or stored name.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1, load_po2
    >>> session = MatchSession()
    >>> outcome = session.match(load_po1(), load_po2())
    >>> len(outcome.result) > 0
    True
    """

    #: Default cache bounds: enough for the all-pairs Figure 8 campaign with
    #: plenty of headroom, while keeping a serving session's memory finite.
    DEFAULT_MAX_CACHED_CUBES = 256
    DEFAULT_MAX_CACHED_PROFILES = 1024
    #: Bound on the session-wide name-token memo (entries are tiny -- a name
    #: plus a few short tokens -- so 100k entries stay in the tens of MB).
    MAX_TOKEN_MEMO_ENTRIES = 100_000

    def __init__(
        self,
        library: Optional[MatcherLibrary] = None,
        engine: Optional[MatchEngine] = None,
        strategy: StrategyLike = None,
        tokenizer: Optional[NameTokenizer] = None,
        synonyms: Optional[SynonymDictionary] = None,
        type_compatibility: Optional[TypeCompatibilityTable] = None,
        feedback: Optional[UserFeedbackStore] = None,
        repository: Optional["Repository"] = None,
        store: "SimilarityStore | str | None" = None,
        store_dtype: Optional[str] = None,
        corpus: "SchemaCorpus | str | None" = None,
        cache_cubes: bool = True,
        max_cached_cubes: Optional[int] = DEFAULT_MAX_CACHED_CUBES,
        max_cached_profiles: Optional[int] = DEFAULT_MAX_CACHED_PROFILES,
    ):
        self._library = library if library is not None else DEFAULT_LIBRARY
        self._engine = engine if engine is not None else DEFAULT_ENGINE
        self._tokenizer = tokenizer if tokenizer is not None else NameTokenizer()
        self._synonyms = (
            synonyms if synonyms is not None else default_purchase_order_synonyms()
        )
        self._type_compatibility = (
            type_compatibility
            if type_compatibility is not None
            else DEFAULT_TYPE_COMPATIBILITY.copy()
        )
        self._feedback = feedback
        self._repository = repository
        self._cache_cubes = bool(cache_cubes)
        for bound, label in ((max_cached_cubes, "max_cached_cubes"),
                             (max_cached_profiles, "max_cached_profiles")):
            if bound is not None and bound < 1:
                raise SessionError(f"{label} must be >= 1 or None, got {bound}")
        self._max_cached_cubes = max_cached_cubes
        self._max_cached_profiles = max_cached_profiles
        #: One reentrant lock guards every cache mutation of the session; see
        #: the module docstring for the locking discipline.
        self._lock = threading.RLock()
        self._profile_cache: Dict[Tuple[SchemaPath, ...], PathSetProfile] = (
            _GuardedDict(self._lock)
        )
        self._cube_cache: Dict[tuple, SimilarityCube] = _GuardedDict(self._lock)
        self._cube_hits = 0
        self._cube_misses = 0
        self._store_hits = 0
        self._store_misses = 0
        self._rematch_spliced = 0
        self._rematch_fallbacks = 0
        self._rematch_reused_rows = 0
        self._rematch_recomputed_rows = 0
        #: Session-wide name -> token-tuple memo shared by every profile the
        #: session builds (and seeded from the persistent store when one is
        #: attached).  Inserts are idempotent, so the dict needs no lock.
        self._token_memo: Dict[str, Tuple[str, ...]] = {}
        self._token_watermark = 0
        self._store: Optional["SimilarityStore"] = None
        self._owns_store = False
        self._store_config: Optional[str] = None
        self._tokenizer_digest: Optional[str] = None
        #: Per-session schema-digest memo.  Each entry carries the cheap
        #: structural fingerprint of the schema at memo time: a lookup whose
        #: recomputed fingerprint disagrees drops the entry, so in-place
        #: mutation re-addresses the schema even without clear_caches().
        self._schema_digest_cache: (
            "weakref.WeakKeyDictionary[Schema, Tuple[Tuple[int, int], str]]"
        ) = weakref.WeakKeyDictionary()
        if store is not None:
            # Stored cubes are addressed by *matcher names*: that is only
            # sound when both the writing and the reading session resolve
            # those names to identically configured matchers.  The default
            # library guarantees it across processes; a custom library does
            # not (names may be re-registered with different configuration),
            # so such sessions keep their in-memory caches but never consult
            # the persistent store.
            if self._library is DEFAULT_LIBRARY:
                if isinstance(store, str):
                    from repro.repository.store import SimilarityStore

                    store = SimilarityStore(store, dtype=store_dtype or "float64")
                    self._owns_store = True
                elif store_dtype is not None and store.dtype != store_dtype:
                    raise SessionError(
                        f"store_dtype={store_dtype!r} conflicts with the "
                        f"attached store's dtype {store.dtype!r}; configure "
                        f"the SimilarityStore itself or pass a path string"
                    )
                self._store = store
                self._refresh_store_digests()
        elif store_dtype is not None:
            from repro.repository.store import CUBE_DTYPES

            if store_dtype not in CUBE_DTYPES:
                raise SessionError(
                    f"unknown store_dtype {store_dtype!r}, "
                    f"expected one of {CUBE_DTYPES}"
                )
        self._corpus: Optional["SchemaCorpus"] = None
        self._owns_corpus = False
        self._searcher: Optional["CorpusSearcher"] = None
        if corpus is not None:
            if isinstance(corpus, str):
                from repro.search.corpus import SchemaCorpus

                corpus = SchemaCorpus(corpus, tokenizer=self._tokenizer)
                self._owns_corpus = True
            self._corpus = corpus
        self._named_strategies: Dict[str, MatchStrategy] = {}
        # resolve_strategy needs library / repository / named registry in place,
        # and accepts the same references (object, spec or stored name) here as
        # every other strategy entry point.
        self._default_strategy = default_strategy()
        if strategy is not None:
            self._default_strategy = self.resolve_strategy(strategy)

    # -- shared resources ------------------------------------------------------

    @property
    def library(self) -> MatcherLibrary:
        """The matcher library strategies are resolved against.

        Examples
        --------
        >>> session = MatchSession()
        >>> "NamePath" in session.library
        True
        """
        return self._library

    @property
    def engine(self) -> MatchEngine:
        """The engine executing matcher batches.

        Examples
        --------
        >>> MatchSession().engine.use_batch
        True
        """
        return self._engine

    @property
    def tokenizer(self) -> NameTokenizer:
        """The tokenizer every profile of this session is built with.

        Examples
        --------
        >>> MatchSession().tokenizer.tokenize("ShipTo")
        ('ship', 'to')
        """
        return self._tokenizer

    @property
    def repository(self) -> Optional["Repository"]:
        """The attached repository (``None`` for a repository-less session)."""
        return self._repository

    @property
    def store(self) -> Optional["SimilarityStore"]:
        """The attached persistent similarity store, if any."""
        return self._store

    def _refresh_store_digests(self) -> None:
        """(Re)compute the content digests of the session's configuration.

        Called at construction and from :meth:`clear_caches`, so mutating a
        shared resource in place (synonyms, abbreviations, type table) and
        clearing the caches also re-addresses the persistent store --
        previously stored cubes for the old configuration simply stop
        matching.
        """
        from repro.repository.store import match_config_digest, tokenizer_digest

        self._store_config = match_config_digest(
            self._tokenizer, self._synonyms, self._type_compatibility,
            library=self._library,
        )
        self._tokenizer_digest = tokenizer_digest(self._tokenizer)
        if self._store is not None:
            # Seed to half the trim bound: the memo must have headroom for
            # names the seed does not cover, or the first new name after a
            # full seed would push it over the bound and the wholesale trim
            # would wipe everything that was just loaded.
            seeded = self._store.load_tokens(
                self._tokenizer_digest, limit=self.MAX_TOKEN_MEMO_ENTRIES // 2
            )
            with self._lock:
                self._token_memo.update(seeded)
                self._token_watermark = len(self._token_memo)

    @property
    def feedback(self) -> Optional[UserFeedbackStore]:
        """The session-wide user-feedback store, if configured."""
        return self._feedback

    def config_digest(self) -> str:
        """The content digest of the session's match configuration.

        Covers the tokenizer (flags + abbreviations), the synonym dictionary,
        the type-compatibility table and the matcher library registrations --
        every input a similarity cube depends on besides the schemas.  Two
        sessions (in any two processes) with equal digests produce
        byte-identical cubes for identical schemas, which is what the
        process fan-out (:meth:`match_many` with ``processes=``) checks
        before dispatching work to its workers.

        Examples
        --------
        >>> MatchSession().config_digest() == MatchSession().config_digest()
        True
        """
        from repro.repository.store import match_config_digest

        return match_config_digest(
            self._tokenizer, self._synonyms, self._type_compatibility,
            library=self._library,
        )

    @property
    def default_strategy(self) -> MatchStrategy:
        """The strategy used when a call does not specify one.

        Examples
        --------
        >>> MatchSession().default_strategy.to_spec()
        'All(Average,Both,Thr(0.5)+Delta(0.02,rel),Average)'
        """
        return self._default_strategy

    def set_default_strategy(self, strategy: StrategyLike) -> MatchStrategy:
        """Replace the session's default strategy.

        Parameters
        ----------
        strategy:
            A :class:`~repro.core.strategy.MatchStrategy`, a spec string or a
            stored strategy name (resolved via :meth:`resolve_strategy`).

        Returns
        -------
        MatchStrategy
            The resolved strategy now serving as the default.

        Raises
        ------
        SessionError
            If the reference is neither ``None``, a strategy object nor a
            string (``None`` keeps the current default).

        Examples
        --------
        >>> session = MatchSession()
        >>> session.set_default_strategy("Name+Leaves(Max,Both,MaxN(1),Dice)").to_spec()
        'Name+Leaves(Max,Both,MaxN(1),Dice)'
        """
        self._default_strategy = self.resolve_strategy(strategy)
        return self._default_strategy

    # -- contexts and profiles -------------------------------------------------

    def context_for(
        self, source: Schema, target: Schema, feedback: object = _UNSET
    ) -> MatchContext:
        """A match context over the session's shared resources.

        All contexts of one session share the same profile-cache dict, so
        path-set profiles are computed once per schema per session regardless
        of how many operations touch that schema.  The type-compatibility
        table is *copied* per context (preserving the per-operation isolation
        :class:`~repro.matchers.base.MatchContext` documents): customising one
        operation's table cannot leak into others, while reconfiguring the
        session's own table affects all subsequently built contexts.

        Parameters
        ----------
        source / target:
            The schemas of the match operation.
        feedback:
            Overrides the session-wide feedback store for this context; pass
            ``None`` to explicitly detach feedback.

        Returns
        -------
        MatchContext
            A fresh context sharing the session's tokenizer, synonyms,
            repository and profile cache.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> context = session.context_for(load_po1(), load_po2())
        >>> context.source_schema.name
        'PO1'
        """
        return MatchContext(
            source_schema=source,
            target_schema=target,
            tokenizer=self._tokenizer,
            synonyms=self._synonyms,
            type_compatibility=self._type_compatibility.copy(),
            feedback=self._feedback if feedback is _UNSET else feedback,  # type: ignore[arg-type]
            repository=self._repository,
            profile_cache=self._profile_cache,
            token_memo=self._token_memo,
        )

    def profile_for(self, schema: Schema) -> PathSetProfile:
        """The (session-cached) path-set profile of a schema's full path set.

        Parameters
        ----------
        schema:
            The schema whose paths are profiled.

        Returns
        -------
        PathSetProfile
            The cached profile; concurrent callers racing on the same schema
            converge on one published instance.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1
        >>> session = MatchSession()
        >>> profile = session.profile_for(load_po1())
        >>> len(profile) == len(load_po1().paths())
        True
        """
        key = tuple(schema.paths())
        profile = self._profile_cache.get(key)
        if profile is None:
            profile = PathSetProfile(key, self._tokenizer, token_memo=self._token_memo)
            # setdefault: if another thread published a profile for this key
            # in the meantime, every caller converges on that instance.
            profile = self._profile_cache.setdefault(key, profile)
            self._trim_caches()
        return profile

    # -- strategies ------------------------------------------------------------

    def resolve_strategy(self, strategy: StrategyLike) -> MatchStrategy:
        """Resolve a strategy reference.

        Parameters
        ----------
        strategy:
            ``None`` (the session default), a
            :class:`~repro.core.strategy.MatchStrategy` object, a stored
            strategy name, or a declarative spec string such as
            ``"All(Average,Both,Thr(0.5)+Delta(0.02),Average)"``.

        Returns
        -------
        MatchStrategy
            The resolved strategy object.

        Raises
        ------
        SessionError
            If ``strategy`` is neither ``None``, a strategy object nor a
            string.
        StrategyError
            If a spec string does not parse or names unknown matchers.

        Examples
        --------
        >>> session = MatchSession()
        >>> session.resolve_strategy(None) is session.default_strategy
        True
        >>> session.resolve_strategy("Name(Max,Both,MaxN(1),Dice)").matcher_names()
        ('Name',)
        """
        if strategy is None:
            return self._default_strategy
        if isinstance(strategy, MatchStrategy):
            return strategy
        if isinstance(strategy, str):
            named = self._named_strategies.get(strategy)
            if named is not None:
                return named
            # Stored names never contain parentheses (save_strategy rejects
            # them), so full specs skip the per-call repository lookup.
            if (
                "(" not in strategy
                and self._repository is not None
                and self._repository.has_strategy(strategy)
            ):
                return self.load_strategy(strategy)
            return MatchStrategy.parse(strategy, library=self._library)
        raise SessionError(
            f"strategies must be MatchStrategy objects, spec strings or stored "
            f"names, got {strategy!r}"
        )

    def save_strategy(self, name: str, strategy: StrategyLike) -> MatchStrategy:
        """Register a named strategy, persisting it when a repository is attached.

        Parameters
        ----------
        name:
            The name later calls (and other sessions over the same
            repository) resolve the strategy by.  Must be non-empty and must
            not contain parentheses.
        strategy:
            Any strategy reference accepted by :meth:`resolve_strategy`.

        Returns
        -------
        MatchStrategy
            The resolved strategy, relabelled with ``name``.

        Raises
        ------
        SessionError
            If ``name`` is empty or contains parentheses.
        RepositoryError
            If an attached repository cannot persist the strategy.

        Examples
        --------
        >>> session = MatchSession()
        >>> session.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)").name
        'tuned'
        >>> "tuned" in session.strategy_names()
        True
        """
        if not name:
            raise SessionError("a named strategy needs a non-empty name")
        if "(" in name or ")" in name:
            raise SessionError(
                f"strategy names must not contain parentheses (got {name!r}); "
                f"they would be indistinguishable from spec strings"
            )
        resolved = self.resolve_strategy(strategy).replaced(name=name)
        with self._lock:
            # Persist first: a repository failure must not leave the name
            # resolvable in this session but absent from the shared store.
            if self._repository is not None:
                self._repository.store_strategy(name, resolved)
            self._named_strategies[name] = resolved
        return resolved

    def load_strategy(self, name: str) -> MatchStrategy:
        """A previously saved strategy, from the session or its repository.

        Parameters
        ----------
        name:
            The stored strategy name.

        Returns
        -------
        MatchStrategy
            The named strategy (cached in the session after the first
            repository load).

        Raises
        ------
        SessionError
            If no strategy of that name exists in the session or its
            repository.

        Examples
        --------
        >>> session = MatchSession()
        >>> _ = session.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
        >>> session.load_strategy("tuned").to_spec()
        'All(Max,Both,Thr(0.6),Dice)'
        """
        named = self._named_strategies.get(name)
        if named is not None:
            return named
        if self._repository is not None and self._repository.has_strategy(name):
            loaded = self._repository.load_strategy(name, library=self._library)
            with self._lock:
                # A concurrent load of the same name keeps the first entry.
                loaded = self._named_strategies.setdefault(name, loaded)
            return loaded
        raise SessionError(f"no strategy named {name!r} in this session or its repository")

    def strategy_names(self) -> Tuple[str, ...]:
        """Names of all saved strategies (session-local and repository-persisted).

        Returns
        -------
        tuple of str
            Sorted strategy names.

        Examples
        --------
        >>> session = MatchSession()
        >>> _ = session.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
        >>> session.strategy_names()
        ('tuned',)
        """
        with self._lock:  # snapshot: concurrent saves mutate the registry
            names = set(self._named_strategies)
        if self._repository is not None:
            names.update(self._repository.strategy_names())
        return tuple(sorted(names))

    # -- match operations ------------------------------------------------------

    def match(
        self,
        source: Schema,
        target: Schema,
        strategy: StrategyLike = None,
        feedback: object = _UNSET,
    ) -> MatchOutcome:
        """Run one automatic match operation through the session's resources.

        Parameters
        ----------
        source / target:
            The schemas to match.
        strategy:
            Any reference accepted by :meth:`resolve_strategy`; ``None`` uses
            the session default.
        feedback:
            Overrides the session-wide feedback store for this operation.

        Returns
        -------
        MatchOutcome
            The complete outcome: the selected mapping (``result``), the
            matcher-specific similarity ``cube``, the ``aggregated`` matrix,
            the combined ``schema_similarity`` and the resolved ``strategy``.

        Raises
        ------
        StrategyError
            If the strategy reference does not resolve.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> outcome = session.match(load_po1(), load_po2())
        >>> 0.0 <= outcome.schema_similarity <= 1.0
        True
        >>> outcome.strategy.name
        'All'
        """
        active = self.resolve_strategy(strategy)
        context = self.context_for(source, target, feedback=feedback)
        cube = self._execute(active, context)
        result, aggregated, schema_similarity = combine_cube(
            cube,
            active.combination,
            context,
            apply_feedback_overrides=active.apply_feedback_overrides,
        )
        return MatchOutcome(
            result=result,
            cube=cube,
            aggregated=aggregated,
            schema_similarity=schema_similarity,
            strategy=active,
            context=context,
        )

    def rematch(
        self,
        old: Schema,
        new: Schema,
        previous_result: Optional[MatchOutcome] = None,
        target: Optional[Schema] = None,
        strategy: StrategyLike = None,
        feedback: object = _UNSET,
    ) -> MatchOutcome:
        """Re-match an evolved schema, reusing every unaffected similarity row.

        ``new`` is a later version of ``old``; the row signatures of
        :mod:`repro.model.digests` identify the paths an edit touched, the
        matchers re-run only on those rows (or columns, when ``old`` was the
        target side of the previous operation), and every other cell is
        copied verbatim from the previous cube.  The outcome is byte-identical
        to a from-scratch :meth:`match` of the new pair -- splicing is purely
        an execution shortcut, never an approximation.

        Parameters
        ----------
        old / new:
            The previous and the evolved version of the changing schema.
        previous_result:
            The outcome of a previous :meth:`match` involving ``old`` on
            either side.  ``None`` is allowed when a persistent store is
            attached (or the session's cube cache still holds the old pair):
            the previous cube is then recovered by content address, which is
            how a restarted process splices without re-running the old match.
        target:
            The unchanged opposite schema.  Required without
            ``previous_result``; otherwise inferred from it.
        strategy:
            Any reference accepted by :meth:`resolve_strategy`; defaults to
            the previous result's strategy (or the session default).
        feedback:
            Overrides the session-wide feedback store for this operation.

        Returns
        -------
        MatchOutcome
            The complete outcome of matching the new pair, byte-identical to
            a cold :meth:`match`.

        Raises
        ------
        SessionError
            If ``previous_result`` does not involve ``old``, or neither
            ``previous_result`` nor ``target`` identifies the opposite
            schema.

        Examples
        --------
        >>> from repro.datasets.generators import generate_pair, mutate_schema
        >>> pair = generate_pair(sections=2, fields_per_section=3, seed=5)
        >>> session = MatchSession()
        >>> previous = session.match(pair.source, pair.target)
        >>> evolved = mutate_schema(pair.source, pair.source.name, seed=11,
        ...                         rename_rate=0.1, graft_sections=0, drift_rate=0.0)
        >>> spliced = session.rematch(pair.source, evolved, previous)
        >>> cold = MatchSession().match(evolved, pair.target)
        >>> spliced.result.as_tuples() == cold.result.as_tuples()
        True
        """
        from repro.model.digests import schema_delta, schema_digests

        # -- orientation: which side of the previous pair is evolving? -------
        if previous_result is not None:
            prev_source = previous_result.result.source_schema
            prev_target = previous_result.result.target_schema
            if prev_source is old or prev_source.paths() == old.paths():
                side, fixed = "source", prev_target
            elif prev_target is old or prev_target.paths() == old.paths():
                side, fixed = "target", prev_source
            else:
                raise SessionError(
                    "previous_result does not involve the old schema on either side"
                )
            if (
                target is not None
                and target is not fixed
                and target.paths() != fixed.paths()
            ):
                raise SessionError(
                    "target disagrees with the previous result's unchanged side"
                )
            prev_cube: Optional[SimilarityCube] = previous_result.cube
            if strategy is None:
                strategy = previous_result.strategy
        else:
            if target is None:
                raise SessionError(
                    "rematch without previous_result needs the unchanged "
                    "target schema"
                )
            side, fixed = "source", target
            prev_cube = None

        active = self.resolve_strategy(strategy)
        if side == "source":
            new_source, new_target = new, fixed
            old_source, old_target = old, fixed
        else:
            new_source, new_target = fixed, new
            old_source, old_target = fixed, old

        key = self._cube_key(new_source, new_target, active)
        if key is None:
            # Non-cacheable usages (matcher instances, reuse matchers,
            # UserFeedback) depend on state outside the cube, where copied
            # rows have no identity guarantee -- recompute from scratch.
            return self._rematch_fallback(new_source, new_target, active, feedback)
        if self._cube_cache.get(key) is not None:
            # The new pair's cube is already cached: the full match path is
            # a pure cache hit, nothing to splice.
            with self._lock:
                self._rematch_spliced += 1
                self._rematch_reused_rows += len(new.paths())
            return self.match(new_source, new_target, strategy=active, feedback=feedback)

        matchers = active.resolve_matchers(self._library)
        expected_layers = tuple(matcher.name for matcher in matchers)
        store = self._store
        old_digest: Optional[str] = None

        # -- recover the previous cube (cache, then store by content address) --
        if prev_cube is None:
            old_key = self._cube_key(old_source, old_target, active)
            if old_key is not None:
                prev_cube = self._cube_cache.get(old_key)
                if prev_cube is None and store is not None:
                    from repro.repository.store import cube_store_key

                    old_digest = self._schema_digest(old)
                    source_digest = (
                        old_digest if side == "source" else self._schema_digest(fixed)
                    )
                    target_digest = (
                        old_digest if side == "target" else self._schema_digest(fixed)
                    )
                    prev_cube = store.load_cube(
                        cube_store_key(
                            source_digest, target_digest, old_key[2], self._store_config
                        ),
                        old_key[0],
                        old_key[1],
                    )
        if (
            prev_cube is None
            or prev_cube.matcher_names != expected_layers
            or prev_cube.source_paths != old_source.paths()
            or prev_cube.target_paths != old_target.paths()
        ):
            return self._rematch_fallback(new_source, new_target, active, feedback)

        # -- delta: align old and new paths by row signature ------------------
        old_digests = schema_digests(old)
        new_digests = schema_digests(new)
        if store is not None:
            # Restart guard: signatures persisted next to the whole-schema
            # digest record what the stored cube was computed from.  If the
            # caller's ``old`` object disagrees, the cube cannot be spliced.
            if old_digest is None:
                old_digest = self._schema_digest(old)
            persisted = store.load_path_signatures(old_digest)
            if persisted is not None and persisted != old_digests.signatures:
                return self._rematch_fallback(new_source, new_target, active, feedback)
        delta = schema_delta(old, new, old_digests, new_digests)
        if delta.full or not delta.matched:
            return self._rematch_fallback(new_source, new_target, active, feedback)

        # -- partial execution on the affected rows / columns ------------------
        context = self.context_for(new_source, new_target, feedback=feedback)
        new_axis = new.paths()
        partial: Optional[SimilarityCube] = None
        if delta.changed:
            affected = [new_axis[index] for index in delta.changed]
            if side == "source":
                partial = self._engine.execute_partial(
                    matchers, context, source_rows=affected
                )
            else:
                partial = self._engine.execute_partial(
                    matchers, context, target_columns=affected
                )

        # -- splice: copy untouched cells, scatter the recomputed slice -------
        reused_old = np.fromiter(
            (i for i, _ in delta.matched), dtype=np.intp, count=len(delta.matched)
        )
        reused_new = np.fromiter(
            (j for _, j in delta.matched), dtype=np.intp, count=len(delta.matched)
        )
        changed = np.fromiter(
            delta.changed, dtype=np.intp, count=len(delta.changed)
        )
        source_axis, target_axis = new_source.paths(), new_target.paths()
        layers = []
        for name in expected_layers:
            previous_values = prev_cube.layer(name).values
            values = np.empty((len(source_axis), len(target_axis)), dtype=float)
            if side == "source":
                values[reused_new] = previous_values[reused_old]
                if partial is not None:
                    values[changed] = partial.layer(name).values
            else:
                values[:, reused_new] = previous_values[:, reused_old]
                if partial is not None:
                    values[:, changed] = partial.layer(name).values
            layers.append((name, SimilarityMatrix(source_axis, target_axis, values)))
        cube = SimilarityCube.from_layers(source_axis, target_axis, layers)

        # -- publish exactly like a computed cube ------------------------------
        with self._lock:
            cube = self._cube_cache.setdefault(key, cube)
            self._rematch_spliced += 1
            self._rematch_reused_rows += delta.reused
            self._rematch_recomputed_rows += delta.recomputed
        if store is not None:
            store_key = self._store_key_for(context, key[2])
            store.store_cube_async(
                store_key[0], cube, store_key[1], store_key[2], key[2], self._store_config
            )
            self._flush_new_tokens(store)
            if old_digest is None:
                old_digest = self._schema_digest(old)
            store.store_path_signatures_async(old_digest, list(old_digests.signatures))
            store.store_path_signatures_async(
                self._schema_digest(new), list(new_digests.signatures)
            )
        self._trim_caches()

        result, aggregated, schema_similarity = combine_cube(
            cube,
            active.combination,
            context,
            apply_feedback_overrides=active.apply_feedback_overrides,
        )
        return MatchOutcome(
            result=result,
            cube=cube,
            aggregated=aggregated,
            schema_similarity=schema_similarity,
            strategy=active,
            context=context,
        )

    def _rematch_fallback(
        self,
        source: Schema,
        target: Schema,
        strategy: MatchStrategy,
        feedback: object,
    ) -> MatchOutcome:
        """Full recomputation when splicing is unavailable or unsafe."""
        with self._lock:
            self._rematch_fallbacks += 1
        return self.match(source, target, strategy=strategy, feedback=feedback)

    def match_many(
        self,
        requests: Iterable[MatchRequest],
        strategy: StrategyLike = None,
        processes: Optional[int] = None,
        process_pool: Optional["ProcessSessionPool"] = None,
        timeout: Optional[float] = None,
    ) -> List[MatchOutcome]:
        """Run a batch of match operations, amortising the session caches.

        Path-set profiles are pre-built once per distinct schema, so an
        all-pairs fan-out (the Figure 8 campaign) derives each schema's
        profile exactly once for the whole batch.

        With ``processes`` (or an existing ``process_pool``) the batch is
        chunked across worker *processes* -- each owning a warm session of
        its own, so matcher execution escapes this interpreter's GIL and
        scales with the cores.  Results stay byte-identical to the serial
        path (same mappings, same similarity bits); computed cubes are folded
        back into this session's cube cache.  Requests whose strategy cannot
        travel over the wire (matcher instances, reuse matchers,
        ``UserFeedback``) and pairs whose cube is already cached run locally;
        everything else is dispatched.

        Parameters
        ----------
        requests:
            An iterable of ``(source, target)`` or
            ``(source, target, strategy)`` tuples; a per-request strategy
            overrides the batch-level ``strategy`` argument.
        strategy:
            The batch-level default strategy reference.
        processes:
            Fan the batch out over this many spawned worker processes (the
            pool lives for this one call; prefer ``process_pool`` when
            issuing several batches).  Workers share the session's
            persistent store file, when one is attached.
        process_pool:
            An existing :class:`~repro.parallel.pool.ProcessSessionPool` to
            dispatch on (kept open afterwards).
        timeout:
            Deadline in seconds over the process-pool dispatch: a wedged
            worker is SIGKILLed by the pool's watchdog and the call raises
            :class:`~repro.exceptions.PoolTimeoutError` within deadline plus
            grace.  Ignored on the serial path (no pool involved).

        Returns
        -------
        list of MatchOutcome
            One outcome per request, in request order; byte-identical to
            calling :meth:`match` per pair.

        Raises
        ------
        SessionError
            If a request tuple has a length other than 2 or 3, if both
            ``processes`` and ``process_pool`` are given, or if the session's
            configuration digest differs from the workers' (fanning out would
            silently break byte-identity).

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> a, b = load_po1(), load_po2()
        >>> outcomes = session.match_many([(a, b), (b, a)])
        >>> len(outcomes)
        2
        """
        items: List[Tuple[Schema, Schema, StrategyLike]] = []
        for request in requests:
            if len(request) == 2:
                items.append((request[0], request[1], strategy))
            elif len(request) == 3:
                # only None falls back to the batch strategy: a falsy spec such
                # as "" must fail loudly in resolve_strategy, not be replaced
                items.append(
                    (request[0], request[1],
                     request[2] if request[2] is not None else strategy)
                )
            else:
                raise SessionError(
                    f"match requests must be (source, target[, strategy]) tuples, "
                    f"got a tuple of length {len(request)}"
                )
        if processes is not None or process_pool is not None:
            return self._match_many_processes(items, processes, process_pool, timeout)
        seen_schemas: set = set()
        for source, target, _ in items:
            for schema in (source, target):
                if id(schema) not in seen_schemas:
                    seen_schemas.add(id(schema))
                    self.profile_for(schema)
        return [
            self.match(source, target, strategy=item_strategy)
            for source, target, item_strategy in items
        ]

    # -- corpus search ---------------------------------------------------------

    @property
    def corpus(self) -> Optional["SchemaCorpus"]:
        """The attached schema corpus (``None`` when search is not configured).

        Pass ``corpus=`` at construction -- either an opened
        :class:`~repro.search.corpus.SchemaCorpus` or a path string the
        session opens (and then owns: :meth:`close` closes it).
        """
        return self._corpus

    def register(self, schema: Schema, replace: bool = True) -> int:
        """Register a schema into the session's corpus (see ``SchemaCorpus.add``).

        The registration reuses the session-cached profile of the schema, so
        registering and then matching never tokenizes twice.

        Raises
        ------
        SessionError
            If the session has no corpus attached.
        """
        if self._corpus is None:
            raise SessionError(
                "this session has no schema corpus; construct it with "
                "corpus=<path or SchemaCorpus> to enable search"
            )
        return self._corpus.add(
            schema, replace=replace, profile=self.profile_for(schema)
        )

    def searcher(self) -> "CorpusSearcher":
        """The session's :class:`~repro.search.searcher.CorpusSearcher` (lazy).

        Raises
        ------
        SessionError
            If the session has no corpus attached.
        """
        if self._corpus is None:
            raise SessionError(
                "this session has no schema corpus; construct it with "
                "corpus=<path or SchemaCorpus> to enable search"
            )
        if self._searcher is None or self._searcher.corpus is not self._corpus:
            from repro.search.searcher import CorpusSearcher

            self._searcher = CorpusSearcher(self, self._corpus)
        return self._searcher

    def search(
        self,
        schema: Schema,
        k: int = 10,
        strategy: StrategyLike = None,
        candidates: Optional[int] = None,
        exclude_self: bool = True,
        processes: Optional[int] = None,
        process_pool: Optional["ProcessSessionPool"] = None,
        match_many: Optional["MatchManyFn"] = None,
    ) -> List["SearchResult"]:
        """Find the best match targets for ``schema`` in the attached corpus.

        Two stages: the corpus' inverted index ranks all registered schemas
        by idf-weighted vocabulary overlap (no matchers run), then the full
        session pipeline matches the query against the top
        ``candidates`` (default ``max(4 * k, 16)``) survivors and re-ranks
        them by real schema similarity.  See
        :class:`~repro.search.searcher.CorpusSearcher` for parameter
        details; ``processes`` / ``process_pool`` / ``match_many`` control
        survivor fan-out exactly as in :meth:`match_many`.

        Returns
        -------
        list of SearchResult
            At most ``k`` results, best first; each carries the full
            :class:`~repro.core.match_operation.MatchOutcome` (and thus the
            selected per-path mapping) of its candidate.

        Raises
        ------
        SessionError
            If the session has no corpus attached.
        SearchError
            For invalid ``k`` / ``candidates``.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession(corpus=":memory:")
        >>> _ = session.register(load_po2())
        >>> [hit.name for hit in session.search(load_po1(), k=1)]
        ['PO2']
        """
        return self.searcher().search(
            schema,
            k=k,
            strategy=strategy,
            candidates=candidates,
            exclude_self=exclude_self,
            processes=processes,
            process_pool=process_pool,
            match_many=match_many,
        )

    def _process_spec(self, strategy: MatchStrategy) -> Optional[str]:
        """The wire spec of a strategy, or ``None`` when it cannot fan out.

        A strategy is process-executable when a worker resolving its spec
        against the default library reproduces this session's execution
        exactly: every matcher is referenced by name, none depends on state
        outside the wire (reuse matchers read mutable mapping stores,
        ``UserFeedback`` reads the feedback store), and the session itself
        carries no feedback overrides.  This is deliberately the same
        criterion as cube cacheability plus the feedback/library checks.
        """
        if self._feedback is not None or self._library is not DEFAULT_LIBRARY:
            return None
        names: List[str] = []
        for reference in strategy.matchers:
            if not isinstance(reference, str):
                return None
            names.append(reference)
        try:
            infos = [self._library.info(name) for name in names]
        except UnknownMatcherError:
            return None
        for info in infos:
            if info.kind not in _CACHEABLE_KINDS or info.name == "UserFeedback":
                return None
        return strategy.to_spec()

    def _match_many_processes(
        self,
        items: List[Tuple[Schema, Schema, StrategyLike]],
        processes: Optional[int],
        process_pool: Optional["ProcessSessionPool"],
        timeout: Optional[float] = None,
    ) -> List[MatchOutcome]:
        """Fan a normalised batch out across worker processes (see match_many)."""
        from repro.parallel.pool import ProcessSessionPool

        if processes is not None and process_pool is not None:
            raise SessionError("pass either processes=N or process_pool=..., not both")
        owned = None
        if process_pool is None:
            store_path = None
            if self._store is not None and self._store.path != ":memory:":
                store_path = self._store.path
            repository_path = (
                self._repository.path if self._repository is not None else None
            )
            store_dtype = self._store.dtype if self._store is not None else None
            owned = process_pool = ProcessSessionPool(
                processes,
                store_path=store_path,
                repository_path=repository_path,
                store_dtype=store_dtype if store_path is not None else None,
            )
        try:
            if process_pool.config_digest != self.config_digest():
                raise SessionError(
                    "the process pool's workers run a different match "
                    "configuration than this session (tokenizer, synonyms, "
                    "type table or library differ); fanning out would not be "
                    "byte-identical to the serial path"
                )
            resolved = [
                self.resolve_strategy(item_strategy) for _, _, item_strategy in items
            ]
            outcomes: List[Optional[MatchOutcome]] = [None] * len(items)
            remote: List[int] = []
            for index, ((source, target, _), active) in enumerate(zip(items, resolved)):
                spec = self._process_spec(active)
                key = (
                    self._cube_key(source, target, active) if spec is not None else None
                )
                if spec is None or (key is not None and key in self._cube_cache):
                    continue  # runs locally (not wire-able, or already cached)
                remote.append(index)
            remote_outcomes = process_pool.match_many(
                [(items[i][0], items[i][1], resolved[i]) for i in remote],
                context_factory=self.context_for,
                timeout=timeout,
            )
            for index, outcome in zip(remote, remote_outcomes):
                key = self._cube_key(items[index][0], items[index][1], resolved[index])
                if key is not None:
                    # A worker execution is a cacheable execution this session
                    # did not serve from its cube cache: it counts as a miss,
                    # and the computed cube is folded back for later hits.
                    with self._lock:
                        self._cube_misses += 1
                        self._cube_cache.setdefault(key, outcome.cube)
                    self._trim_caches()
                outcomes[index] = outcome
            for index, (source, target, _) in enumerate(items):
                if outcomes[index] is None:
                    outcomes[index] = self.match(source, target, strategy=resolved[index])
            return outcomes  # type: ignore[return-value]
        finally:
            if owned is not None:
                owned.close()

    def schema_similarity(
        self, source: Schema, target: Schema, strategy: StrategyLike = None
    ) -> float:
        """The combined schema similarity of one match operation (Figure 8).

        Parameters
        ----------
        source / target:
            The schemas to compare.
        strategy:
            Any reference accepted by :meth:`resolve_strategy`.

        Returns
        -------
        float
            The combined similarity in ``[0, 1]``.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> 0.0 <= session.schema_similarity(load_po1(), load_po2()) <= 1.0
        True
        """
        return self.match(source, target, strategy=strategy).schema_similarity

    # -- iterative / evaluation front-ends -------------------------------------

    def iterate(
        self,
        source: Schema,
        target: Schema,
        strategy: StrategyLike = None,
        feedback: Optional[UserFeedbackStore] = None,
    ) -> MatchProcessor:
        """An interactive :class:`~repro.core.processor.MatchProcessor` on this session.

        The processor gets its own feedback store unless the session (or the
        call) provides one, and its context shares the session's caches.

        Parameters
        ----------
        source / target:
            The schemas of the interactive match task.
        strategy:
            Any reference accepted by :meth:`resolve_strategy`.
        feedback:
            The feedback store driving the iteration; defaults to the
            session-wide store, else a fresh one.

        Returns
        -------
        MatchProcessor
            A processor whose context shares the session caches.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> processor = session.iterate(load_po1(), load_po2())
        >>> processor.feedback is not None
        True
        """
        store = feedback
        if store is None:
            store = self._feedback if self._feedback is not None else UserFeedbackStore()
        context = self.context_for(source, target, feedback=store)
        return MatchProcessor(
            source,
            target,
            strategy=self.resolve_strategy(strategy),
            library=self._library,
            engine=self._engine,
            feedback=store,
            context=context,
        )

    def evaluate(self, tasks: Optional[Sequence] = None, **kwargs) -> "EvaluationCampaign":
        """An :class:`~repro.evaluation.campaign.EvaluationCampaign` on this session.

        Per-task contexts are built through :meth:`context_for`, so the
        campaign's matcher executions share the session's profile cache.

        Parameters
        ----------
        tasks:
            The evaluation tasks (default: the bundled gold-standard tasks).
        **kwargs:
            Forwarded to the campaign constructor; ``engine`` and
            ``context_factory`` default to the session's.

        Returns
        -------
        EvaluationCampaign
            A campaign sharing the session's engine and caches.

        Examples
        --------
        >>> session = MatchSession()
        >>> campaign = session.evaluate()
        >>> campaign is not None
        True
        """
        from repro.evaluation.campaign import EvaluationCampaign

        kwargs.setdefault("engine", self._engine)
        kwargs.setdefault("context_factory", self.context_for)
        return EvaluationCampaign(tasks=tasks, **kwargs)

    # -- cube execution and caches ---------------------------------------------

    def _cube_key(
        self, source: Schema, target: Schema, strategy: MatchStrategy
    ) -> Optional[tuple]:
        """The cache key of a match execution, or ``None`` when not cacheable."""
        if not self._cache_cubes:
            return None
        names: List[str] = []
        for reference in strategy.matchers:
            if not isinstance(reference, str):
                return None  # matcher instances may carry per-use state
            names.append(reference.strip().lower())
        try:
            infos = [self._library.info(name) for name in names]
        except UnknownMatcherError:
            return None  # let resolve_matchers raise the canonical error
        for info in infos:
            if info.kind not in _CACHEABLE_KINDS or info.name == "UserFeedback":
                return None
        return (source.paths(), target.paths(), tuple(names))

    def _execute(self, strategy: MatchStrategy, context: MatchContext) -> SimilarityCube:
        """Execute the strategy's matchers, serving repeats from the caches.

        The lookup order is the cache hierarchy, fastest first: the
        in-memory cube cache, then the persistent store (by content
        address), then matcher execution with an asynchronous store
        write-back.  Matcher execution and store I/O run outside the session
        lock; only cache lookups, inserts and counter updates are guarded.
        Two threads missing the same key both execute (both count as misses,
        keeping ``cube_hits + cube_misses`` equal to the number of cacheable
        executions; likewise ``store_hits + store_misses`` equals the number
        of store consultations) and converge on the first published cube.
        """
        key = self._cube_key(context.source_schema, context.target_schema, strategy)
        if key is not None:
            cached = self._cube_cache.get(key)
            if cached is not None:
                with self._lock:
                    self._cube_hits += 1
                return cached
        # One snapshot of the store reference for the whole execution: a
        # concurrent close() nulls self._store, and in-flight operations must
        # keep using the object they started with (whose post-close writes
        # are dropped safely) rather than crash on a None mid-way.
        store = self._store
        store_key = None
        if key is not None and store is not None:
            store_key = self._store_key_for(context, key[2])
            stored = store.load_cube(store_key[0], key[0], key[1])
            if stored is not None:
                with self._lock:
                    self._cube_misses += 1
                    self._store_hits += 1
                    stored = self._cube_cache.setdefault(key, stored)
                self._trim_caches()
                return stored
        matchers = strategy.resolve_matchers(self._library)
        cube = self._engine.execute(matchers, context)
        if key is not None:
            with self._lock:
                self._cube_misses += 1
                if store_key is not None:
                    self._store_misses += 1
                cube = self._cube_cache.setdefault(key, cube)
            if store_key is not None:
                store.store_cube_async(
                    store_key[0],
                    cube,
                    store_key[1],
                    store_key[2],
                    key[2],
                    self._store_config,
                )
                self._flush_new_tokens(store)
        self._trim_caches()
        return cube

    def _store_key_for(
        self, context: MatchContext, usage: Tuple[str, ...]
    ) -> Tuple[str, str, str]:
        """``(store key, source digest, target digest)`` of one execution."""
        from repro.repository.store import cube_store_key

        source_digest = self._schema_digest(context.source_schema)
        target_digest = self._schema_digest(context.target_schema)
        return (
            cube_store_key(source_digest, target_digest, usage, self._store_config),
            source_digest,
            target_digest,
        )

    @staticmethod
    def _schema_fingerprint(schema: Schema) -> Tuple[int, int]:
        """A cheap structural fingerprint validating the digest memo.

        The memo is keyed by object identity, so an in-place mutation (a
        rename, a type drift, an added element) would otherwise keep serving
        the digest of the *old* content -- and with it the old stored cube.
        The fingerprint folds the path count with an xor over the root label
        and every path's leaf content; it reads live element attributes (not
        the lazily cached name tuples), so it is recomputable per lookup at
        a fraction of the full serialisation digest's cost.
        """
        paths = schema.paths()
        label = hash(schema.root.name)
        for path in paths:
            leaf = path.leaf
            label ^= hash(
                (leaf.name, leaf.kind.value, leaf.source_type, leaf.documentation)
            )
        return (len(paths), label)

    def _schema_digest(self, schema: Schema) -> str:
        """The (session-memoised) content digest of a schema.

        Each memo entry is validated against the current structural
        fingerprint of the schema and dropped on mismatch, so mutating a
        schema in place re-addresses it on the next lookup without an
        explicit :meth:`clear_caches`.
        """
        from repro.repository.store import schema_content_digest

        fingerprint = self._schema_fingerprint(schema)
        with self._lock:
            entry = self._schema_digest_cache.get(schema)
        if entry is not None and entry[0] == fingerprint:
            return entry[1]
        digest = schema_content_digest(schema)
        with self._lock:
            self._schema_digest_cache[schema] = (fingerprint, digest)
        return digest

    def _flush_new_tokens(self, store: "SimilarityStore") -> None:
        """Queue token-memo entries added since the last flush to ``store``.

        The memo dict is insertion-ordered and never shrinks between trims,
        so a watermark index identifies the new slice.  A concurrent insert
        while the snapshot is taken simply defers those entries to the next
        flush.
        """
        memo = self._token_memo
        with self._lock:
            if len(memo) <= self._token_watermark:
                return
            watermark = self._token_watermark
            try:
                items = list(memo.items())
            except RuntimeError:  # pragma: no cover - concurrent insert mid-snapshot
                return
            self._token_watermark = len(items)
        store.store_tokens_async(self._tokenizer_digest, items[watermark:])

    def _trim_caches(self) -> None:
        """Evict oldest entries beyond the configured bounds (insertion order).

        Contexts insert profiles into the shared dict directly during matcher
        execution, so trimming runs after every execution as well as after
        explicit :meth:`profile_for` inserts.  Evicted entries are simply
        recomputed on next use.  The whole sweep holds the session lock, so
        the ``next(iter(...))`` walk cannot race with concurrent inserts
        (which take the same lock through the guarded cache dicts).
        """
        with self._lock:
            if self._max_cached_cubes is not None:
                while len(self._cube_cache) > self._max_cached_cubes:
                    self._cube_cache.pop(next(iter(self._cube_cache)))
            if self._max_cached_profiles is not None:
                while len(self._profile_cache) > self._max_cached_profiles:
                    self._profile_cache.pop(next(iter(self._profile_cache)))
            # The token memo has no per-entry eviction (the store watermark
            # relies on insertion order): beyond the bound it is dropped
            # wholesale and simply refills on demand.
            if len(self._token_memo) > self.MAX_TOKEN_MEMO_ENTRIES:
                self._token_memo.clear()
                self._token_watermark = 0

    def cache_info(self) -> Dict[str, int]:
        """Cache occupancy and hit counters.

        Returns
        -------
        dict
            ``profiles`` / ``cubes`` (current occupancy), ``cube_hits`` /
            ``cube_misses`` (lifetime counters; their sum equals the number
            of cacheable executions, also under concurrency) and
            ``store_hits`` / ``store_misses`` (persistent-store
            consultations; both stay 0 without an attached store).

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> a, b = load_po1(), load_po2()
        >>> _ = session.match(a, b)
        >>> _ = session.match(a, b)   # same pair again: served from the cube cache
        >>> info = session.cache_info()
        >>> info["cube_hits"], info["cube_misses"]
        (1, 1)
        """
        with self._lock:
            return {
                "profiles": len(self._profile_cache),
                "cubes": len(self._cube_cache),
                "cube_hits": self._cube_hits,
                "cube_misses": self._cube_misses,
                "store_hits": self._store_hits,
                "store_misses": self._store_misses,
                "rematch_spliced": self._rematch_spliced,
                "rematch_fallbacks": self._rematch_fallbacks,
                "rematch_reused_rows": self._rematch_reused_rows,
                "rematch_recomputed_rows": self._rematch_recomputed_rows,
            }

    def clear_caches(self) -> None:
        """Drop all cached profiles, cubes and tokens (counters are kept).

        Call this after mutating a shared resource in place (synonym
        dictionary, abbreviation table, type-compatibility table) or a
        schema graph itself: cached cubes reflect the inputs at execution
        time.  With a persistent store attached, the session's
        configuration *and* schema content digests are recomputed as well,
        so the store stops serving cubes addressed under the old inputs
        (they remain on disk for sessions still using them).

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> session = MatchSession()
        >>> _ = session.match(load_po1(), load_po2())
        >>> session.clear_caches()
        >>> session.cache_info()["cubes"]
        0
        """
        with self._lock:
            self._profile_cache.clear()
            self._cube_cache.clear()
            self._token_memo.clear()
            self._token_watermark = 0
            self._schema_digest_cache = weakref.WeakKeyDictionary()
        if self._store is not None:
            self._refresh_store_digests()

    def close(self) -> None:
        """Release persistent resources the session opened itself.

        A store the session opened from a path string is flushed and closed
        (persisting its lifetime hit/miss counters for ``coma stats
        --store``); the same applies to a corpus opened from a path string.
        Store or corpus objects handed in by the caller -- typically shared
        with other sessions -- are left running.  The session remains usable
        for in-memory work afterwards.  Idempotent.

        Examples
        --------
        >>> import tempfile, os
        >>> path = os.path.join(tempfile.mkdtemp(), "store.db")
        >>> with MatchSession(store=path) as session:
        ...     session.store is not None
        True
        """
        with self._lock:
            store = self._store if self._owns_store else None
            if store is not None:
                self._store = None
                self._owns_store = False
            corpus = self._corpus if self._owns_corpus else None
            if corpus is not None:
                self._corpus = None
                self._owns_corpus = False
                self._searcher = None
        if store is not None:
            # In-flight executions hold their own snapshot of the reference;
            # their post-close async writes are dropped by the store itself.
            store.close()
        if corpus is not None:
            corpus.close()

    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"MatchSession(library={len(self._library)} matchers, "
            f"profiles={info['profiles']}, cubes={info['cubes']}, "
            f"repository={'attached' if self._repository is not None else 'none'})"
        )
