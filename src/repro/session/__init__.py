"""The session layer: COMA's service-shaped public entry point.

:class:`~repro.session.session.MatchSession` owns the shared resources of
many match operations; :func:`default_session` provides the lazily created
process-wide session backing the deprecated free-function shims in
:mod:`repro`.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.session.session import MatchSession

_default_session: Optional[MatchSession] = None
_default_session_lock = threading.Lock()


def default_session() -> MatchSession:
    """The lazily created process-wide session used by the free-function shims.

    Creation is guarded by a lock so concurrent first callers receive the
    same session instance.
    """
    global _default_session
    if _default_session is None:
        with _default_session_lock:
            if _default_session is None:
                _default_session = MatchSession()
    return _default_session


def reset_default_session() -> None:
    """Drop the process-wide default session (mainly for tests)."""
    global _default_session
    _default_session = None


__all__ = ["MatchSession", "default_session", "reset_default_session"]
