"""The similarity cube: stacked per-matcher similarity matrices.

The result of the matcher execution phase with ``k`` matchers, ``m`` S1
elements and ``n`` S2 elements is a ``k x m x n`` cube of similarity values
(Section 3), which is stored in the repository for the later combination and
selection steps.  The cube keeps the matcher names so aggregation strategies
such as ``Weighted`` can address individual layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CombinationError
from repro.combination.matrix import SimilarityMatrix
from repro.model.path import SchemaPath


class SimilarityCube:
    """A ``k x m x n`` stack of similarity matrices, one layer per matcher."""

    def __init__(self, source_paths: Sequence[SchemaPath], target_paths: Sequence[SchemaPath]):
        self._source_paths: Tuple[SchemaPath, ...] = tuple(source_paths)
        self._target_paths: Tuple[SchemaPath, ...] = tuple(target_paths)
        if not self._source_paths or not self._target_paths:
            raise CombinationError("a similarity cube needs at least one path on each side")
        self._layers: Dict[str, SimilarityMatrix] = {}
        self._order: List[str] = []

    # -- axes ------------------------------------------------------------------

    @property
    def source_paths(self) -> Tuple[SchemaPath, ...]:
        """The source (S1) path axis shared by all layers."""
        return self._source_paths

    @property
    def target_paths(self) -> Tuple[SchemaPath, ...]:
        """The target (S2) path axis shared by all layers."""
        return self._target_paths

    @property
    def matcher_names(self) -> Tuple[str, ...]:
        """The matcher names in insertion order (the layer axis)."""
        return tuple(self._order)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """The ``(k, m, n)`` cube shape."""
        return (len(self._order), len(self._source_paths), len(self._target_paths))

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_layers(
        cls,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        layers: Iterable[Tuple[str, SimilarityMatrix]],
    ) -> "SimilarityCube":
        """Build a cube from pre-computed ``(matcher name, matrix)`` pairs.

        This is the bulk constructor used by the batch match engine, which
        computes all layers first (possibly concurrently) and stacks them in
        one step.
        """
        cube = cls(source_paths, target_paths)
        for matcher_name, matrix in layers:
            cube.add_layer(matcher_name, matrix)
        return cube

    # -- layer management ----------------------------------------------------------

    def add_layer(self, matcher_name: str, matrix: SimilarityMatrix) -> None:
        """Add (or replace) the matrix produced by ``matcher_name``.

        The matrix must be defined over exactly the cube's path axes.
        """
        if matrix.source_paths != self._source_paths or matrix.target_paths != self._target_paths:
            raise CombinationError(
                f"matrix axes of matcher {matcher_name!r} do not match the cube axes"
            )
        if matcher_name not in self._layers:
            self._order.append(matcher_name)
        self._layers[matcher_name] = matrix

    def layer(self, matcher_name: str) -> SimilarityMatrix:
        """The matrix of one matcher."""
        try:
            return self._layers[matcher_name]
        except KeyError:
            raise CombinationError(f"no layer for matcher {matcher_name!r} in this cube") from None

    def has_layer(self, matcher_name: str) -> bool:
        """True if the cube contains a layer for ``matcher_name``."""
        return matcher_name in self._layers

    def layers(self) -> Iterator[Tuple[str, SimilarityMatrix]]:
        """Iterate over ``(matcher name, matrix)`` pairs in insertion order."""
        for name in self._order:
            yield name, self._layers[name]

    # -- numeric views ------------------------------------------------------------------

    def as_array(self) -> np.ndarray:
        """The full cube as a ``k x m x n`` numpy array (copy)."""
        if not self._order:
            raise CombinationError("cannot materialise an empty similarity cube")
        return np.stack([self._layers[name].values for name in self._order], axis=0)

    def cell(self, source: SchemaPath, target: SchemaPath) -> Dict[str, float]:
        """All matcher-specific similarities for one ``(source, target)`` pair."""
        return {name: self._layers[name].get(source, target) for name in self._order}

    def sub_cube(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
    ) -> "SimilarityCube":
        """A cube restricted to subsets of the path axes (layers are re-sliced)."""
        sub = SimilarityCube(source_paths, target_paths)
        for name, matrix in self.layers():
            restricted = SimilarityMatrix(source_paths, target_paths)
            for source in source_paths:
                for target in target_paths:
                    restricted.set(source, target, matrix.get(source, target))
            sub.add_layer(name, restricted)
        return sub

    # -- serialisation helpers (for the repository) -------------------------------------------

    def as_records(self) -> List[Tuple[str, str, str, float]]:
        """Flatten to ``(matcher, source dotted, target dotted, similarity)`` rows."""
        records: List[Tuple[str, str, str, float]] = []
        for name, matrix in self.layers():
            for source in self._source_paths:
                for target in self._target_paths:
                    value = matrix.get(source, target)
                    if value > 0.0:
                        records.append((name, source.dotted(), target.dotted(), value))
        return records

    # -- dunder protocol --------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, matcher_name: object) -> bool:
        return isinstance(matcher_name, str) and matcher_name in self._layers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimilarityCube(matchers={self._order}, shape={self.shape})"
