"""Similarity matrices: the per-matcher result over two path sets.

Every matcher produces an ``m x n`` matrix of similarity values, with rows
indexed by the source (S1) paths and columns by the target (S2) paths.  The
matrix is numpy-backed, but exposes path-aware accessors so that the rest of
the system never has to juggle integer indices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CombinationError
from repro.model.path import SchemaPath


class SimilarityMatrix:
    """An ``m x n`` matrix of similarities between source and target paths."""

    def __init__(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        values: Optional[np.ndarray] = None,
    ):
        self._source_paths: Tuple[SchemaPath, ...] = tuple(source_paths)
        self._target_paths: Tuple[SchemaPath, ...] = tuple(target_paths)
        if not self._source_paths or not self._target_paths:
            raise CombinationError("a similarity matrix needs at least one path on each side")
        shape = (len(self._source_paths), len(self._target_paths))
        if values is None:
            self._values = np.zeros(shape, dtype=float)
        else:
            array = np.asarray(values, dtype=float)
            if array.shape != shape:
                raise CombinationError(
                    f"value array shape {array.shape} does not match path counts {shape}"
                )
            self._values = array.copy()
        self._source_index: Dict[SchemaPath, int] = {
            path: i for i, path in enumerate(self._source_paths)
        }
        self._target_index: Dict[SchemaPath, int] = {
            path: j for j, path in enumerate(self._target_paths)
        }

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def filled(
        cls,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        fill_value: float,
    ) -> "SimilarityMatrix":
        """A matrix whose every cell holds ``fill_value``."""
        matrix = cls(source_paths, target_paths)
        matrix._values.fill(float(fill_value))
        return matrix

    @classmethod
    def from_unique(
        cls,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        unique_values: np.ndarray,
        source_inverse: Sequence[int],
        target_inverse: Sequence[int],
    ) -> "SimilarityMatrix":
        """Scatter a matrix computed over *unique* cache keys to all path pairs.

        Batch matchers evaluate their similarity function only once per pair of
        distinct cache keys (e.g. distinct leaf names); ``unique_values`` holds
        that ``u x v`` result, and ``source_inverse`` / ``target_inverse`` map
        every path to the row / column of its key.  The full ``m x n`` matrix
        is materialised with one fancy-indexing gather, and values are clamped
        to ``[0, 1]`` exactly like the pairwise reference implementation.
        """
        unique = np.asarray(unique_values, dtype=float)
        rows = np.asarray(source_inverse, dtype=np.intp)
        columns = np.asarray(target_inverse, dtype=np.intp)
        if rows.shape != (len(source_paths),) or columns.shape != (len(target_paths),):
            raise CombinationError(
                "inverse index lengths do not match the path counts: "
                f"{rows.shape[0]} x {columns.shape[0]} vs {len(source_paths)} x {len(target_paths)}"
            )
        values = unique[np.ix_(rows, columns)]
        np.clip(values, 0.0, 1.0, out=values)
        return cls(source_paths, target_paths, values)

    def copy(self) -> "SimilarityMatrix":
        """An independent copy of this matrix."""
        return SimilarityMatrix(self._source_paths, self._target_paths, self._values)

    # -- axes --------------------------------------------------------------------

    @property
    def source_paths(self) -> Tuple[SchemaPath, ...]:
        """Row axis: the source (S1) paths."""
        return self._source_paths

    @property
    def target_paths(self) -> Tuple[SchemaPath, ...]:
        """Column axis: the target (S2) paths."""
        return self._target_paths

    @property
    def shape(self) -> Tuple[int, int]:
        """The ``(rows, columns)`` shape."""
        return self._values.shape  # type: ignore[return-value]

    @property
    def values(self) -> np.ndarray:
        """A read-only view of the underlying value array."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    # -- element access ------------------------------------------------------------

    def get(self, source: SchemaPath, target: SchemaPath) -> float:
        """The similarity stored for ``(source, target)``."""
        return float(self._values[self._source_index[source], self._target_index[target]])

    def set(self, source: SchemaPath, target: SchemaPath, similarity: float) -> None:
        """Store a similarity for ``(source, target)`` (must be within [0, 1])."""
        if not 0.0 <= similarity <= 1.0:
            raise CombinationError(
                f"similarity must be within [0, 1], got {similarity!r} for {source} / {target}"
            )
        self._values[self._source_index[source], self._target_index[target]] = float(similarity)

    def has_source(self, source: SchemaPath) -> bool:
        """True if ``source`` is on the row axis."""
        return source in self._source_index

    def has_target(self, target: SchemaPath) -> bool:
        """True if ``target`` is on the column axis."""
        return target in self._target_index

    def row(self, source: SchemaPath) -> np.ndarray:
        """The similarity row of ``source`` over all targets (copy)."""
        return self._values[self._source_index[source], :].copy()

    def column(self, target: SchemaPath) -> np.ndarray:
        """The similarity column of ``target`` over all sources (copy)."""
        return self._values[:, self._target_index[target]].copy()

    # -- bulk operations ----------------------------------------------------------------

    def fill_from(self, entries: Iterable[Tuple[SchemaPath, SchemaPath, float]]) -> None:
        """Set many cells at once from ``(source, target, similarity)`` triples."""
        for source, target, similarity in entries:
            self.set(source, target, similarity)

    def transposed(self) -> "SimilarityMatrix":
        """The matrix with source and target axes swapped."""
        return SimilarityMatrix(self._target_paths, self._source_paths, self._values.T)

    def ranked_targets(self, source: SchemaPath) -> List[Tuple[SchemaPath, float]]:
        """Targets ranked by descending similarity to ``source`` (ties: path order)."""
        row = self._values[self._source_index[source], :]
        order = sorted(
            range(len(self._target_paths)), key=lambda j: (-row[j], self._target_paths[j].names)
        )
        return [(self._target_paths[j], float(row[j])) for j in order]

    def ranked_sources(self, target: SchemaPath) -> List[Tuple[SchemaPath, float]]:
        """Sources ranked by descending similarity to ``target`` (ties: path order)."""
        column = self._values[:, self._target_index[target]]
        order = sorted(
            range(len(self._source_paths)),
            key=lambda i: (-column[i], self._source_paths[i].names),
        )
        return [(self._source_paths[i], float(column[i])) for i in order]

    def max_similarity(self) -> float:
        """The maximum similarity anywhere in the matrix."""
        return float(self._values.max())

    def nonzero_pairs(self) -> List[Tuple[SchemaPath, SchemaPath, float]]:
        """All cells with a strictly positive similarity as triples."""
        rows, cols = np.nonzero(self._values > 0.0)
        return [
            (self._source_paths[i], self._target_paths[j], float(self._values[i, j]))
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    # -- dunder protocol ----------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimilarityMatrix(shape={self.shape})"
