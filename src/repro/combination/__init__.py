"""Combination of similarity values: cubes, matrices and the strategy pipeline."""

from repro.combination.aggregation import (
    AVERAGE,
    MAX,
    MIN,
    AggregationStrategy,
    AverageAggregation,
    MaxAggregation,
    MinAggregation,
    WeightedAggregation,
    aggregation_by_name,
)
from repro.combination.combined import (
    AVERAGE_COMBINED,
    DICE_COMBINED,
    AverageCombined,
    CombinedSimilarityStrategy,
    DiceCombined,
    combined_similarity_by_name,
)
from repro.combination.cube import SimilarityCube
from repro.combination.direction import (
    BOTH,
    LARGE_SMALL,
    SMALL_LARGE,
    Both,
    DirectionStrategy,
    LargeSmall,
    SelectedPair,
    SmallLarge,
    direction_by_name,
)
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import (
    CombinedSelection,
    MaxDelta,
    MaxN,
    SelectionStrategy,
    Threshold,
    default_selection,
)
from repro.combination.strategy import (
    CombinationStrategy,
    default_combination,
    parse_combination,
    parse_selection,
)

__all__ = [
    "AVERAGE",
    "AVERAGE_COMBINED",
    "BOTH",
    "DICE_COMBINED",
    "LARGE_SMALL",
    "MAX",
    "MIN",
    "SMALL_LARGE",
    "AggregationStrategy",
    "AverageAggregation",
    "AverageCombined",
    "Both",
    "CombinationStrategy",
    "CombinedSelection",
    "CombinedSimilarityStrategy",
    "DiceCombined",
    "DirectionStrategy",
    "LargeSmall",
    "MaxAggregation",
    "MaxDelta",
    "MaxN",
    "MinAggregation",
    "SelectedPair",
    "SelectionStrategy",
    "SimilarityCube",
    "SimilarityMatrix",
    "SmallLarge",
    "Threshold",
    "WeightedAggregation",
    "aggregation_by_name",
    "combined_similarity_by_name",
    "default_combination",
    "default_selection",
    "direction_by_name",
    "parse_combination",
    "parse_selection",
]
