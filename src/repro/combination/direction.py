"""Match direction and the direction-aware application of selection (Section 6.2).

COMA distinguishes directional and undirectional matching.  Given two schemas
S1 and S2 with ``|S2| <= |S1|`` (S1 the larger schema):

* ``LargeSmall`` -- elements from the larger schema S1 are ranked and selected
  with respect to each element of the smaller target S2,
* ``SmallLarge`` -- elements of the smaller schema S2 are ranked and selected
  for each S1 element,
* ``Both`` -- both directions are evaluated and a pair is only accepted if it
  is selected in both directions (the undirectional match of Section 3).

The direction strategy consumes the aggregated similarity matrix (rows = S1
paths, columns = S2 paths, in *input* order, regardless of size) together with
a :class:`~repro.combination.selection.SelectionStrategy` and produces the set
of selected ``(source path, target path, similarity)`` triples.
"""

from __future__ import annotations

import abc
from typing import List, Set, Tuple

from repro.exceptions import CombinationError
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import SelectionStrategy
from repro.model.path import SchemaPath

#: One selected correspondence: source path (S1), target path (S2), similarity.
SelectedPair = Tuple[SchemaPath, SchemaPath, float]


def _select_source_to_target(
    matrix: SimilarityMatrix, selection: SelectionStrategy
) -> Set[SelectedPair]:
    """For each source (row) element, select candidates among the targets."""
    pairs: Set[SelectedPair] = set()
    for source in matrix.source_paths:
        ranked = matrix.ranked_targets(source)
        for target, similarity in selection.select(ranked):
            pairs.add((source, target, similarity))
    return pairs


def _select_target_to_source(
    matrix: SimilarityMatrix, selection: SelectionStrategy
) -> Set[SelectedPair]:
    """For each target (column) element, select candidates among the sources."""
    pairs: Set[SelectedPair] = set()
    for target in matrix.target_paths:
        ranked = matrix.ranked_sources(target)
        for source, similarity in selection.select(ranked):
            pairs.add((source, target, similarity))
    return pairs


class DirectionStrategy(abc.ABC):
    """Base class for match direction strategies."""

    name: str = "direction"

    @abc.abstractmethod
    def select_pairs(
        self, matrix: SimilarityMatrix, selection: SelectionStrategy
    ) -> List[SelectedPair]:
        """Apply ``selection`` in the configured direction(s) over ``matrix``."""

    @staticmethod
    def _source_is_larger(matrix: SimilarityMatrix) -> bool:
        rows, columns = matrix.shape
        return rows >= columns

    def __call__(
        self, matrix: SimilarityMatrix, selection: SelectionStrategy
    ) -> List[SelectedPair]:
        return self.select_pairs(matrix, selection)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DirectionStrategy) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    @staticmethod
    def _sorted(pairs: Set[SelectedPair]) -> List[SelectedPair]:
        return sorted(pairs, key=lambda p: (p[0].names, p[1].names))


class LargeSmall(DirectionStrategy):
    """Rank and select elements of the larger schema for each smaller-schema element."""

    name = "LargeSmall"

    def select_pairs(
        self, matrix: SimilarityMatrix, selection: SelectionStrategy
    ) -> List[SelectedPair]:
        if self._source_is_larger(matrix):
            # S1 (rows) is larger: select S1 candidates for each S2 element.
            pairs = _select_target_to_source(matrix, selection)
        else:
            # S2 (columns) is larger: select S2 candidates for each S1 element.
            pairs = _select_source_to_target(matrix, selection)
        return self._sorted(pairs)


class SmallLarge(DirectionStrategy):
    """Rank and select elements of the smaller schema for each larger-schema element."""

    name = "SmallLarge"

    def select_pairs(
        self, matrix: SimilarityMatrix, selection: SelectionStrategy
    ) -> List[SelectedPair]:
        if self._source_is_larger(matrix):
            pairs = _select_source_to_target(matrix, selection)
        else:
            pairs = _select_target_to_source(matrix, selection)
        return self._sorted(pairs)


class Both(DirectionStrategy):
    """Undirectional matching: a pair must be selected in both directions."""

    name = "Both"

    def select_pairs(
        self, matrix: SimilarityMatrix, selection: SelectionStrategy
    ) -> List[SelectedPair]:
        forward = _select_source_to_target(matrix, selection)
        backward = _select_target_to_source(matrix, selection)
        return self._sorted(forward & backward)


#: Canonical instances.
LARGE_SMALL = LargeSmall()
SMALL_LARGE = SmallLarge()
BOTH = Both()

_BY_NAME = {
    "largesmall": LARGE_SMALL,
    "smalllarge": SMALL_LARGE,
    "both": BOTH,
}


def direction_by_name(name: str) -> DirectionStrategy:
    """Resolve a direction strategy from its name."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        raise CombinationError(
            f"unknown direction strategy {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
