"""Selection of match candidates from a ranked candidate list (Section 6.2).

Given the similarity matrix, the candidates for one element are ranked in
descending order of similarity and a *selection strategy* decides which of
them to keep:

* ``MaxN`` -- the ``n`` candidates with maximal similarity (``Max1`` is the
  natural choice for 1:1 correspondences),
* ``MaxDelta`` -- the best candidate plus every candidate whose similarity
  differs from the best by at most a tolerance ``d`` (absolute or relative),
* ``Threshold`` -- every candidate whose similarity exceeds a threshold ``t``,
* combinations of the above (e.g. ``Threshold(0.5) + Delta(0.02)``), realised
  by :class:`CombinedSelection`, which keeps only candidates accepted by every
  constituent strategy.

Candidates with similarity ``0`` are never selected: a zero similarity means
"strong dissimilarity" (Section 3) and must not become a match candidate just
because a row of the matrix happens to be all zeros.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

from repro.exceptions import CombinationError
from repro.model.path import SchemaPath

#: A ranked candidate: the candidate path and its similarity.
RankedCandidate = Tuple[SchemaPath, float]


class SelectionStrategy(abc.ABC):
    """Base class for candidate selection strategies."""

    name: str = "selection"

    @abc.abstractmethod
    def select(self, ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        """Choose match candidates from a descending-ranked candidate list."""

    @staticmethod
    def _positive(ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        return [(path, sim) for path, sim in ranked if sim > 0.0]

    def __call__(self, ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        return self.select(ranked)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SelectionStrategy) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    def combined_with(self, other: "SelectionStrategy") -> "CombinedSelection":
        """The selection keeping only candidates accepted by both strategies."""
        return CombinedSelection([self, other])

    def __add__(self, other: "SelectionStrategy") -> "CombinedSelection":
        return self.combined_with(other)


class MaxN(SelectionStrategy):
    """Select the ``n`` candidates with maximal similarity."""

    def __init__(self, n: int = 1):
        if n < 1:
            raise CombinationError(f"MaxN requires n >= 1, got {n}")
        self.n = int(n)
        self.name = f"MaxN({self.n})"

    def select(self, ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        return self._positive(ranked)[: self.n]


class MaxDelta(SelectionStrategy):
    """Select the best candidate plus all candidates within a tolerance of it.

    The tolerance ``delta`` is interpreted relative to the best similarity when
    ``relative`` is true (the paper's evaluation uses relative deltas of
    0.01 - 0.1), otherwise as an absolute difference.
    """

    def __init__(self, delta: float = 0.02, relative: bool = True):
        if delta < 0:
            raise CombinationError(f"MaxDelta requires a non-negative delta, got {delta}")
        self.delta = float(delta)
        self.relative = bool(relative)
        kind = "rel" if self.relative else "abs"
        self.name = f"Delta({self.delta:g},{kind})"

    def select(self, ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        positive = self._positive(ranked)
        if not positive:
            return []
        best = positive[0][1]
        tolerance = best * self.delta if self.relative else self.delta
        floor = best - tolerance
        return [(path, sim) for path, sim in positive if sim >= floor]


class Threshold(SelectionStrategy):
    """Select every candidate whose similarity is at least ``t``."""

    def __init__(self, threshold: float = 0.5):
        if not 0.0 < threshold <= 1.0:
            raise CombinationError(f"Threshold requires 0 < t <= 1, got {threshold}")
        self.threshold = float(threshold)
        self.name = f"Thr({self.threshold:g})"

    def select(self, ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        return [(path, sim) for path, sim in self._positive(ranked) if sim >= self.threshold]


class CombinedSelection(SelectionStrategy):
    """Keep only candidates accepted by every constituent strategy.

    This realises the paper's combined criteria such as
    ``Threshold(0.5) + MaxN(1)`` and ``Threshold(0.5) + Delta(0.02)``.
    """

    def __init__(self, strategies: Sequence[SelectionStrategy]):
        flattened: List[SelectionStrategy] = []
        for strategy in strategies:
            if isinstance(strategy, CombinedSelection):
                flattened.extend(strategy.strategies)
            else:
                flattened.append(strategy)
        if len(flattened) < 2:
            raise CombinationError("CombinedSelection requires at least two strategies")
        self.strategies: Tuple[SelectionStrategy, ...] = tuple(flattened)
        self.name = "+".join(str(s) for s in self.strategies)

    def select(self, ranked: Sequence[RankedCandidate]) -> List[RankedCandidate]:
        accepted_sets = []
        for strategy in self.strategies:
            accepted_sets.append({path for path, _ in strategy.select(ranked)})
        common = set.intersection(*accepted_sets) if accepted_sets else set()
        return [(path, sim) for path, sim in self._positive(ranked) if path in common]


#: The paper's default selection: Threshold(0.5) combined with Delta(0.02).
def default_selection() -> SelectionStrategy:
    """The default selection strategy identified in Section 7.2."""
    return CombinedSelection([Threshold(0.5), MaxDelta(0.02)])
