"""Aggregation of matcher-specific results (Section 6.1).

The first combination step aggregates, for every pair of schema elements, the
similarity values computed by multiple matchers into one combined value.  The
paper supports four strategies:

* ``Max`` -- optimistic: the maximum similarity of any matcher,
* ``Weighted`` -- a weighted sum with user-supplied relative weights,
* ``Average`` -- the special case of ``Weighted`` with equal weights,
* ``Min`` -- pessimistic: the lowest similarity of any matcher.

Each strategy turns a :class:`~repro.combination.cube.SimilarityCube` into a
single :class:`~repro.combination.matrix.SimilarityMatrix`.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import CombinationError
from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix


class AggregationStrategy(abc.ABC):
    """Base class for cube -> matrix aggregation strategies."""

    #: Short name used in reports and the evaluation grid.
    name: str = "aggregation"

    @abc.abstractmethod
    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        """Collapse the matcher axis of ``cube`` into one similarity matrix."""

    def __call__(self, cube: SimilarityCube) -> SimilarityMatrix:
        return self.aggregate(cube)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AggregationStrategy) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


def _require_layers(cube: SimilarityCube) -> np.ndarray:
    if len(cube) == 0:
        raise CombinationError("cannot aggregate an empty similarity cube")
    return cube.as_array()


class MaxAggregation(AggregationStrategy):
    """Optimistic aggregation: the maximum similarity of any matcher."""

    name = "Max"

    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        array = _require_layers(cube)
        return SimilarityMatrix(cube.source_paths, cube.target_paths, array.max(axis=0))


class MinAggregation(AggregationStrategy):
    """Pessimistic aggregation: the minimum similarity of any matcher."""

    name = "Min"

    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        array = _require_layers(cube)
        return SimilarityMatrix(cube.source_paths, cube.target_paths, array.min(axis=0))


class AverageAggregation(AggregationStrategy):
    """Average aggregation: all matchers are considered equally important."""

    name = "Average"

    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        array = _require_layers(cube)
        return SimilarityMatrix(cube.source_paths, cube.target_paths, array.mean(axis=0))


class WeightedAggregation(AggregationStrategy):
    """Weighted sum of matcher-specific similarities.

    Weights are given per matcher name; they are normalised to sum to one so
    the aggregated values stay within ``[0, 1]``.  Matchers present in the cube
    but absent from the weight mapping receive weight zero, and a ``default``
    weight may be supplied for the positional case (weights given as a
    sequence aligned to the cube's matcher order).
    """

    name = "Weighted"

    def __init__(
        self,
        weights: Mapping[str, float] | Sequence[float],
        *,
        label: Optional[str] = None,
    ):
        if isinstance(weights, Mapping):
            self._named_weights: Optional[Dict[str, float]] = {
                str(k): float(v) for k, v in weights.items()
            }
            self._positional_weights: Optional[tuple[float, ...]] = None
        else:
            self._named_weights = None
            self._positional_weights = tuple(float(w) for w in weights)
        if label:
            self.name = label
        self._validate()

    def _validate(self) -> None:
        values = (
            list(self._named_weights.values())
            if self._named_weights is not None
            else list(self._positional_weights or ())
        )
        if not values:
            raise CombinationError("Weighted aggregation requires at least one weight")
        if any(w < 0 for w in values):
            raise CombinationError("Weighted aggregation weights must be non-negative")
        if sum(values) <= 0:
            raise CombinationError("Weighted aggregation weights must not all be zero")

    def weight_vector(self, cube: SimilarityCube) -> np.ndarray:
        """The normalised weight per cube layer, in layer order."""
        names = cube.matcher_names
        if self._named_weights is not None:
            raw = np.array([self._named_weights.get(name, 0.0) for name in names], dtype=float)
        else:
            positional = self._positional_weights or ()
            if len(positional) != len(names):
                raise CombinationError(
                    f"got {len(positional)} positional weights for {len(names)} matchers"
                )
            raw = np.array(positional, dtype=float)
        total = raw.sum()
        if total <= 0:
            raise CombinationError(
                "Weighted aggregation weights assign zero total weight to the cube's matchers"
            )
        return raw / total

    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        array = _require_layers(cube)
        weights = self.weight_vector(cube)
        combined = np.tensordot(weights, array, axes=(0, 0))
        # numerical noise can push values marginally outside [0, 1]
        combined = np.clip(combined, 0.0, 1.0)
        return SimilarityMatrix(cube.source_paths, cube.target_paths, combined)


#: Canonical instances for the strategies without parameters.
MAX = MaxAggregation()
MIN = MinAggregation()
AVERAGE = AverageAggregation()

_BY_NAME = {
    "max": MAX,
    "min": MIN,
    "average": AVERAGE,
    "avg": AVERAGE,
}


def aggregation_by_name(name: str) -> AggregationStrategy:
    """Resolve a parameter-free aggregation strategy from its name."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        raise CombinationError(
            f"unknown aggregation strategy {name!r}; expected one of {sorted(set(_BY_NAME))}"
        ) from None
