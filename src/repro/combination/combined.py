"""Computation of combined similarity for element/component sets (Section 6.3).

Hybrid matchers need a third step: turning the list of selected match
candidates between two *sets* (token sets, child sets, leaf sets) into one
combined similarity value for the pair of schema objects that own those sets.
The same computation also produces the *schema similarity* used by Figure 8.

Two strategies are supported:

* ``Average`` -- the sum of the similarities of all match candidates of both
  sets divided by the total number of set elements ``|S1| + |S2|``,
* ``Dice`` -- the ratio of the number of matched elements over the total
  number of set elements (the similarity values themselves do not matter),
  based on the Dice coefficient.

Both follow Figure 7: the pair lists passed in are the directional match
results ``S1 -> S2`` and ``S2 -> S1`` produced by step 2 with direction
``Both``; Dice is more optimistic than Average whenever individual similarities
are below 1.0, and both coincide when every similarity equals 1.0.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

from repro.exceptions import CombinationError
from repro.combination.direction import SelectedPair


class CombinedSimilarityStrategy(abc.ABC):
    """Base class for combined-similarity (set similarity) strategies."""

    name: str = "combined-similarity"

    @abc.abstractmethod
    def combine(
        self,
        selected_pairs: Sequence[SelectedPair],
        source_size: int,
        target_size: int,
    ) -> float:
        """Combine selected pairs between two sets into one similarity value.

        Parameters
        ----------
        selected_pairs:
            The selected ``(source, target, similarity)`` triples (undirected,
            i.e. each matched pair appears once).
        source_size / target_size:
            The total number of elements in the two sets (``|S1|`` / ``|S2|``).
        """

    def __call__(
        self,
        selected_pairs: Sequence[SelectedPair],
        source_size: int,
        target_size: int,
    ) -> float:
        return self.combine(selected_pairs, source_size, target_size)

    @staticmethod
    def _validate_sizes(source_size: int, target_size: int) -> None:
        if source_size <= 0 or target_size <= 0:
            raise CombinationError(
                f"set sizes must be positive, got |S1|={source_size}, |S2|={target_size}"
            )

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CombinedSimilarityStrategy) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


def _per_side_counts_and_sums(
    selected_pairs: Sequence[SelectedPair],
) -> Tuple[int, int, float, float]:
    """Matched-element counts and similarity sums per side.

    Figure 7 counts the match candidates of *both* sets: a source element with
    one candidate contributes its similarity once for the S1 -> S2 direction
    and the target element contributes once for S2 -> S1.  With at most one
    candidate per element (the usual case after Max1/Delta selection) this is
    equivalent to counting each matched element once per side.
    """
    matched_sources = {}
    matched_targets = {}
    for source, target, similarity in selected_pairs:
        matched_sources[source] = max(matched_sources.get(source, 0.0), similarity)
        matched_targets[target] = max(matched_targets.get(target, 0.0), similarity)
    return (
        len(matched_sources),
        len(matched_targets),
        sum(matched_sources.values()),
        sum(matched_targets.values()),
    )


class AverageCombined(CombinedSimilarityStrategy):
    """Sum of candidate similarities of both sets over the total number of elements."""

    name = "Average"

    def combine(
        self,
        selected_pairs: Sequence[SelectedPair],
        source_size: int,
        target_size: int,
    ) -> float:
        self._validate_sizes(source_size, target_size)
        if not selected_pairs:
            return 0.0
        _, _, source_sum, target_sum = _per_side_counts_and_sums(selected_pairs)
        value = (source_sum + target_sum) / (source_size + target_size)
        return min(1.0, max(0.0, value))


class DiceCombined(CombinedSimilarityStrategy):
    """Number of matched elements of both sets over the total number of elements."""

    name = "Dice"

    def combine(
        self,
        selected_pairs: Sequence[SelectedPair],
        source_size: int,
        target_size: int,
    ) -> float:
        self._validate_sizes(source_size, target_size)
        if not selected_pairs:
            return 0.0
        source_count, target_count, _, _ = _per_side_counts_and_sums(selected_pairs)
        value = (source_count + target_count) / (source_size + target_size)
        return min(1.0, max(0.0, value))


#: Canonical instances.
AVERAGE_COMBINED = AverageCombined()
DICE_COMBINED = DiceCombined()

_BY_NAME = {
    "average": AVERAGE_COMBINED,
    "avg": AVERAGE_COMBINED,
    "dice": DICE_COMBINED,
}


def combined_similarity_by_name(name: str) -> CombinedSimilarityStrategy:
    """Resolve a combined-similarity strategy from its name."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        raise CombinationError(
            f"unknown combined-similarity strategy {name!r}; expected one of {sorted(set(_BY_NAME))}"
        ) from None
