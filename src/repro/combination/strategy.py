"""The full combination pipeline (Figure 6): aggregation -> direction/selection -> combined sim.

A :class:`CombinationStrategy` bundles the tuple of sub-strategies the paper
uses to describe combinations, e.g. ``(Max, Both, Max1, Average)``:

1. an :class:`~repro.combination.aggregation.AggregationStrategy` collapsing
   the matcher axis of the similarity cube,
2. a :class:`~repro.combination.direction.DirectionStrategy` together with a
   :class:`~repro.combination.selection.SelectionStrategy` choosing the match
   candidates from the aggregated matrix,
3. optionally a
   :class:`~repro.combination.combined.CombinedSimilarityStrategy` collapsing
   the selected pairs into one similarity value (required inside hybrid
   matchers, optional — the "schema similarity" — for complete match results).

The same pipeline is used for combining independent matchers at the end of a
match iteration and, inside hybrid matchers, for combining component (token /
child / leaf) similarities.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.combination.aggregation import AVERAGE, AggregationStrategy, aggregation_by_name
from repro.combination.combined import (
    AVERAGE_COMBINED,
    CombinedSimilarityStrategy,
    combined_similarity_by_name,
)
from repro.combination.cube import SimilarityCube
from repro.combination.direction import BOTH, DirectionStrategy, SelectedPair, direction_by_name
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import (
    CombinedSelection,
    MaxDelta,
    MaxN,
    SelectionStrategy,
    Threshold,
    default_selection,
)
from repro.exceptions import StrategyError


@dataclasses.dataclass(frozen=True)
class CombinationStrategy:
    """The 4-tuple of sub-strategies controlling how similarities are combined."""

    aggregation: AggregationStrategy = AVERAGE
    direction: DirectionStrategy = BOTH
    selection: SelectionStrategy = dataclasses.field(default_factory=default_selection)
    combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED

    # -- pipeline steps --------------------------------------------------------

    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        """Step 1: collapse the matcher axis of the cube."""
        return self.aggregation.aggregate(cube)

    def select(self, matrix: SimilarityMatrix) -> List[SelectedPair]:
        """Step 2: choose match candidates from the aggregated matrix."""
        return self.direction.select_pairs(matrix, self.selection)

    def combine_pairs(
        self,
        selected_pairs: Sequence[SelectedPair],
        source_size: int,
        target_size: int,
    ) -> float:
        """Step 3: collapse selected pairs into one combined similarity value."""
        return self.combined_similarity.combine(selected_pairs, source_size, target_size)

    def run(self, cube: SimilarityCube) -> List[SelectedPair]:
        """Run steps 1 and 2 over a cube, returning the selected pairs."""
        return self.select(self.aggregate(cube))

    def run_with_similarity(self, cube: SimilarityCube) -> tuple[List[SelectedPair], float]:
        """Run all three steps, returning the pairs and the combined (schema) similarity."""
        pairs = self.run(cube)
        similarity = self.combine_pairs(
            pairs, len(cube.source_paths), len(cube.target_paths)
        )
        return pairs, similarity

    # -- naming / parsing ----------------------------------------------------------

    def describe(self) -> str:
        """The paper-style tuple notation, e.g. ``(Average, Both, Thr(0.5)+Delta(0.02), Average)``."""
        return (
            f"({self.aggregation}, {self.direction}, {self.selection}, "
            f"{self.combined_similarity})"
        )

    def replaced(
        self,
        aggregation: Optional[AggregationStrategy] = None,
        direction: Optional[DirectionStrategy] = None,
        selection: Optional[SelectionStrategy] = None,
        combined_similarity: Optional[CombinedSimilarityStrategy] = None,
    ) -> "CombinationStrategy":
        """A copy with some sub-strategies replaced."""
        return CombinationStrategy(
            aggregation=aggregation or self.aggregation,
            direction=direction or self.direction,
            selection=selection or self.selection,
            combined_similarity=combined_similarity or self.combined_similarity,
        )

    def __str__(self) -> str:
        return self.describe()


def default_combination() -> CombinationStrategy:
    """The paper's default: ``(Average, Both, Threshold(0.5)+Delta(0.02), Average)``.

    Section 7.2 identifies this combination as the most effective default for
    no-reuse matchers and adopts it for the remaining experiments.
    """
    return CombinationStrategy(
        aggregation=AVERAGE,
        direction=BOTH,
        selection=CombinedSelection([Threshold(0.5), MaxDelta(0.02)]),
        combined_similarity=AVERAGE_COMBINED,
    )


def parse_selection(spec: str) -> SelectionStrategy:
    """Parse a selection specification such as ``"Thr(0.5)+Delta(0.02)"`` or ``"MaxN(2)"``.

    The accepted grammar mirrors the names used in the paper's Table 6:
    ``MaxN(n)``, ``Delta(d)``, ``Thr(t)`` and ``+``-separated combinations.
    """
    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise StrategyError(f"empty selection specification: {spec!r}")
    strategies: List[SelectionStrategy] = []
    for part in parts:
        lowered = part.lower()
        try:
            if lowered.startswith("maxn"):
                n = int(_argument(part, default="1"))
                strategies.append(MaxN(n))
            elif lowered.startswith("max"):
                n = int(_argument(part, default="1"))
                strategies.append(MaxN(n))
            elif lowered.startswith("delta") or lowered.startswith("maxdelta"):
                strategies.append(MaxDelta(float(_argument(part, default="0.02"))))
            elif lowered.startswith("thr"):
                strategies.append(Threshold(float(_argument(part, default="0.5"))))
            else:
                raise StrategyError(f"unknown selection strategy {part!r} in {spec!r}")
        except ValueError as error:
            raise StrategyError(f"invalid argument in selection {part!r}: {error}") from error
    if len(strategies) == 1:
        return strategies[0]
    return CombinedSelection(strategies)


def _argument(part: str, default: str) -> str:
    if "(" not in part:
        return default
    inner = part[part.index("(") + 1:]
    inner = inner.rstrip(")").strip()
    return inner or default


def parse_combination(
    aggregation: str = "Average",
    direction: str = "Both",
    selection: str = "Thr(0.5)+Delta(0.02)",
    combined_similarity: str = "Average",
) -> CombinationStrategy:
    """Build a :class:`CombinationStrategy` from the four textual sub-strategy names."""
    return CombinationStrategy(
        aggregation=aggregation_by_name(aggregation),
        direction=direction_by_name(direction),
        selection=parse_selection(selection),
        combined_similarity=combined_similarity_by_name(combined_similarity),
    )
