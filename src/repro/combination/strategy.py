"""The full combination pipeline (Figure 6): aggregation -> direction/selection -> combined sim.

A :class:`CombinationStrategy` bundles the tuple of sub-strategies the paper
uses to describe combinations, e.g. ``(Max, Both, Max1, Average)``:

1. an :class:`~repro.combination.aggregation.AggregationStrategy` collapsing
   the matcher axis of the similarity cube,
2. a :class:`~repro.combination.direction.DirectionStrategy` together with a
   :class:`~repro.combination.selection.SelectionStrategy` choosing the match
   candidates from the aggregated matrix,
3. optionally a
   :class:`~repro.combination.combined.CombinedSimilarityStrategy` collapsing
   the selected pairs into one similarity value (required inside hybrid
   matchers, optional — the "schema similarity" — for complete match results).

The same pipeline is used for combining independent matchers at the end of a
match iteration and, inside hybrid matchers, for combining component (token /
child / leaf) similarities.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Sequence

from repro.combination.aggregation import AVERAGE, AggregationStrategy, aggregation_by_name
from repro.combination.combined import (
    AVERAGE_COMBINED,
    CombinedSimilarityStrategy,
    combined_similarity_by_name,
)
from repro.combination.cube import SimilarityCube
from repro.combination.direction import BOTH, DirectionStrategy, SelectedPair, direction_by_name
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import (
    CombinedSelection,
    MaxDelta,
    MaxN,
    SelectionStrategy,
    Threshold,
    default_selection,
)
from repro.exceptions import StrategyError


@dataclasses.dataclass(frozen=True)
class CombinationStrategy:
    """The 4-tuple of sub-strategies controlling how similarities are combined."""

    aggregation: AggregationStrategy = AVERAGE
    direction: DirectionStrategy = BOTH
    selection: SelectionStrategy = dataclasses.field(default_factory=default_selection)
    combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED

    # -- pipeline steps --------------------------------------------------------

    def aggregate(self, cube: SimilarityCube) -> SimilarityMatrix:
        """Step 1: collapse the matcher axis of the cube."""
        return self.aggregation.aggregate(cube)

    def select(self, matrix: SimilarityMatrix) -> List[SelectedPair]:
        """Step 2: choose match candidates from the aggregated matrix."""
        return self.direction.select_pairs(matrix, self.selection)

    def combine_pairs(
        self,
        selected_pairs: Sequence[SelectedPair],
        source_size: int,
        target_size: int,
    ) -> float:
        """Step 3: collapse selected pairs into one combined similarity value."""
        return self.combined_similarity.combine(selected_pairs, source_size, target_size)

    def run(self, cube: SimilarityCube) -> List[SelectedPair]:
        """Run steps 1 and 2 over a cube, returning the selected pairs."""
        return self.select(self.aggregate(cube))

    def run_with_similarity(self, cube: SimilarityCube) -> tuple[List[SelectedPair], float]:
        """Run all three steps, returning the pairs and the combined (schema) similarity."""
        pairs = self.run(cube)
        similarity = self.combine_pairs(
            pairs, len(cube.source_paths), len(cube.target_paths)
        )
        return pairs, similarity

    # -- naming / parsing ----------------------------------------------------------

    def describe(self) -> str:
        """The paper-style tuple notation, e.g. ``(Average, Both, Thr(0.5)+Delta(0.02), Average)``."""
        return (
            f"({self.aggregation}, {self.direction}, {self.selection}, "
            f"{self.combined_similarity})"
        )

    def to_spec(self) -> str:
        """The compact spec form, e.g. ``"Average,Both,Thr(0.5)+Delta(0.02),Average"``.

        The spec round-trips through :func:`combination_from_spec` (and embeds
        into the full strategy grammar of :meth:`repro.core.strategy.MatchStrategy.to_spec`)
        for the named aggregation / direction / selection / combined-similarity
        strategies; a :class:`~repro.combination.aggregation.WeightedAggregation`
        carries weights the textual form cannot express and does not round-trip.
        """
        return (
            f"{self.aggregation},{self.direction},{self.selection},"
            f"{self.combined_similarity}"
        )

    @classmethod
    def parse(cls, spec: str) -> "CombinationStrategy":
        """Parse a spec produced by :meth:`to_spec` (see :func:`combination_from_spec`)."""
        return combination_from_spec(spec)

    def replaced(
        self,
        aggregation: Optional[AggregationStrategy] = None,
        direction: Optional[DirectionStrategy] = None,
        selection: Optional[SelectionStrategy] = None,
        combined_similarity: Optional[CombinedSimilarityStrategy] = None,
    ) -> "CombinationStrategy":
        """A copy with some sub-strategies replaced."""
        return CombinationStrategy(
            aggregation=aggregation or self.aggregation,
            direction=direction or self.direction,
            selection=selection or self.selection,
            combined_similarity=combined_similarity or self.combined_similarity,
        )

    def __str__(self) -> str:
        return self.describe()


def default_combination() -> CombinationStrategy:
    """The paper's default: ``(Average, Both, Threshold(0.5)+Delta(0.02), Average)``.

    Section 7.2 identifies this combination as the most effective default for
    no-reuse matchers and adopts it for the remaining experiments.
    """
    return CombinationStrategy(
        aggregation=AVERAGE,
        direction=BOTH,
        selection=CombinedSelection([Threshold(0.5), MaxDelta(0.02)]),
        combined_similarity=AVERAGE_COMBINED,
    )


#: One selection term: a strategy name, optionally followed by a parenthesised
#: argument list, e.g. ``MaxN(2)``, ``Delta(0.02,rel)``, ``Thr(0.5)``.
_SELECTION_TERM = re.compile(r"^([A-Za-z]+\d*)\s*(?:\(\s*([^()]*?)\s*\))?$")


def _parse_selection_term(part: str, spec: str) -> SelectionStrategy:
    term = _SELECTION_TERM.match(part)
    if term is None:
        raise StrategyError(f"malformed selection term {part!r} in {spec!r}")
    name, raw_arguments = term.group(1), term.group(2)
    arguments = [a.strip() for a in (raw_arguments or "").split(",") if a.strip()]
    lowered = name.lower()
    # Paper-style names fold the count into the name: Max1, Max2, MaxN3.
    trailing = re.match(r"^(maxn?)(\d+)$", lowered)
    if trailing and not arguments:
        lowered, arguments = trailing.group(1), [trailing.group(2)]
    try:
        if lowered in ("maxn", "max"):
            return MaxN(int(arguments[0]) if arguments else 1)
        if lowered in ("delta", "maxdelta"):
            delta = float(arguments[0]) if arguments else 0.02
            relative = True
            if len(arguments) > 1:
                mode = arguments[1].lower()
                if mode not in ("rel", "abs"):
                    raise StrategyError(
                        f"Delta mode must be 'rel' or 'abs', got {arguments[1]!r} in {spec!r}"
                    )
                relative = mode == "rel"
            return MaxDelta(delta, relative=relative)
        if lowered in ("thr", "threshold"):
            return Threshold(float(arguments[0]) if arguments else 0.5)
    except ValueError as error:
        raise StrategyError(f"invalid argument in selection {part!r}: {error}") from error
    raise StrategyError(f"unknown selection strategy {part!r} in {spec!r}")


def parse_selection(spec: str) -> SelectionStrategy:
    """Parse a selection specification such as ``"Thr(0.5)+Delta(0.02)"`` or ``"MaxN(2)"``.

    The accepted grammar mirrors the names used in the paper's Table 6:
    ``MaxN(n)`` (also ``Max1`` .. ``Max4``), ``Delta(d)`` / ``Delta(d,rel)`` /
    ``Delta(d,abs)``, ``Thr(t)`` and ``+``-separated combinations.  The ``str``
    form of every selection strategy parses back to an equal strategy.
    """
    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise StrategyError(f"empty selection specification: {spec!r}")
    strategies: List[SelectionStrategy] = [
        _parse_selection_term(part, spec) for part in parts
    ]
    if len(strategies) == 1:
        return strategies[0]
    return CombinedSelection(strategies)


def split_top_level(text: str, separator: str = ",") -> List[str]:
    """Split ``text`` on ``separator`` occurrences outside any parentheses.

    The building block of the spec grammar: commas inside ``Delta(0.02,rel)``
    must not split the combination 4-tuple they appear in.
    """
    parts: List[str] = []
    current: List[str] = []
    depth = 0
    for character in text:
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
            if depth < 0:
                raise StrategyError(f"unbalanced parentheses in {text!r}")
        if character == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(character)
    if depth != 0:
        raise StrategyError(f"unbalanced parentheses in {text!r}")
    parts.append("".join(current))
    return [part.strip() for part in parts]


def _strip_outer_parentheses(text: str) -> str:
    """Remove one pair of outer parentheses if they enclose the whole text."""
    if not (text.startswith("(") and text.endswith(")")):
        return text
    depth = 0
    for index, character in enumerate(text):
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
            if depth == 0 and index < len(text) - 1:
                return text  # the first "(" closes early: not an outer pair
    return text[1:-1].strip()


def combination_from_spec(spec: str) -> CombinationStrategy:
    """Parse a full combination spec, e.g. ``"Average,Both,Thr(0.5)+Delta(0.02),Average"``.

    The spec lists aggregation, direction, selection and (optionally, default
    ``Average``) combined similarity, separated by top-level commas; the
    paper-style parenthesised tuple notation of :meth:`CombinationStrategy.describe`
    is accepted as well.
    """
    text = _strip_outer_parentheses(spec.strip())
    parts = [part for part in split_top_level(text, ",")]
    if any(not part for part in parts):
        raise StrategyError(f"empty sub-strategy in combination spec {spec!r}")
    if len(parts) == 3:
        parts.append("Average")
    if len(parts) != 4:
        raise StrategyError(
            f"a combination spec needs 3 or 4 sub-strategies "
            f"(aggregation, direction, selection[, combined similarity]), got {spec!r}"
        )
    return CombinationStrategy(
        aggregation=aggregation_by_name(parts[0]),
        direction=direction_by_name(parts[1]),
        selection=parse_selection(parts[2]),
        combined_similarity=combined_similarity_by_name(parts[3]),
    )


def parse_combination(
    aggregation: str = "Average",
    direction: str = "Both",
    selection: str = "Thr(0.5)+Delta(0.02)",
    combined_similarity: str = "Average",
) -> CombinationStrategy:
    """Build a :class:`CombinationStrategy` from the four textual sub-strategy names.

    This is the historical per-part entry point; :func:`combination_from_spec`
    parses the same information from one spec string.
    """
    return CombinationStrategy(
        aggregation=aggregation_by_name(aggregation),
        direction=direction_by_name(direction),
        selection=parse_selection(selection),
        combined_similarity=combined_similarity_by_name(combined_similarity),
    )
