"""Stable-marriage based match candidate selection (the paper's future work).

Section 7.5 names "more comprehensive strategies for match candidate
selection, such as the stable marriage approach [Similarity Flooding]" as
future work.  This module provides that extension: instead of selecting
candidates independently per element, the whole similarity matrix is treated
as a preference structure and a *stable* one-to-one assignment is computed --
no two elements would both prefer each other over their assigned partners.

The strategy plugs into the existing pipeline as a
:class:`~repro.combination.direction.DirectionStrategy` replacement: it
consumes the aggregated similarity matrix directly (direction is irrelevant
because the assignment is inherently symmetric) and an optional minimum
similarity keeps clearly dissimilar elements unmatched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.combination.direction import DirectionStrategy, SelectedPair
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import SelectionStrategy


def stable_marriage_pairs(
    matrix: SimilarityMatrix, minimum_similarity: float = 0.0
) -> List[SelectedPair]:
    """Compute a stable one-to-one assignment from a similarity matrix.

    The classic Gale-Shapley algorithm with the source paths proposing in
    descending order of similarity.  Pairs below ``minimum_similarity`` are
    never formed, so elements without a plausible partner stay unmatched.
    """
    source_paths = list(matrix.source_paths)
    target_paths = list(matrix.target_paths)

    preferences = {
        source: [
            target for target, similarity in matrix.ranked_targets(source)
            if similarity > max(0.0, minimum_similarity - 1e-12)
        ]
        for source in source_paths
    }
    next_choice = {source: 0 for source in source_paths}
    engaged_to: Dict[object, object] = {}
    free_sources = [source for source in source_paths if preferences[source]]

    def prefers(target, challenger, incumbent) -> bool:
        challenger_sim = matrix.get(challenger, target)
        incumbent_sim = matrix.get(incumbent, target)
        if challenger_sim != incumbent_sim:
            return challenger_sim > incumbent_sim
        # deterministic tie-break by path name
        return challenger.names < incumbent.names

    while free_sources:
        source = free_sources.pop(0)
        choices = preferences[source]
        while next_choice[source] < len(choices):
            target = choices[next_choice[source]]
            next_choice[source] += 1
            incumbent = engaged_to.get(target)
            if incumbent is None:
                engaged_to[target] = source
                break
            if prefers(target, source, incumbent):
                engaged_to[target] = source
                free_sources.append(incumbent)
                break
        # otherwise the source has exhausted its preference list and stays free

    pairs: List[SelectedPair] = []
    for target, source in engaged_to.items():
        similarity = matrix.get(source, target)
        if similarity >= minimum_similarity and similarity > 0.0:
            pairs.append((source, target, similarity))
    return sorted(pairs, key=lambda p: (p[0].names, p[1].names))


class StableMarriageDirection(DirectionStrategy):
    """A direction/selection replacement producing a stable 1:1 assignment.

    The configured selection strategy is applied *after* the assignment, so
    e.g. a Threshold can still prune weak stable pairs.
    """

    name = "StableMarriage"

    def __init__(self, minimum_similarity: float = 0.0):
        if not 0.0 <= minimum_similarity <= 1.0:
            raise ValueError(
                f"minimum_similarity must be within [0, 1], got {minimum_similarity}"
            )
        self.minimum_similarity = float(minimum_similarity)

    def select_pairs(
        self, matrix: SimilarityMatrix, selection: Optional[SelectionStrategy] = None
    ) -> List[SelectedPair]:
        pairs = stable_marriage_pairs(matrix, self.minimum_similarity)
        if selection is None:
            return pairs
        accepted: List[SelectedPair] = []
        for source, target, similarity in pairs:
            if selection.select([(target, similarity)]):
                accepted.append((source, target, similarity))
        return accepted
