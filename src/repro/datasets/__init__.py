"""Bundled datasets: Figure 1 example schemas, the five PO test schemas and gold standards."""

from repro.datasets.figure1 import (
    PO1_DDL,
    PO2_XSD,
    figure1_reference_mapping,
    load_figure1_schemas,
    load_po1,
    load_po2,
)
from repro.datasets.generators import GeneratedPair, generate_pair, generate_schema, generate_size_sweep
from repro.datasets.gold_standard import (
    MatchTask,
    TASK_PAIRS,
    build_reference_mapping,
    load_all_tasks,
    load_task,
    manual_mappings_for_reuse,
    task_by_name,
)
from repro.datasets.purchase_orders import (
    SCHEMA_ALIASES,
    load_all_schemas,
    load_all_with_concepts,
    load_schema,
    load_schema_with_concepts,
    schema_names,
)

__all__ = [
    "GeneratedPair",
    "MatchTask",
    "PO1_DDL",
    "PO2_XSD",
    "SCHEMA_ALIASES",
    "TASK_PAIRS",
    "build_reference_mapping",
    "figure1_reference_mapping",
    "generate_pair",
    "generate_schema",
    "generate_size_sweep",
    "load_all_schemas",
    "load_all_tasks",
    "load_all_with_concepts",
    "load_figure1_schemas",
    "load_po1",
    "load_po2",
    "load_schema",
    "load_schema_with_concepts",
    "load_task",
    "manual_mappings_for_reuse",
    "schema_names",
    "task_by_name",
]
