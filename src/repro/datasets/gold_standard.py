"""Gold-standard mappings and the 10 match tasks of the evaluation (Section 7.1).

The paper defined 10 match tasks (every pair of the 5 test schemas) and
manually determined the real correspondences of each.  Here the "manual"
mappings are derived from the per-path *concept annotation* carried by the
bundled schemas (:mod:`repro.datasets.purchase_orders`): two paths correspond
exactly when they denote the same concept.  All gold similarities are 1.0, as
in the paper ("in our manually derived match results, all element similarities
are set to 1.0").
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

from repro.datasets.purchase_orders import (
    SCHEMA_ALIASES,
    load_schema_with_concepts,
    schema_names,
)
from repro.model.mapping import Correspondence, MatchResult
from repro.model.schema import Schema


@dataclasses.dataclass(frozen=True)
class MatchTask:
    """One evaluation match task: two schemas and the reference (gold) mapping."""

    source_alias: int
    target_alias: int
    source: Schema
    target: Schema
    reference: MatchResult

    @property
    def name(self) -> str:
        """The paper-style task label, e.g. ``"1<->3"``."""
        return f"{self.source_alias}<->{self.target_alias}"

    @property
    def schema_pair(self) -> Tuple[str, str]:
        """The ``(source name, target name)`` pair."""
        return (self.source.name, self.target.name)

    @property
    def total_paths(self) -> int:
        """``|S1| + |S2|`` -- the '#All Paths' measure of Figure 8."""
        return len(self.source.paths()) + len(self.target.paths())

    @property
    def match_count(self) -> int:
        """The number of real correspondences ('#Matches' in Figure 8)."""
        return len(self.reference)

    @property
    def matched_path_count(self) -> int:
        """The number of distinct matched paths of both schemas ('#Matched Paths')."""
        return len(self.reference.matched_sources()) + len(self.reference.matched_targets())

    @property
    def schema_similarity(self) -> float:
        """The Dice schema similarity: matched paths over all paths (Figure 8)."""
        if self.total_paths == 0:
            return 0.0
        return self.matched_path_count / self.total_paths


#: The 10 task pairs in the order used by the paper's figures.
TASK_PAIRS: Tuple[Tuple[int, int], ...] = tuple(
    (first, second) for first, second in itertools.combinations(sorted(SCHEMA_ALIASES), 2)
)


def build_reference_mapping(
    source: Schema,
    source_concepts: Dict[str, Optional[str]],
    target: Schema,
    target_concepts: Dict[str, Optional[str]],
) -> MatchResult:
    """Derive the gold mapping of two schemas from their concept annotations."""
    target_by_concept: Dict[str, List[str]] = {}
    for path_string, concept in target_concepts.items():
        if concept is not None:
            target_by_concept.setdefault(concept, []).append(path_string)

    reference = MatchResult(source, target, name=f"{source.name}<->{target.name} (gold)")
    for source_string, concept in sorted(source_concepts.items()):
        if concept is None or concept not in target_by_concept:
            continue
        source_path = source.find_path(source_string)
        for target_string in target_by_concept[concept]:
            target_path = target.find_path(target_string)
            reference.add(Correspondence(source_path, target_path, 1.0))
    return reference


def load_task(source_alias: int, target_alias: int) -> MatchTask:
    """Load one match task by the paper aliases of its schemas (e.g. ``load_task(1, 3)``)."""
    source, source_concepts = load_schema_with_concepts(source_alias)
    target, target_concepts = load_schema_with_concepts(target_alias)
    reference = build_reference_mapping(source, source_concepts, target, target_concepts)
    return MatchTask(
        source_alias=source_alias,
        target_alias=target_alias,
        source=source,
        target=target,
        reference=reference,
    )


def load_all_tasks() -> List[MatchTask]:
    """All 10 match tasks in paper order."""
    return [load_task(first, second) for first, second in TASK_PAIRS]


def task_by_name(name: str) -> MatchTask:
    """Load a task from its label, e.g. ``"2<->5"``."""
    cleaned = name.replace(" ", "")
    for separator in ("<->", "-", ","):
        if separator in cleaned:
            first_text, second_text = cleaned.split(separator, 1)
            return load_task(int(first_text), int(second_text))
    raise ValueError(f"cannot parse task name {name!r}; expected something like '2<->5'")


def manual_mappings_for_reuse() -> List[MatchResult]:
    """The gold mappings of all 10 tasks (what SchemaM reuses in Section 7.3)."""
    return [task.reference for task in load_all_tasks()]
