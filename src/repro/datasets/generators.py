"""Synthetic schema generation for scaling and sensitivity studies.

The paper observes (Section 7.4) that match quality degrades with growing
schema size.  The bundled test schemas cover sizes between roughly 40 and 150
paths; the generator in this module produces purchase-order-like schema pairs
of configurable size together with a derived gold standard, so the sensitivity
analysis and the ablation benches can sweep schema size well beyond the five
fixed schemas.

Generation is fully deterministic: the same parameters always yield the same
schemas (a ``seed`` merely selects a different deterministic variation).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.model.element import ElementKind, SchemaElement
from repro.model.mapping import Correspondence, MatchResult
from repro.model.schema import Schema

#: Vocabulary pools used to synthesise element names.  The first spelling is the
#: "clean" form, the second an abbreviated / alternative form so the two
#: generated schemas of a pair are heterogeneous the same way the real test
#: schemas are.
_FIELD_VOCABULARY: Tuple[Tuple[str, str], ...] = (
    ("Number", "No"),
    ("Date", "Dt"),
    ("Name", "Nm"),
    ("Street", "Str"),
    ("City", "Cty"),
    ("State", "Region"),
    ("PostalCode", "Zip"),
    ("Country", "Ctry"),
    ("Telephone", "Phone"),
    ("Email", "Mail"),
    ("Quantity", "Qty"),
    ("Price", "Amt"),
    ("Description", "Desc"),
    ("Total", "Sum"),
    ("Currency", "Curr"),
    ("Reference", "Ref"),
    ("Status", "Stat"),
    ("Category", "Cat"),
    ("Comment", "Note"),
    ("Identifier", "Id"),
)

_SECTION_VOCABULARY: Tuple[Tuple[str, str], ...] = (
    ("Header", "Head"),
    ("Buyer", "Customer"),
    ("Supplier", "Vendor"),
    ("ShipTo", "DeliverTo"),
    ("BillTo", "InvoiceTo"),
    ("Items", "Lines"),
    ("Summary", "Totals"),
    ("Payment", "Pmt"),
    ("Transport", "Shipping"),
    ("Remarks", "Notes"),
)

_TYPES = ("string", "decimal", "integer", "date")


@dataclasses.dataclass(frozen=True)
class GeneratedPair:
    """A generated schema pair with its derived gold standard."""

    source: Schema
    target: Schema
    reference: MatchResult


def _pseudo_random(seed: int, *values: int) -> int:
    """A tiny deterministic mixing function (no global random state involved)."""
    state = seed & 0xFFFFFFFF
    for value in values:
        state = (state * 1103515245 + value * 2654435761 + 12345) & 0xFFFFFFFF
    return state


def generate_schema(
    name: str,
    sections: int = 6,
    fields_per_section: int = 6,
    variant: int = 0,
    overlap: float = 0.7,
    seed: int = 7,
) -> Tuple[Schema, Dict[str, str]]:
    """Generate one purchase-order-like schema and its per-path concept annotation.

    Parameters
    ----------
    sections / fields_per_section:
        Shape parameters: the schema gets ``sections`` inner elements, each with
        ``fields_per_section`` leaves.
    variant:
        0 uses the clean spelling of each vocabulary entry, 1 the abbreviated
        alternative, so two schemas generated with different variants are
        heterogeneous but semantically aligned.
    overlap:
        Fraction of leaves that receive a shared concept (and therefore can be
        matched); the remainder get schema-private concepts.
    """
    if sections < 1 or fields_per_section < 1:
        raise ValueError("sections and fields_per_section must both be >= 1")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be within [0, 1], got {overlap}")

    schema = Schema(name)
    concepts: Dict[str, str] = {}
    for section_index in range(sections):
        section_clean, section_alt = _SECTION_VOCABULARY[section_index % len(_SECTION_VOCABULARY)]
        section_suffix = "" if section_index < len(_SECTION_VOCABULARY) else str(
            section_index // len(_SECTION_VOCABULARY) + 1
        )
        section_name = (section_alt if variant else section_clean) + section_suffix
        section_concept = f"section.{section_clean.lower()}{section_suffix}"
        section_element = schema.add_element(section_name, kind=ElementKind.ELEMENT)
        concepts[f"{name}.{section_name}"] = section_concept
        for field_index in range(fields_per_section):
            field_clean, field_alt = _FIELD_VOCABULARY[
                (_pseudo_random(seed, section_index, field_index) + field_index)
                % len(_FIELD_VOCABULARY)
            ]
            field_name = (field_alt if variant else field_clean) + (
                "" if field_index < len(_FIELD_VOCABULARY) else str(field_index)
            )
            source_type = _TYPES[_pseudo_random(seed, section_index, field_index, 3) % len(_TYPES)]
            leaf_name = f"{section_name}{field_name}" if variant else field_name
            element = schema.add_element(
                leaf_name, parent=section_element, kind=ElementKind.ELEMENT,
                source_type=source_type,
            )
            shared = (
                _pseudo_random(seed, section_index, field_index, 11) % 1000
                < overlap * 1000
            )
            if shared:
                concept = f"{section_clean.lower()}{section_suffix}.{field_clean.lower()}"
            else:
                concept = f"{name.lower()}.private.{section_index}.{field_index}"
            concepts[f"{name}.{section_name}.{leaf_name}"] = concept
    return schema, concepts


def generate_pair(
    sections: int = 6,
    fields_per_section: int = 6,
    overlap: float = 0.7,
    seed: int = 7,
    source_name: str = "SyntheticA",
    target_name: str = "SyntheticB",
) -> GeneratedPair:
    """Generate a heterogeneous schema pair plus the derived gold standard."""
    source, source_concepts = generate_schema(
        source_name, sections, fields_per_section, variant=0, overlap=overlap, seed=seed
    )
    target, target_concepts = generate_schema(
        target_name, sections, fields_per_section, variant=1, overlap=overlap, seed=seed
    )
    target_by_concept: Dict[str, List[str]] = {}
    for path_string, concept in target_concepts.items():
        target_by_concept.setdefault(concept, []).append(path_string)
    reference = MatchResult(source, target, name=f"{source_name}<->{target_name} (gold)")
    for path_string, concept in source_concepts.items():
        if concept.startswith(source_name.lower() + ".private"):
            continue
        for target_string in target_by_concept.get(concept, ()):
            reference.add(
                Correspondence(source.find_path(path_string), target.find_path(target_string), 1.0)
            )
    return GeneratedPair(source=source, target=target, reference=reference)


#: Replacement names used by :func:`mutate_schema` renames.  Deliberately
#: *off-domain* (no overlap with the purchase-order vocabularies): a heavily
#: renamed mutant drifts away from every real schema, which is exactly what a
#: corpus decoy should do -- plausible shape, dissimilar vocabulary.
_DECOY_VOCABULARY: Tuple[str, ...] = (
    "Alpha", "Beacon", "Cobalt", "Drift", "Ember", "Falcon", "Glacier",
    "Harbor", "Indigo", "Jasper", "Krypton", "Lumen", "Meadow", "Nimbus",
    "Onyx", "Pylon", "Quartz", "Raven", "Sierra", "Tundra", "Umber",
    "Vertex", "Willow", "Xenon", "Yonder", "Zephyr", "Basalt", "Cinder",
    "Dune", "Echo", "Fjord", "Grove", "Heath", "Islet", "Juniper",
    "Kelp", "Lagoon", "Mesa", "Nectar", "Orchid", "Prairie", "Reef",
    "Summit", "Thicket", "Upland", "Vale", "Wharf", "Yarrow", "Zenith",
    "Arbor", "Bluff", "Cascade", "Delta", "Estuary", "Fathom", "Geyser",
    "Hollow", "Inlet", "Knoll", "Ledge",
)


def _decoy_name(seed: int, *values: int) -> str:
    """A deterministic two-word decoy name (~3.5k distinct combinations)."""
    first = _DECOY_VOCABULARY[
        _pseudo_random(seed, 17, *values) % len(_DECOY_VOCABULARY)
    ]
    second = _DECOY_VOCABULARY[
        _pseudo_random(seed, 31, *values) % len(_DECOY_VOCABULARY)
    ]
    return first + second


def mutate_schema(
    schema: Schema,
    name: str,
    seed: int = 7,
    rename_rate: float = 0.7,
    graft_sections: int = 2,
    graft_fields: int = 4,
    drift_rate: float = 0.3,
) -> Schema:
    """A deterministic mutated variant of ``schema`` (renames, grafts, drift).

    Three mutation families, mirroring how real schema repositories diverge:

    * **renames** -- each element is renamed with probability ``rename_rate``
      to a deterministic off-domain decoy name, so heavily mutated variants
      drift away from the original's vocabulary;
    * **subtree grafts** -- ``graft_sections`` extra inner elements with
      ``graft_fields`` leaves each are grafted under the root;
    * **type drift** -- each leaf's source type is re-rolled with
      probability ``drift_rate``.

    The same ``(schema, name, seed, rates)`` always yields the identical
    variant -- no global random state is involved -- so generated corpora are
    reproducible across processes and platforms.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1
    >>> a = mutate_schema(load_po1(), "V1", seed=3)
    >>> b = mutate_schema(load_po1(), "V1", seed=3)
    >>> [p.dotted() for p in a.paths()] == [p.dotted() for p in b.paths()]
    True
    >>> mutate_schema(load_po1(), "V2", seed=4).name
    'V2'
    """
    if not 0.0 <= rename_rate <= 1.0 or not 0.0 <= drift_rate <= 1.0:
        raise ValueError("rename_rate and drift_rate must be within [0, 1]")
    mutated = Schema(name)
    # Rename decisions are keyed per *source element* (by its original dotted
    # occurrence order), so shared fragments stay consistent within a path
    # walk and the rebuild below is a plain tree unfolding of the path set.
    by_prefix: Dict[Tuple[str, ...], SchemaElement] = {}
    renamed: Dict[Tuple[str, ...], str] = {}
    for index, path in enumerate(schema.paths()):
        original_names = path.names[1:]  # drop the schema-root occurrence
        prefix = tuple(original_names)
        new_name = renamed.get(prefix)
        if new_name is None:
            if _pseudo_random(seed, 1, index) % 1000 < rename_rate * 1000:
                new_name = _decoy_name(seed, 2, index)
            else:
                new_name = path.name
            renamed[prefix] = new_name
        source_type = path.leaf.source_type
        if (
            source_type is not None
            and _pseudo_random(seed, 3, index) % 1000 < drift_rate * 1000
        ):
            source_type = _TYPES[_pseudo_random(seed, 5, index) % len(_TYPES)]
        parent = by_prefix.get(prefix[:-1])
        element = mutated.add_element(
            new_name,
            parent=parent,
            kind=path.leaf.kind,
            source_type=source_type,
        )
        by_prefix[prefix] = element
    for graft_index in range(max(int(graft_sections), 0)):
        section = mutated.add_element(
            _decoy_name(seed, 7, graft_index), kind=ElementKind.ELEMENT
        )
        for field_index in range(max(int(graft_fields), 0)):
            mutated.add_element(
                _decoy_name(seed, 11, graft_index, field_index),
                parent=section,
                kind=ElementKind.ELEMENT,
                source_type=_TYPES[
                    _pseudo_random(seed, 13, graft_index, field_index)
                    % len(_TYPES)
                ],
            )
    return mutated


def generate_corpus(
    count: int,
    seed: int = 7,
    bases: Optional[List[Schema]] = None,
    prefix: str = "Corpus",
    rename_rate: float = 0.7,
    drift_rate: float = 0.3,
) -> List[Schema]:
    """Generate ``count`` mutated decoy schemas for corpus-search workloads.

    The decoys are deterministic :func:`mutate_schema` variants of the
    Figure-1 / purchase-order test schemas (or the given ``bases``), cycled
    round-robin with a per-variant seed, named ``{prefix}{i:04d}``.  With the
    default mutation intensity the decoys keep realistic purchase-order
    *shape* but drift far enough in vocabulary that the genuine gold-standard
    schemas still out-rank them for gold queries -- the property the search
    benchmarks gate on (recall@10 = 1.0).

    Examples
    --------
    >>> corpus = generate_corpus(6, seed=11)
    >>> [schema.name for schema in corpus]
    ['Corpus0000', 'Corpus0001', 'Corpus0002', 'Corpus0003', 'Corpus0004', 'Corpus0005']
    >>> again = generate_corpus(6, seed=11)
    >>> all(
    ...     [p.dotted() for p in a.paths()] == [p.dotted() for p in b.paths()]
    ...     for a, b in zip(corpus, again)
    ... )
    True
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if bases is None:
        from repro.datasets.figure1 import load_po1, load_po2
        from repro.datasets.purchase_orders import load_all_schemas

        bases = [load_po1(), load_po2(), *load_all_schemas().values()]
    if not bases:
        raise ValueError("bases must not be empty")
    return [
        mutate_schema(
            bases[index % len(bases)],
            f"{prefix}{index:04d}",
            seed=_pseudo_random(seed, index) & 0x7FFFFFFF,
            rename_rate=rename_rate,
            drift_rate=drift_rate,
        )
        for index in range(count)
    ]


def generate_size_sweep(
    sizes: Tuple[int, ...] = (4, 8, 12, 16),
    fields_per_section: int = 6,
    overlap: float = 0.7,
    seed: int = 7,
) -> List[GeneratedPair]:
    """Generate pairs of increasing size for the sensitivity sweep (Figure 13 extension)."""
    return [
        generate_pair(
            sections=size,
            fields_per_section=fields_per_section,
            overlap=overlap,
            seed=seed + size,
            source_name=f"SyntheticA{size}",
            target_name=f"SyntheticB{size}",
        )
        for size in sizes
    ]
