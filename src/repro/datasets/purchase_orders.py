"""The five purchase-order test schemas of the evaluation (Section 7.1, Table 5).

The paper evaluated COMA on five XML purchase-order schemas from
www.biztalk.org (CIDX, Excel, Noris, Paragon, Apertum).  Those schemas are no
longer publicly available, so this module provides a faithful *substitution*
(documented in DESIGN.md): five hand-written purchase-order schemas that

* reproduce the structural characteristics of Table 5 closely (relative sizes,
  shared fragments causing path counts to exceed node counts, nesting depth),
* exhibit the same heterogeneity devices the paper describes -- abbreviation
  heavy vs. spelled-out names, ship/deliver and bill/invoice synonym
  conflicts, flat vs. deeply nested structure, shared ``Address`` / ``Contact``
  / ``Amount`` fragments,
* carry a *concept annotation* per path from which the manually-determined
  gold standard mappings of the 10 match tasks are derived
  (:mod:`repro.datasets.gold_standard`).

Schemas are referred to by their paper aliases 1..5.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

#: Mapping from the paper's numeric aliases to schema names.
SCHEMA_ALIASES: Dict[int, str] = {
    1: "CIDX",
    2: "Excel",
    3: "Noris",
    4: "Paragon",
    5: "Apertum",
}

#: A concept identifier (shared vocabulary across all five schemas) or None.
Concept = Optional[str]


@dataclasses.dataclass(frozen=True)
class Frag:
    """A reference to a schema-local shared fragment within a schema spec."""

    fragment: str


#: Spec node forms:
#:   leaf:       (name, concept, source_type_or_None)
#:   inner:      (name, concept, [child specs])
#:   fragment:   (name, concept, Frag("FragmentName"))  - wrapper element containing the fragment
SpecNode = Tuple[str, Concept, Union[Optional[str], List, Frag]]

#: A fragment spec: (fragment root name, root-relative concept, [child specs]).
FragmentSpec = Tuple[str, Concept, List]


def _build_schema(
    name: str,
    elements: Sequence[SpecNode],
    fragments: Optional[Dict[str, FragmentSpec]] = None,
) -> Tuple[Schema, Dict[str, Concept]]:
    """Interpret a declarative spec into a schema graph plus per-path concepts."""
    schema = Schema(name)
    concepts: Dict[str, Concept] = {}
    fragment_specs = fragments or {}
    built_fragments: Dict[str, Tuple[SchemaElement, List[Tuple[Tuple[str, ...], Concept]]]] = {}

    def record(path_names: Tuple[str, ...], concept: Concept) -> None:
        concepts[".".join(path_names)] = concept

    def build_fragment(fragment_name: str):
        if fragment_name in built_fragments:
            return built_fragments[fragment_name]
        if fragment_name not in fragment_specs:
            raise SchemaError(f"schema {name!r} references unknown fragment {fragment_name!r}")
        root_name, root_concept, children = fragment_specs[fragment_name]
        fragment_root = schema.add_detached_element(root_name, kind=ElementKind.TYPE)
        relative: List[Tuple[Tuple[str, ...], Concept]] = [((root_name,), root_concept)]

        def build_relative(parent: SchemaElement, prefix: Tuple[str, ...],
                           prefix_concept: Concept, nodes: Sequence[SpecNode]) -> None:
            for node_name, node_concept, payload in nodes:
                names = prefix + (node_name,)
                if isinstance(payload, list):
                    element = schema.add_element(node_name, parent=parent, kind=ElementKind.ELEMENT)
                    relative.append((names, node_concept))
                    build_relative(element, names, node_concept, payload)
                elif isinstance(payload, Frag):
                    raise SchemaError("nested fragment references inside fragments are not supported")
                else:
                    schema.add_element(node_name, parent=parent, kind=ElementKind.ELEMENT,
                                       source_type=payload)
                    relative.append((names, node_concept))

        build_relative(fragment_root, (root_name,), root_concept, children)
        built_fragments[fragment_name] = (fragment_root, relative)
        return built_fragments[fragment_name]

    def combine_concept(prefix: Concept, relative: Concept) -> Concept:
        if relative is None or prefix is None:
            return None
        if relative == "":
            return prefix
        return f"{prefix}.{relative}"

    def build(parent: SchemaElement, parent_names: Tuple[str, ...],
              nodes: Sequence[SpecNode]) -> None:
        for node_name, node_concept, payload in nodes:
            names = parent_names + (node_name,)
            if isinstance(payload, Frag):
                # The wrapper element is an artefact of fragment reuse; its
                # concept prefix applies to the fragment's paths, while the
                # wrapper path itself stays unannotated to avoid duplicating
                # the enclosing section's concept.
                wrapper = schema.add_element(node_name, parent=parent, kind=ElementKind.ELEMENT)
                record(names, None)
                fragment_root, relative = build_fragment(payload.fragment)
                schema.add_link(wrapper, fragment_root)
                for relative_names, relative_concept in relative:
                    record(names + relative_names,
                           combine_concept(node_concept, relative_concept))
            elif isinstance(payload, list):
                element = schema.add_element(node_name, parent=parent, kind=ElementKind.ELEMENT)
                record(names, node_concept)
                build(element, names, payload)
            else:
                schema.add_element(node_name, parent=parent, kind=ElementKind.ELEMENT,
                                   source_type=payload)
                record(names, node_concept)

    build(schema.root, (name,), elements)
    return schema, concepts


# ---------------------------------------------------------------------------
# Schema 1 - CIDX: flat, abbreviation-heavy, no shared fragments.
# ---------------------------------------------------------------------------

def build_cidx() -> Tuple[Schema, Dict[str, Concept]]:
    """Schema 1 (CIDX): flat structure, heavily abbreviated element names."""
    elements: List[SpecNode] = [
        ("OrderHeader", "header", [
            ("poNo", "order.number", "string"),
            ("poDate", "order.date", "date"),
            ("poTypeCode", None, "string"),
            ("currCode", "order.currency", "string"),
            ("pmtTerms", "payment.terms", "string"),
            ("taxAmt", "summary.tax", "decimal"),
        ]),
        ("Contact", "buyer.contact", [
            ("contactName", "buyer.contact.name", "string"),
            ("contactPhone", "buyer.contact.phone", "string"),
            ("contactEmail", "buyer.contact.email", "string"),
            ("contactFax", None, "string"),
        ]),
        ("BillTo", "bill", [
            ("billToName", "bill.name", "string"),
            ("billToStr", "bill.address.street", "string"),
            ("billToCity", "bill.address.city", "string"),
            ("billToSt", "bill.address.state", "string"),
            ("billToZip", "bill.address.zip", "string"),
            ("billToCtry", "bill.address.country", "string"),
        ]),
        ("ShipTo", "ship", [
            ("shipToName", "ship.name", "string"),
            ("shipToStr", "ship.address.street", "string"),
            ("shipToCity", "ship.address.city", "string"),
            ("shipToSt", "ship.address.state", "string"),
            ("shipToZip", "ship.address.zip", "string"),
            ("shipToCtry", "ship.address.country", "string"),
        ]),
        ("ItemList", "items", [
            ("Item", "item", [
                ("itemNo", "item.number", "string"),
                ("partNo", "item.part", "string"),
                ("itemDesc", "item.description", "string"),
                ("qty", "item.quantity", "decimal"),
                ("uom", "item.uom", "string"),
                ("unitPrice", "item.price", "decimal"),
                ("lineTot", "item.total", "decimal"),
                ("reqDelivDate", "item.deliverydate", "date"),
            ]),
        ]),
        ("Summary", "summary", [
            ("itemCnt", "summary.itemcount", "integer"),
            ("subTot", "summary.subtotal", "decimal"),
            ("freightAmt", "summary.freight", "decimal"),
            ("totAmt", "summary.total", "decimal"),
        ]),
    ]
    return _build_schema("CIDX", elements)


# ---------------------------------------------------------------------------
# Schema 2 - Excel: spelled-out names, shared Address and Contact fragments.
# ---------------------------------------------------------------------------

def build_excel() -> Tuple[Schema, Dict[str, Concept]]:
    """Schema 2 (Excel): fully spelled-out names, shared Address/Contact fragments."""
    fragments: Dict[str, FragmentSpec] = {
        "Address": ("Address", "address", [
            ("Street", "address.street", "string"),
            ("City", "address.city", "string"),
            ("State", "address.state", "string"),
            ("PostalCode", "address.zip", "string"),
            ("Country", "address.country", "string"),
        ]),
        "ContactPerson": ("ContactPerson", "contact", [
            ("Name", "contact.name", "string"),
            ("Telephone", "contact.phone", "string"),
            ("Email", "contact.email", "string"),
        ]),
    }
    elements: List[SpecNode] = [
        ("Header", "header", [
            ("OrderNumber", "order.number", "string"),
            ("OrderDate", "order.date", "date"),
            ("Currency", "order.currency", "string"),
            ("PaymentTerms", "payment.terms", "string"),
        ]),
        ("Buyer", "buyer", [
            ("CompanyName", "buyer.name", "string"),
            ("BuyerAddress", "buyer", Frag("Address")),
            ("BuyerContact", "buyer", Frag("ContactPerson")),
        ]),
        ("Seller", "supplier", [
            ("CompanyName", "supplier.name", "string"),
            ("SellerAddress", "supplier", Frag("Address")),
        ]),
        ("ShippingInformation", "ship", [
            ("ShipToAddress", "ship", Frag("Address")),
            ("ShipToContact", "ship", Frag("ContactPerson")),
            ("ShipDate", "ship.date", "date"),
            ("Carrier", None, "string"),
        ]),
        ("Items", "items", [
            ("LineItem", "item", [
                ("ItemNumber", "item.number", "string"),
                ("Description", "item.description", "string"),
                ("Quantity", "item.quantity", "decimal"),
                ("UnitOfMeasure", "item.uom", "string"),
                ("UnitPrice", "item.price", "decimal"),
                ("ExtendedPrice", "item.total", "decimal"),
            ]),
        ]),
        ("Total", "summary", [
            ("SubTotal", "summary.subtotal", "decimal"),
            ("Tax", "summary.tax", "decimal"),
            ("Freight", "summary.freight", "decimal"),
            ("GrandTotal", "summary.total", "decimal"),
        ]),
    ]
    return _build_schema("Excel", elements, fragments)


# ---------------------------------------------------------------------------
# Schema 3 - Noris: delivery/invoice vocabulary, shared Location/Person fragments.
# ---------------------------------------------------------------------------

def build_noris() -> Tuple[Schema, Dict[str, Concept]]:
    """Schema 3 (Noris): deliver/invoice terminology, shared Location/Person fragments."""
    fragments: Dict[str, FragmentSpec] = {
        "Location": ("Location", "address", [
            ("Street", "address.street", "string"),
            ("City", "address.city", "string"),
            ("District", None, "string"),
            ("PostCode", "address.zip", "string"),
            ("CountryCode", "address.country", "string"),
        ]),
        "Person": ("Person", "contact", [
            ("FullName", "contact.name", "string"),
            ("Phone", "contact.phone", "string"),
            ("Fax", None, "string"),
            ("Mail", "contact.email", "string"),
            ("Department", None, "string"),
            ("Title", None, "string"),
        ]),
    }
    elements: List[SpecNode] = [
        ("DocumentHeader", "header", [
            ("OrderNo", "order.number", "string"),
            ("OrderDate", "order.date", "date"),
            ("CurrencyCode", "order.currency", "string"),
            ("DocumentType", None, "string"),
            ("SalesOrderRef", "order.reference", "string"),
            ("TermsOfPayment", "payment.terms", "string"),
        ]),
        ("Purchaser", "buyer", [
            ("Name1", "buyer.name", "string"),
            ("CustomerNumber", "buyer.number", "string"),
            ("VATNumber", None, "string"),
            ("PurchaserLocation", "buyer", Frag("Location")),
            ("PurchaserPerson", "buyer", Frag("Person")),
        ]),
        ("DeliveryAddress", "ship", [
            ("DeliveryLocation", "ship", Frag("Location")),
            ("DeliveryPerson", "ship", Frag("Person")),
            ("DeliveryDate", "ship.date", "date"),
        ]),
        ("InvoiceAddress", "bill", [
            ("InvoiceName", "bill.name", "string"),
            ("InvoiceLocation", "bill", Frag("Location")),
        ]),
        ("OrderLines", "items", [
            ("Line", "item", [
                ("Position", None, "integer"),
                ("ArticleNumber", "item.number", "string"),
                ("ArticleDescription", "item.description", "string"),
                ("OrderQuantity", "item.quantity", "decimal"),
                ("QuantityUnit", "item.uom", "string"),
                ("Price", "item.price", "decimal"),
                ("LineValue", "item.total", "decimal"),
                ("LineDeliveryDate", "item.deliverydate", "date"),
                ("TaxRate", "item.tax", "decimal"),
            ]),
        ]),
        ("Totals", "summary", [
            ("NetValue", "summary.subtotal", "decimal"),
            ("TaxValue", "summary.tax", "decimal"),
            ("FreightValue", "summary.freight", "decimal"),
            ("GrossValue", "summary.total", "decimal"),
        ]),
        ("Remarks", None, "string"),
    ]
    return _build_schema("Noris", elements, fragments)


# ---------------------------------------------------------------------------
# Schema 4 - Paragon: deep nesting, party sub-structures, small Money fragment.
# ---------------------------------------------------------------------------

def build_paragon() -> Tuple[Schema, Dict[str, Concept]]:
    """Schema 4 (Paragon): deeply nested party structures with a shared Money fragment."""
    fragments: Dict[str, FragmentSpec] = {
        "Money": ("MonetaryAmount", "amount", [
            ("Value", "amount.value", "decimal"),
            ("Currency", "amount.currency", "string"),
        ]),
    }

    def party(concept: str, with_contact: bool, extra: Optional[List[SpecNode]] = None) -> List[SpecNode]:
        children: List[SpecNode] = [
            ("PartyID", f"{concept}.number", "string"),
            ("PartyName", f"{concept}.name", "string"),
            ("PartyAddress", f"{concept}.address", [
                ("AddressLine", f"{concept}.address.street", "string"),
                ("CityName", f"{concept}.address.city", "string"),
                ("Region", f"{concept}.address.state", "string"),
                ("PostalCode", f"{concept}.address.zip", "string"),
                ("CountryCode", f"{concept}.address.country", "string"),
            ]),
        ]
        if with_contact:
            children.append(
                ("PartyContact", f"{concept}.contact", [
                    ("ContactName", f"{concept}.contact.name", "string"),
                    ("ContactTelephone", f"{concept}.contact.phone", "string"),
                    ("ContactEmail", f"{concept}.contact.email", "string"),
                ])
            )
        if extra:
            children.extend(extra)
        return children

    elements: List[SpecNode] = [
        ("PurchaseOrder", "order", [
            ("OrderHeader", "header", [
                ("OrderNumber", "order.number", "string"),
                ("OrderIssueDate", "order.date", "date"),
                ("OrderReference", "order.reference", "string"),
                ("OrderType", None, "string"),
                ("PaymentMethod", "payment.method", "string"),
                ("PaymentTerms", "payment.terms", "string"),
                ("ContractReference", None, "string"),
                ("RequisitionNumber", None, "string"),
                ("BlanketOrderFlag", None, "boolean"),
                ("BuyerParty", "buyer", party("buyer", with_contact=True)),
                ("SupplierParty", "supplier", party("supplier", with_contact=False)),
                ("ShipToParty", "ship", party("ship", with_contact=True, extra=[
                    ("ShipmentDate", "ship.date", "date"),
                    ("TransportMode", None, "string"),
                ])),
                ("BillToParty", "bill", party("bill", with_contact=False)),
            ]),
            ("OrderDetail", "items", [
                ("ItemDetail", "item", [
                    ("LineNumber", None, "integer"),
                    ("ItemIdentifier", "item.number", "string"),
                    ("ManufacturerPartNumber", "item.part", "string"),
                    ("ItemDescription", "item.description", "string"),
                    ("OrderedQuantity", "item.quantity", "decimal"),
                    ("UnitOfMeasurement", "item.uom", "string"),
                    ("UnitPrice", "item.price", Frag("Money")),
                    ("LineItemTotal", "item.total", Frag("Money")),
                    ("RequestedDeliveryDate", "item.deliverydate", "date"),
                    ("TaxCategory", "item.tax", "string"),
                    ("HazardCode", None, "string"),
                    ("CountryOfOrigin", None, "string"),
                ]),
            ]),
            ("TransportInformation", None, [
                ("CarrierName", None, "string"),
                ("ServiceLevel", None, "string"),
                ("Incoterms", None, "string"),
                ("TrackingReference", None, "string"),
            ]),
            ("OrderSummary", "summary", [
                ("NumberOfLines", "summary.itemcount", "integer"),
                ("TotalAmount", "summary.total", Frag("Money")),
                ("TotalTax", "summary.tax", "decimal"),
            ]),
        ]),
    ]
    return _build_schema("Paragon", elements, fragments)


# ---------------------------------------------------------------------------
# Schema 5 - Apertum: largest schema, heavily shared Party and Amount fragments.
# ---------------------------------------------------------------------------

def build_apertum() -> Tuple[Schema, Dict[str, Concept]]:
    """Schema 5 (Apertum): largest schema with heavily shared Party/Amount fragments."""
    fragments: Dict[str, FragmentSpec] = {
        "PartyInfo": ("PartyInfo", "party", [
            ("Name", "name", "string"),
            ("ID", "number", "string"),
            ("Address", "address", [
                ("Street", "address.street", "string"),
                ("City", "address.city", "string"),
                ("State", "address.state", "string"),
                ("Zip", "address.zip", "string"),
                ("Country", "address.country", "string"),
            ]),
            ("Contact", "contact", [
                ("ContactName", "contact.name", "string"),
                ("Phone", "contact.phone", "string"),
                ("Email", "contact.email", "string"),
                ("Fax", None, "string"),
            ]),
        ]),
        "Amount": ("Amount", "amount", [
            ("Value", "amount.value", "decimal"),
            ("CurrencyCode", "amount.currency", "string"),
        ]),
    }
    elements: List[SpecNode] = [
        ("POHeader", "header", [
            ("Number", "order.number", "string"),
            ("IssueDate", "order.date", "date"),
            ("Currency", "order.currency", "string"),
            ("Language", None, "string"),
            ("PaymentTermsText", "payment.terms", "string"),
            ("PaymentMeansCode", "payment.method", "string"),
            ("OrderReference", "order.reference", "string"),
            ("ProfileID", None, "string"),
            ("TestIndicator", None, "boolean"),
        ]),
        ("BuyerParty", "buyer", [
            ("BuyerInfo", "buyer", Frag("PartyInfo")),
        ]),
        ("SupplierParty", "supplier", [
            ("SupplierInfo", "supplier", Frag("PartyInfo")),
        ]),
        ("DeliveryParty", "ship", [
            ("DeliveryInfo", "ship", Frag("PartyInfo")),
            ("DeliveryDate", "ship.date", "date"),
            ("DeliveryInstructions", None, "string"),
        ]),
        ("InvoiceParty", "bill", [
            ("InvoiceInfo", "bill", Frag("PartyInfo")),
        ]),
        ("ItemList", "items", [
            ("ItemLine", "item", [
                ("LineNo", None, "integer"),
                ("ArticleID", "item.number", "string"),
                ("SupplierArticleID", "item.part", "string"),
                ("Description", "item.description", "string"),
                ("Quantity", "item.quantity", "decimal"),
                ("QuantityUnit", "item.uom", "string"),
                ("UnitPrice", "item.price", Frag("Amount")),
                ("LineAmount", "item.total", Frag("Amount")),
                ("RequestedDelivery", "item.deliverydate", "date"),
                ("TaxRate", "item.tax", "decimal"),
                ("AccountingCostCode", None, "string"),
                ("InspectionRequired", None, "boolean"),
            ]),
        ]),
        ("Routing", None, [
            ("RouteID", None, "string"),
            ("TransportModeCode", None, "string"),
            ("CarrierCode", None, "string"),
            ("ServiceLevelCode", None, "string"),
            ("SpecialHandlingNote", None, "string"),
        ]),
        ("Summary", "summary", [
            ("LineCount", "summary.itemcount", "integer"),
            ("TotalNet", "summary.subtotal", Frag("Amount")),
            ("TotalTax", "summary.tax", Frag("Amount")),
            ("TotalFreight", "summary.freight", Frag("Amount")),
            ("TotalDue", "summary.total", Frag("Amount")),
        ]),
        ("Attachments", None, [
            ("Attachment", None, [
                ("FileName", None, "string"),
                ("MimeType", None, "string"),
            ]),
        ]),
    ]
    return _build_schema("Apertum", elements, fragments)


# ---------------------------------------------------------------------------
# Public access helpers
# ---------------------------------------------------------------------------

_BUILDERS = {
    "CIDX": build_cidx,
    "Excel": build_excel,
    "Noris": build_noris,
    "Paragon": build_paragon,
    "Apertum": build_apertum,
}


def schema_names() -> Tuple[str, ...]:
    """The names of the five test schemas in paper order (aliases 1..5)."""
    return tuple(SCHEMA_ALIASES[i] for i in sorted(SCHEMA_ALIASES))


def load_schema(name_or_alias: str | int) -> Schema:
    """Load one test schema by name (``"Noris"``) or paper alias (``3``)."""
    schema, _ = load_schema_with_concepts(name_or_alias)
    return schema


def load_schema_with_concepts(name_or_alias: str | int) -> Tuple[Schema, Dict[str, Concept]]:
    """Load one test schema together with its per-path concept annotation."""
    if isinstance(name_or_alias, int):
        if name_or_alias not in SCHEMA_ALIASES:
            raise SchemaError(f"unknown schema alias {name_or_alias}; expected 1..5")
        name = SCHEMA_ALIASES[name_or_alias]
    else:
        name = name_or_alias
    if name not in _BUILDERS:
        raise SchemaError(
            f"unknown test schema {name!r}; expected one of {', '.join(schema_names())}"
        )
    return _BUILDERS[name]()


def load_all_schemas() -> Dict[str, Schema]:
    """All five test schemas keyed by name, in paper order."""
    return {name: load_schema(name) for name in schema_names()}


def load_all_with_concepts() -> Dict[str, Tuple[Schema, Dict[str, Concept]]]:
    """All five test schemas with their concept annotations, keyed by name."""
    return {name: load_schema_with_concepts(name) for name in schema_names()}
