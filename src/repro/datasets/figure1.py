"""The running example of the paper: the PO1 / PO2 schemas of Figure 1.

PO1 is a relational purchase-order schema (two tables, a foreign key), PO2 an
XML schema with a shared ``Address`` complex type.  Both are reproduced as the
original external texts and imported through the regular importers, so the
example also exercises the import pipeline end to end.  The expected
correspondences used by the quickstart example and the Table 1/2 benchmark are
provided by :func:`figure1_reference_mapping`.
"""

from __future__ import annotations

from typing import Tuple

from repro.importers.relational import RelationalImporter
from repro.importers.xsd import XsdImporter
from repro.model.mapping import MatchResult
from repro.model.schema import Schema

#: The relational DDL of Figure 1a (left-hand side).
PO1_DDL = """
CREATE TABLE ShipTo (
    poNo INT,
    custNo INT REFERENCES Customer,
    shipToStreet VARCHAR(200),
    shipToCity VARCHAR(200),
    shipToZip VARCHAR(20),
    PRIMARY KEY (poNo)
);
CREATE TABLE Customer (
    custNo INT,
    custName VARCHAR(200),
    custStreet VARCHAR(200),
    custCity VARCHAR(200),
    custZip VARCHAR(20),
    PRIMARY KEY (custNo)
);
"""

#: The XML schema of Figure 1a (right-hand side), with the shared Address type.
PO2_XSD = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""


def load_po1() -> Schema:
    """The relational PO1 schema imported into the internal graph representation."""
    return RelationalImporter().import_text(PO1_DDL, "PO1")


def load_po2() -> Schema:
    """The XML PO2 schema imported into the internal graph representation."""
    return XsdImporter().import_text(PO2_XSD, "PO2")


def load_figure1_schemas() -> Tuple[Schema, Schema]:
    """Both Figure 1 schemas, ``(PO1, PO2)``."""
    return load_po1(), load_po2()


def figure1_reference_mapping(po1: Schema | None = None, po2: Schema | None = None) -> MatchResult:
    """The intended correspondences between PO1 and PO2 (all similarities 1.0)."""
    first = po1 if po1 is not None else load_po1()
    second = po2 if po2 is not None else load_po2()
    rows = [
        ("PO1.ShipTo", "PO2.PO2.DeliverTo"),
        ("PO1.ShipTo.shipToStreet", "PO2.PO2.DeliverTo.Address.Street"),
        ("PO1.ShipTo.shipToCity", "PO2.PO2.DeliverTo.Address.City"),
        ("PO1.ShipTo.shipToZip", "PO2.PO2.DeliverTo.Address.Zip"),
        ("PO1.Customer", "PO2.PO2.BillTo"),
        ("PO1.Customer.custStreet", "PO2.PO2.BillTo.Address.Street"),
        ("PO1.Customer.custCity", "PO2.PO2.BillTo.Address.City"),
        ("PO1.Customer.custZip", "PO2.PO2.BillTo.Address.Zip"),
    ]
    return MatchResult.from_tuples(first, second, rows, name="PO1<->PO2 (reference)")
