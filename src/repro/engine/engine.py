"""The batch match engine: orchestrates matcher execution over a match task.

The engine replaces the cell-by-cell matcher execution of the original
pipeline with a three-stage batch scheme:

1. the shared :class:`~repro.engine.profiles.PathSetProfile` caches (hung off
   the :class:`~repro.matchers.base.MatchContext`) pre-compute per-path
   structure once per schema per operation;
2. every matcher runs through its :meth:`~repro.matchers.base.Matcher.compute_batch`
   entry point, which evaluates unique cache keys only and scatters results
   into the full matrix with numpy fancy indexing;
3. the engine stacks the per-matcher layers into the
   :class:`~repro.combination.cube.SimilarityCube` (optionally computing the
   layers on a thread pool -- the heavy kernels are numpy operations that
   release the GIL).

``MatchEngine(use_batch=False)`` runs the original pairwise reference
implementation through the same interface, which is how the equivalence tests
and the speed-up benchmark compare the two paths.

The engine itself is stateless and therefore safe to share across threads --
the module-level :data:`DEFAULT_ENGINE` serves every session of a process.
Per-operation state lives in the :class:`~repro.matchers.base.MatchContext`;
when several engine calls share one context (a session's shared profile
cache), profile publication is ``setdefault``-based so concurrent operations
converge on one profile instance per schema.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matchers.base import MatchContext, Matcher
    from repro.model.path import SchemaPath


class MatchEngine:
    """Executes a set of matchers over a match context as a batch pipeline.

    Parameters
    ----------
    use_batch:
        When True (the default) every matcher runs through its vectorized
        ``compute_batch`` entry point; when False the original pairwise
        ``compute`` path is used.  Both produce numerically identical cubes.
    max_workers:
        When set (> 1), the matcher layers of one operation are computed on a
        thread pool of this size; layer order in the resulting cube is
        preserved regardless.

    Raises
    ------
    ValueError
        If ``max_workers`` is given and below 1.

    Examples
    --------
    >>> engine = MatchEngine()
    >>> engine.use_batch, engine.max_workers
    (True, None)
    """

    def __init__(self, use_batch: bool = True, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._use_batch = bool(use_batch)
        self._max_workers = max_workers

    # -- configuration ---------------------------------------------------------

    @property
    def use_batch(self) -> bool:
        """Whether the vectorized batch path is active.

        Examples
        --------
        >>> MatchEngine(use_batch=False).use_batch
        False
        """
        return self._use_batch

    @property
    def max_workers(self) -> Optional[int]:
        """The thread-pool size (``None`` = sequential execution).

        Examples
        --------
        >>> MatchEngine(max_workers=4).max_workers
        4
        """
        return self._max_workers

    # -- execution -------------------------------------------------------------

    def compute_matrix(
        self,
        matcher: "Matcher",
        source_paths: Sequence["SchemaPath"],
        target_paths: Sequence["SchemaPath"],
        context: "MatchContext",
    ) -> SimilarityMatrix:
        """Run one matcher over two path sets through the configured path.

        Parameters
        ----------
        matcher:
            The matcher to execute.
        source_paths / target_paths:
            The two path sets spanning the similarity matrix.
        context:
            The match context carrying the shared resources and profile cache.

        Returns
        -------
        SimilarityMatrix
            The matcher's ``len(source_paths) x len(target_paths)`` matrix;
            numerically identical between the batch and pairwise paths.

        Examples
        --------
        >>> from repro.core.match_operation import build_context
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> from repro.matchers.registry import DEFAULT_LIBRARY
        >>> a, b = load_po1(), load_po2()
        >>> context = build_context(a, b)
        >>> matrix = MatchEngine().compute_matrix(
        ...     DEFAULT_LIBRARY.create("Name"), a.paths(), b.paths(), context)
        >>> matrix.values.shape == (len(a.paths()), len(b.paths()))
        True
        """
        if self._use_batch:
            return matcher.compute_batch(source_paths, target_paths, context)
        return matcher.compute(source_paths, target_paths, context)

    def execute(
        self,
        matchers: Sequence["Matcher"],
        context: "MatchContext",
        source_paths: Optional[Sequence["SchemaPath"]] = None,
        target_paths: Optional[Sequence["SchemaPath"]] = None,
    ) -> SimilarityCube:
        """Run every matcher over the path sets, stacking the results.

        This is the engine's main entry point, used by
        :func:`repro.core.match_operation.execute_matchers`.

        Parameters
        ----------
        matchers:
            The matchers whose layers form the cube, in layer order.
        context:
            The match context; its schemas provide the path sets unless
            overridden.
        source_paths / target_paths:
            Optional explicit path sets (default: all paths of the context's
            schemas).

        Returns
        -------
        SimilarityCube
            One layer per matcher, stacked in matcher order.

        Examples
        --------
        >>> from repro.core.match_operation import build_context
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> from repro.matchers.registry import DEFAULT_LIBRARY
        >>> context = build_context(load_po1(), load_po2())
        >>> cube = MatchEngine().execute(
        ...     DEFAULT_LIBRARY.create_many(["Name", "Leaves"]), context)
        >>> cube.matcher_names
        ('Name', 'Leaves')
        """
        sources = (
            tuple(source_paths) if source_paths is not None else context.source_schema.paths()
        )
        targets = (
            tuple(target_paths) if target_paths is not None else context.target_schema.paths()
        )
        layers = self._compute_layers(matchers, sources, targets, context)
        return SimilarityCube.from_layers(sources, targets, layers)

    def execute_partial(
        self,
        matchers: Sequence["Matcher"],
        context: "MatchContext",
        source_rows: Optional[Sequence["SchemaPath"]] = None,
        target_columns: Optional[Sequence["SchemaPath"]] = None,
    ) -> SimilarityCube:
        """Run every matcher over a *slice* of the match task's cell plane.

        The incremental re-matching tier re-runs matchers only on the rows
        (or columns) an edit touched and copies every other cell from the
        previous cube.  That splice is sound because per-cell values are
        independent of which subset is requested: batch matchers evaluate
        unique cache-key pairs and scatter, and the structural matchers
        derive their leaf matrices from the context's *full* schemas
        regardless of the requested paths, so a cell computed in a partial
        execution is bitwise identical to the same cell of a full one.

        Parameters
        ----------
        matchers:
            The matchers whose layers form the cube, in layer order.
        context:
            The match context; axes not overridden below default to the full
            path sets of its schemas.
        source_rows:
            The source paths (rows) to compute, or ``None`` for all rows.
        target_columns:
            The target paths (columns) to compute, or ``None`` for all
            columns.

        Returns
        -------
        SimilarityCube
            A cube over ``source_rows x target_columns``, one layer per
            matcher.

        Examples
        --------
        >>> from repro.core.match_operation import build_context
        >>> from repro.datasets.figure1 import load_po1, load_po2
        >>> from repro.matchers.registry import DEFAULT_LIBRARY
        >>> a, b = load_po1(), load_po2()
        >>> context = build_context(a, b)
        >>> matchers = DEFAULT_LIBRARY.create_many(["Name", "Leaves"])
        >>> full = MatchEngine().execute(matchers, context)
        >>> part = MatchEngine().execute_partial(
        ...     matchers, context, source_rows=a.paths()[2:5])
        >>> bool((part.layer("Leaves").values
        ...       == full.layer("Leaves").values[2:5]).all())
        True
        """
        return self.execute(
            matchers, context, source_paths=source_rows, target_paths=target_columns
        )

    def _compute_layers(
        self,
        matchers: Sequence["Matcher"],
        source_paths: Sequence["SchemaPath"],
        target_paths: Sequence["SchemaPath"],
        context: "MatchContext",
    ) -> List[Tuple[str, SimilarityMatrix]]:
        if self._max_workers is not None and self._max_workers > 1 and len(matchers) > 1:
            # Warm the shared profile caches before fanning out, so concurrent
            # matchers read the finished profiles instead of racing to build them.
            if self._use_batch:
                context.profiles(source_paths)
                context.profiles(target_paths)
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                matrices = list(
                    pool.map(
                        lambda matcher: self.compute_matrix(
                            matcher, source_paths, target_paths, context
                        ),
                        matchers,
                    )
                )
            return [(matcher.name, matrix) for matcher, matrix in zip(matchers, matrices)]
        return [
            (matcher.name, self.compute_matrix(matcher, source_paths, target_paths, context))
            for matcher in matchers
        ]


#: The engine used by default throughout the system (vectorized, sequential).
DEFAULT_ENGINE = MatchEngine()

#: The pairwise reference engine: same interface, original cell-by-cell path.
PAIRWISE_REFERENCE_ENGINE = MatchEngine(use_batch=False)
