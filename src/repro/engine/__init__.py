"""The vectorized batch match engine and its shared path-profile caches."""

from repro.engine.engine import DEFAULT_ENGINE, PAIRWISE_REFERENCE_ENGINE, MatchEngine
from repro.engine.profiles import PathSetProfile, TokenProfile, unique_index

__all__ = [
    "DEFAULT_ENGINE",
    "PAIRWISE_REFERENCE_ENGINE",
    "MatchEngine",
    "PathSetProfile",
    "TokenProfile",
    "unique_index",
]
