"""Shared path-profile caches for the batch match engine.

Every matcher of the library repeatedly derives the same per-path structure:
the Name matchers tokenize element names, the n-gram matchers lower-case names
and build gram sets, Soundex derives phonetic codes, DataType maps source
types to generic classes.  In the pairwise execution model each matcher
re-derives this structure for every cell of its ``m x n`` matrix (or at best
per unique cache key, but still once *per matcher*).

A :class:`PathSetProfile` computes all of it exactly once per path set per
match operation and is cached on the
:class:`~repro.matchers.base.MatchContext` (see ``MatchContext.profiles``), so
all matcher layers of one operation share it.  Besides the derived values the
profile owns the *unique-key machinery*: for every representation (names,
token lists, generic types) it stores the list of distinct values plus an
inverse index mapping each path to its value, which is what lets batch
matchers evaluate unique keys only and scatter results with numpy fancy
indexing (:meth:`~repro.combination.matrix.SimilarityMatrix.from_unique`).
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.linguistic.tokenizer import NameTokenizer
from repro.model.datatypes import GenericType
from repro.model.path import SchemaPath

KeyT = TypeVar("KeyT", bound=Hashable)

#: Token-extraction modes for the hybrid name matchers: the leaf name only
#: (``Name``), the hierarchical name without the schema root (``NamePath``
#: default), or the full hierarchical name (``NamePath`` with root).
TOKEN_MODE_NAME = "name"
TOKEN_MODE_PATH = "path"
TOKEN_MODE_PATH_WITH_ROOT = "path_with_root"


def unique_index(items: Sequence[KeyT]) -> Tuple[List[KeyT], np.ndarray]:
    """The distinct items (first-occurrence order) and each item's index.

    Returns ``(unique, inverse)`` with ``unique[inverse[i]] == items[i]`` --
    the building block of the scatter step of every batch matcher.
    """
    index: Dict[KeyT, int] = {}
    inverse = np.empty(len(items), dtype=np.intp)
    unique: List[KeyT] = []
    for i, item in enumerate(items):
        position = index.get(item)
        if position is None:
            position = len(unique)
            index[item] = position
            unique.append(item)
        inverse[i] = position
    return unique, inverse


class TokenProfile:
    """Unique token tuples of one path set under one extraction mode."""

    __slots__ = ("keys", "unique_keys", "inverse")

    def __init__(self, keys: Sequence[Tuple[str, ...]]):
        self.keys: Tuple[Tuple[str, ...], ...] = tuple(keys)
        self.unique_keys, self.inverse = unique_index(self.keys)


class PathSetProfile:
    """Everything matchers repeatedly derive per path, computed once.

    The profile is built for one ordered path set (one side of a match
    operation) and a tokenizer.  All derived representations are exposed both
    per unique value and with the inverse index that maps paths back to them.
    """

    def __init__(
        self,
        paths: Sequence[SchemaPath],
        tokenizer: NameTokenizer,
        token_memo: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        self.paths: Tuple[SchemaPath, ...] = tuple(paths)
        self._tokenizer = tokenizer

        # -- leaf names (the representation of all simple string matchers) --
        names = [path.name for path in self.paths]
        self.unique_names, self.name_inverse = unique_index(names)
        self.lowered_names: List[str] = [name.lower() for name in self.unique_names]

        # -- generic data types (DataType / TypeName matchers) --
        types = [path.generic_type for path in self.paths]
        self.unique_types, self.type_inverse = unique_index(types)

        # -- lazy caches --
        # Profiles are shared across matchers and (through a session) across
        # threads; the lock makes each lazy derivation below compute-once
        # under concurrency instead of racing to duplicate the work.
        self._lock = threading.Lock()
        # The name-token memo may be handed in (a session-shared dict, itself
        # possibly seeded from a persistent store): tokenization then happens
        # once per name per memo lifetime instead of once per profile.
        # Inserts are idempotent (the tokenizer is deterministic), so the
        # benign get/set race under a shared dict cannot produce divergence.
        self._name_tokens: Dict[str, Tuple[str, ...]] = (
            token_memo if token_memo is not None else {}
        )
        self._token_profiles: Dict[str, TokenProfile] = {}
        self._ngram_sets: Dict[Tuple[int, bool], List[FrozenSet[str]]] = {}
        self._soundex_codes: Dict[int, List[str]] = {}

    # -- token lists ---------------------------------------------------------

    def _tokens_of_name(self, name: str) -> Tuple[str, ...]:
        """Tokenize one raw element name, memoised across all paths."""
        tokens = self._name_tokens.get(name)
        if tokens is None:
            tokens = self._tokenizer.tokenize(name)
            self._name_tokens[name] = tokens
        return tokens

    def token_profile(self, mode: str = TOKEN_MODE_NAME) -> TokenProfile:
        """The (cached) token profile of this path set under ``mode``.

        Path modes concatenate the memoised per-element token lists, so a
        shared element name is tokenized once no matter how many paths
        traverse it.
        """
        profile = self._token_profiles.get(mode)
        if profile is not None:
            return profile
        with self._lock:
            profile = self._token_profiles.get(mode)
            if profile is not None:
                return profile
            if mode == TOKEN_MODE_NAME:
                keys = [self._tokens_of_name(path.name) for path in self.paths]
            elif mode in (TOKEN_MODE_PATH, TOKEN_MODE_PATH_WITH_ROOT):
                keys = []
                for path in self.paths:
                    names = path.names
                    if mode == TOKEN_MODE_PATH:
                        names = names[1:] or names
                    tokens: List[str] = []
                    for name in names:
                        tokens.extend(self._tokens_of_name(name))
                    keys.append(tuple(tokens))
            else:
                raise ValueError(f"unknown token mode {mode!r}")
            profile = TokenProfile(keys)
            self._token_profiles[mode] = profile
            return profile

    # -- n-gram sets ----------------------------------------------------------

    def ngram_sets(self, n: int, case_sensitive: bool = False) -> List[FrozenSet[str]]:
        """Character n-gram sets of the unique names (cached per ``n``)."""
        key = (int(n), bool(case_sensitive))
        sets = self._ngram_sets.get(key)
        if sets is None:
            from repro.matchers.string.ngram import ngrams

            with self._lock:
                sets = self._ngram_sets.get(key)
                if sets is None:
                    words = self.unique_names if case_sensitive else self.lowered_names
                    sets = [ngrams(word, n) for word in words]
                    self._ngram_sets[key] = sets
        return sets

    # -- soundex codes ---------------------------------------------------------

    def soundex_codes(self, length: int = 4) -> List[str]:
        """Soundex codes of the unique names (cached per code length)."""
        codes = self._soundex_codes.get(length)
        if codes is None:
            from repro.matchers.string.soundex import soundex_code

            with self._lock:
                codes = self._soundex_codes.get(length)
                if codes is None:
                    codes = [soundex_code(name, length) for name in self.unique_names]
                    self._soundex_codes[length] = codes
        return codes

    # -- misc ------------------------------------------------------------------

    def generic_types(self) -> List[GenericType]:
        """The distinct generic data types appearing in this path set."""
        return list(self.unique_types)

    def __len__(self) -> int:
        return len(self.paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathSetProfile(paths={len(self.paths)}, "
            f"unique_names={len(self.unique_names)})"
        )
