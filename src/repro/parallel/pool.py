"""The process session pool: N worker processes, each owning a warm session.

The thread-backed :class:`~repro.service.pool.SessionPool` keeps every match
on one interpreter, so on a multi-core machine warm service throughput flat-
lines at the GIL instead of scaling with the hardware.  A
:class:`ProcessSessionPool` breaks that ceiling: ``size`` spawned worker
processes (see :mod:`repro.parallel.worker`) each hold a private warm
:class:`~repro.session.session.MatchSession`, and requests travel over pipes
as compact codec frames (:mod:`repro.parallel.codec`) -- schemas shipped once
per worker by content digest, similarity layers returned as raw ``float64``
buffers.  Results are **byte-identical** to the serial in-process path; the
differential suite in ``tests/test_parallel_equivalence.py`` enforces it.

Workers are spawned (never forked), so the pool is safe to create from a
threaded server process.  When a persistent
:class:`~repro.repository.store.SimilarityStore` path is configured, every
worker opens its own connection to the shared file and starts warm from cubes
any earlier process stored.

Scheduling mirrors the thread pool: free workers live on a LIFO free-list
behind a condition variable, an acquirer takes *any* free worker, and a
worker is held exclusively for one round trip (pipes are not multiplexed).

Failure handling (PR 9) layers three defences over that scheduling:

* **replay-once** -- a worker that dies mid-request (broken pipe) is
  respawned and the request replayed once; match execution is
  side-effect-free outside the worker's own caches, so the replay is safe;
* **deadlines + watchdog** -- ``match`` / ``match_many`` accept
  ``timeout=`` seconds; a worker that holds a frame past the deadline is
  SIGKILLed by the watchdog and the call fails with a typed
  :class:`~repro.exceptions.PoolTimeoutError` (never replayed -- a replay
  would double the wait), while a *background* thread respawns the slot so
  the caller returns within deadline + grace.  Respawns back off
  exponentially (:data:`RESPAWN_BACKOFF_BASE` doubling to
  :data:`RESPAWN_BACKOFF_CAP`) so a crash-looping worker cannot start a
  spawn storm;
* **circuit breaker** -- :data:`BREAKER_THRESHOLD` *consecutive* worker
  failures open the breaker: chunks route to an in-process fallback session
  (built from the same worker options, so results stay byte-identical) and
  every :data:`BREAKER_PROBE_EVERY`-th chunk probes the workers, closing
  the breaker on the first success.  Counters for all of it surface through
  :meth:`ProcessSessionPool.resilience_info` into ``/health``.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro import faults
from repro.core.match_operation import build_context
from repro.core.strategy import MatchStrategy
from repro.exceptions import PoolTimeoutError, ServiceError
from repro.parallel import codec
from repro.parallel.worker import worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.match_operation import MatchOutcome
    from repro.model.schema import Schema

#: One fan-out item: ``(source, target, strategy)`` where the strategy is a
#: spec string, a :class:`~repro.core.strategy.MatchStrategy`, or ``None``
#: for the workers' default.
PoolRequest = Tuple["Schema", "Schema", object]

#: Seconds to wait for a spawned worker's ready handshake before giving up.
HANDSHAKE_TIMEOUT = 120.0

#: First respawn-backoff sleep; doubles per consecutive respawn of a slot.
RESPAWN_BACKOFF_BASE = 0.05

#: Ceiling of the per-slot respawn backoff (a crash-looping worker respawns
#: at most every couple of seconds, not in a tight spawn storm).
RESPAWN_BACKOFF_CAP = 2.0

#: Consecutive worker failures (deaths or watchdog kills) that open the
#: circuit breaker.
BREAKER_THRESHOLD = 3

#: While the breaker is open, every Nth chunk probes the workers instead of
#: running locally; the first successful probe closes the breaker.  Count
#: based, so breaker behaviour is deterministic for a given request sequence.
BREAKER_PROBE_EVERY = 4


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("process", "connection", "shipped", "requests", "pid")

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection
        #: Content digests of schemas this worker is known to hold.
        self.shipped: set = set()
        #: Match pairs dispatched to this worker (parent-side counter).
        self.requests = 0
        self.pid: Optional[int] = None


class _WorkerDied(Exception):
    """Internal signal: the pipe broke mid round trip (worker respawned)."""


class _WorkerTimedOut(Exception):
    """Internal signal: the watchdog killed a worker that blew the deadline.

    The held slot is re-released by the background respawner, *not* by the
    calling chunk -- the caller must convert this to
    :class:`~repro.exceptions.PoolTimeoutError` without releasing.
    """


class ProcessSessionPool:
    """A fixed pool of spawned worker processes with warm match sessions.

    Parameters
    ----------
    size:
        The number of worker processes.  On an N-core machine, N workers let
        warm match throughput scale with the cores instead of the GIL.
    store_path:
        Optional persistent similarity store *file* shared by every worker
        (each opens its own connection); workers then start warm from cubes
        stored by any earlier process.
    repository_path:
        Optional SQLite repository file for repository-backed matchers in the
        workers (opened per worker, ``threadsafe=True``).
    default_strategy:
        The strategy spec workers fall back to when a request names none.
    start_method:
        The multiprocessing start method (default ``"spawn"``, the only one
        safe from threaded parents; ``"fork"``/``"forkserver"`` are accepted
        where the platform offers them).
    store_dtype:
        The storage dtype workers write cubes to the shared store with
        (``"float64"`` default, ``"float32"``, ``"uint16"`` -- see the
        :class:`~repro.repository.store.SimilarityStore` dtype contract).
    wire_dtype:
        The dtype cube stacks travel back over the pipe with (same choices).
        The default ``"float64"`` keeps results byte-identical to the serial
        path; the compact dtypes shrink the dominant reply buffer at the
        store contract's tested tolerance (correspondence similarities and
        the aggregated matrix always stay exact ``float64``).

    Raises
    ------
    ServiceError
        If ``size`` is below 1, a worker fails its ready handshake, or the
        workers disagree on their match-configuration digest.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1, load_po2
    >>> with ProcessSessionPool(size=1) as pool:            # doctest: +SKIP
    ...     outcome = pool.match(load_po1(), load_po2())
    ...     len(outcome.result) > 0
    True
    """

    #: Matches the service pool's vocabulary (``/stats`` reports it).
    backend = "process"

    def __init__(
        self,
        size: int = 2,
        store_path: Optional[str] = None,
        repository_path: Optional[str] = None,
        default_strategy: Optional[str] = None,
        start_method: str = "spawn",
        schema_cache_bound: Optional[int] = None,
        store_dtype: Optional[str] = None,
        wire_dtype: Optional[str] = None,
        fault_plan: Optional[Dict[str, object]] = None,
        breaker_threshold: int = BREAKER_THRESHOLD,
    ):
        if size < 1:
            raise ServiceError(f"a process pool needs size >= 1, got {size}")
        from repro.repository.store import CUBE_DTYPES

        for label, value in (("store_dtype", store_dtype), ("wire_dtype", wire_dtype)):
            if value is not None and value not in CUBE_DTYPES:
                raise ServiceError(
                    f"unknown {label} {value!r}, expected one of {CUBE_DTYPES}"
                )
        self._context = multiprocessing.get_context(start_method)
        self._options: Dict[str, object] = {
            "store_path": store_path,
            "repository_path": repository_path,
            "default_strategy": default_strategy,
            "schema_cache_bound": schema_cache_bound,
            "store_dtype": store_dtype,
            "wire_dtype": wire_dtype,
            # An explicit plan document, or None: _spawn() then ships the
            # plan armed in this process, so workers (and respawns) always
            # run under the same fault model as their parent.
            "fault_plan": dict(fault_plan) if fault_plan else None,
        }
        self._closed = False
        self._condition = threading.Condition()
        self._free: List[int] = []
        # -- resilience state (all guarded by _resilience_lock) --------------
        self._resilience_lock = threading.Lock()
        self._backoff = [0.0] * size  # next respawn sleep per slot
        self._respawns = 0
        self._watchdog_kills = 0
        self._breaker_threshold = max(1, int(breaker_threshold))
        self._consecutive_failures = 0
        self._breaker_open = False
        self._breaker_trips = 0
        self._breaker_probes = 0
        self._routed_local = 0
        self._fallback_session = None
        self._fallback_lock = threading.Lock()
        # Start every process first, then collect the ready handshakes: the
        # expensive part of a spawn (interpreter boot + imports) overlaps
        # across workers instead of serialising.
        self._workers: List[_Worker] = [self._spawn() for _ in range(size)]
        digests = {self._handshake(worker) for worker in self._workers}
        if len(digests) != 1:  # pragma: no cover - would need a racing config change
            self.close()
            raise ServiceError("match workers disagree on their configuration digest")
        self._config_digest = digests.pop()
        self._free = list(range(size))
        #: Parent-side schema-digest memo (content digests are stable unless
        #: a schema mutates; ``clear_caches`` drops the memo).
        self._digests: "weakref.WeakKeyDictionary[Schema, str]" = (
            weakref.WeakKeyDictionary()
        )
        self._digest_lock = threading.Lock()
        #: Parsed-strategy memo for specs coming back from worker defaults.
        self._spec_memo: Dict[str, MatchStrategy] = {}

    # -- lifecycle ---------------------------------------------------------------

    def _spawn(self) -> _Worker:
        options = dict(self._options)
        if options.get("fault_plan") is None:
            # No explicit plan: ship whatever is armed process-wide right
            # now, so chaos tests arming before pool creation (or before a
            # respawn) see their faults inside the workers too.
            plan = faults.active_plan()
            options["fault_plan"] = plan.to_dict() if plan is not None else None
        parent_connection, child_connection = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(child_connection, options),
            name="coma-match-worker",
            daemon=True,
        )
        process.start()
        child_connection.close()
        return _Worker(process, parent_connection)

    def _handshake(self, worker: _Worker) -> str:
        if not worker.connection.poll(HANDSHAKE_TIMEOUT):
            self.close()
            raise ServiceError(
                f"match worker (pid {worker.process.pid}) did not become "
                f"ready within {HANDSHAKE_TIMEOUT:.0f}s"
            )
        try:
            header, _ = codec.decode_frame(worker.connection.recv_bytes())
        except (EOFError, OSError) as error:
            self.close()
            raise ServiceError(
                f"match worker (pid {worker.process.pid}) died during "
                f"startup: {error}"
            ) from error
        if header.get("kind") == "error":  # pragma: no cover - startup failure path
            self.close()
            codec.raise_remote_error(header)
        if header.get("kind") != "ready":
            self.close()
            raise ServiceError(
                f"match worker sent {header.get('kind')!r} instead of the "
                f"ready handshake"
            )
        worker.pid = int(header["pid"])
        return str(header["config_digest"])

    @property
    def size(self) -> int:
        """The number of worker processes."""
        return len(self._workers)

    @property
    def idle(self) -> int:
        """How many workers are free right now (``size`` when fully idle).

        Mirrors :attr:`SessionPool.idle
        <repro.service.pool.SessionPool.idle>` so ``/stats`` and leak checks
        read either backend the same way.
        """
        with self._condition:
            return len(self._free)

    @property
    def config_digest(self) -> str:
        """The workers' match-configuration content digest.

        Compare against :meth:`MatchSession.config_digest
        <repro.session.session.MatchSession.config_digest>` before fanning a
        session out: equal digests guarantee the workers resolve names,
        tokens, synonyms and type compatibilities exactly like the parent.
        """
        return self._config_digest

    def close(self) -> None:
        """Shut every worker down (politely, then forcefully). Idempotent.

        Escalation ladder per worker: shutdown frame -> SIGTERM -> SIGKILL,
        each with a bounded join, so ``close()`` can never hang on a worker
        that ignores both the protocol and the signal (a wedged C extension,
        a masked handler).
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            self._condition.notify_all()
        for worker in self._workers:
            try:
                worker.connection.send_bytes(codec.encode_frame({"kind": "shutdown"}))
                if worker.connection.poll(5.0):
                    worker.connection.recv_bytes()
            except (BrokenPipeError, EOFError, OSError):
                pass
            worker.connection.close()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - unkillable via TERM
                worker.process.kill()
                worker.process.join(timeout=5.0)
        with self._fallback_lock:
            if self._fallback_session is not None:
                self._fallback_session.close()
                self._fallback_session = None

    def __enter__(self) -> "ProcessSessionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker scheduling ---------------------------------------------------------

    def _acquire(self, deadline: Optional[float] = None) -> int:
        with self._condition:
            while True:
                if self._closed:
                    raise ServiceError("the process pool is closed")
                if self._free:
                    return self._free.pop()
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise PoolTimeoutError(
                            "timed out waiting for a free match worker"
                        )
                self._condition.wait(remaining)

    def _release(self, index: int) -> None:
        with self._condition:
            self._free.append(index)
            self._condition.notify()

    def _respawn(self, index: int) -> None:
        """Replace a dead worker in place (its shipped-schema set resets).

        Consecutive respawns of one slot sleep an exponentially growing
        backoff first (:data:`RESPAWN_BACKOFF_BASE` doubling up to
        :data:`RESPAWN_BACKOFF_CAP`); a successful round trip on the slot
        resets it.  A crash-looping worker therefore costs a bounded spawn
        rate, not a storm of interpreter boots.
        """
        with self._condition:
            if self._closed:
                raise ServiceError("the process pool is closed")
        with self._resilience_lock:
            pause = self._backoff[index]
            self._backoff[index] = min(
                max(RESPAWN_BACKOFF_BASE, pause * 2), RESPAWN_BACKOFF_CAP
            )
            self._respawns += 1
        if pause:
            time.sleep(pause)
        old = self._workers[index]
        try:
            old.connection.close()
        except OSError:  # pragma: no cover - already broken
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5.0)
        if old.process.is_alive():  # pragma: no cover - unkillable via TERM
            old.process.kill()
            old.process.join(timeout=5.0)
        worker = self._spawn()
        self._handshake(worker)
        worker.requests = old.requests
        self._workers[index] = worker

    def _respawn_and_release(self, index: int) -> None:
        """Background respawn of a watchdog-killed slot; always re-releases it.

        Runs off the caller's thread so a timed-out ``match_many`` returns
        within deadline + grace instead of paying a full interpreter spawn.
        The slot stays out of the free list until the fresh worker is ready
        (or the respawn failed -- then the next user of the slot hits a
        broken pipe and retries the respawn inline).
        """
        try:
            self._respawn(index)
        except Exception:  # noqa: BLE001 - closing pool / spawn failure
            pass
        finally:
            self._release(index)

    def _roundtrip(
        self, index: int, frame: bytes, deadline: Optional[float] = None
    ) -> Tuple[Dict[str, object], List[memoryview]]:
        """One exclusive request/reply on worker ``index`` (caller holds it).

        With a ``deadline``, the reply wait is bounded: a worker that holds
        the frame past it is treated as wedged -- the watchdog SIGKILLs it,
        a background thread respawns the slot, and :class:`_WorkerTimedOut`
        tells the caller *not* to release (the respawner will) and *not* to
        replay (replaying a timed-out request would double the wait).
        """
        worker = self._workers[index]
        faults.fault_point("pool.roundtrip")
        try:
            worker.connection.send_bytes(frame)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not worker.connection.poll(remaining):
                    with self._resilience_lock:
                        self._watchdog_kills += 1
                    self._record_worker_failure()
                    with contextlib.suppress(Exception):
                        worker.process.kill()
                    threading.Thread(
                        target=self._respawn_and_release,
                        args=(index,),
                        name="coma-pool-respawner",
                        daemon=True,
                    ).start()
                    raise _WorkerTimedOut(
                        f"match worker (pid {worker.pid}) blew the deadline; killed"
                    )
            header, buffers = codec.decode_frame(worker.connection.recv_bytes())
        except (BrokenPipeError, EOFError, OSError) as error:
            self._record_worker_failure()
            self._respawn(index)
            raise _WorkerDied(str(error)) from error
        self._record_worker_success(index)
        if header.get("kind") == "error":
            codec.raise_remote_error(header)
        return header, buffers

    # -- circuit breaker -------------------------------------------------------

    def _record_worker_failure(self) -> None:
        """One worker death or watchdog kill; trips the breaker at threshold."""
        with self._resilience_lock:
            self._consecutive_failures += 1
            if (
                not self._breaker_open
                and self._consecutive_failures >= self._breaker_threshold
            ):
                self._breaker_open = True
                self._breaker_trips += 1

    def _record_worker_success(self, index: int) -> None:
        """A completed round trip: reset failure streak, close the breaker."""
        with self._resilience_lock:
            self._consecutive_failures = 0
            self._backoff[index] = 0.0
            self._breaker_open = False

    def _breaker_routes_local(self) -> bool:
        """Whether the *next* chunk should run in-process.

        While open, every :data:`BREAKER_PROBE_EVERY`-th chunk is a probe
        that goes to the workers (its success closes the breaker); the rest
        run on the fallback session.  Count-based, hence deterministic.
        """
        with self._resilience_lock:
            if not self._breaker_open:
                return False
            self._routed_local += 1
            if self._routed_local % BREAKER_PROBE_EVERY == 0:
                self._breaker_probes += 1
                return False  # probe: try the workers
            return True

    def _execute_local(
        self,
        items: Sequence[PoolRequest],
        context_factory: Optional[Callable],
    ) -> List["MatchOutcome"]:
        """Run one chunk on the in-process fallback session (breaker open).

        The session is built lazily from the *same* options the workers got
        (:func:`repro.parallel.worker._build_session`), so configuration --
        store, repository, default strategy -- and therefore results match
        the worker path exactly.  One lock serialises fallback matches: the
        breaker trades parallelism for availability, not correctness.
        """
        from repro.parallel.worker import _build_session

        with self._fallback_lock:
            if self._fallback_session is None:
                self._fallback_session = _build_session(self._options)
            session = self._fallback_session
            outcomes: List["MatchOutcome"] = []
            for source, target, strategy in items:
                spec = strategy.to_spec() if isinstance(strategy, MatchStrategy) else strategy
                outcomes.append(session.match(source, target, strategy=spec))
        return outcomes

    # -- schema shipping -------------------------------------------------------------

    def _digest(self, schema: "Schema") -> str:
        from repro.repository.store import schema_content_digest

        with self._digest_lock:
            digest = self._digests.get(schema)
        if digest is None:
            digest = schema_content_digest(schema)
            with self._digest_lock:
                self._digests[schema] = digest
        return digest

    def _match_frame(
        self,
        worker: _Worker,
        pairs: Sequence[Tuple[str, str, Optional[str]]],
        payloads: Dict[str, bytes],
    ) -> bytes:
        """Build one ``match`` frame, shipping schemas the worker lacks."""
        schemas = []
        buffers: List[bytes] = []
        for digest, payload in payloads.items():
            if digest not in worker.shipped:
                schemas.append({"digest": digest, "buffer": len(buffers)})
                buffers.append(payload)
        header = {
            "kind": "match",
            "pairs": [
                {"source": source, "target": target, "strategy": spec}
                for source, target, spec in pairs
            ],
            "schemas": schemas,
        }
        return codec.encode_frame(header, buffers)

    def _execute_chunk(
        self,
        items: Sequence[PoolRequest],
        context_factory: Optional[Callable],
        deadline: Optional[float] = None,
    ) -> List["MatchOutcome"]:
        """Run one contiguous chunk of requests on one exclusively held worker.

        With the breaker open, the chunk (unless it is the periodic probe)
        runs on the in-process fallback session instead; a chunk whose
        worker dies twice also falls back locally, so one crash-looping
        worker degrades throughput, never answers.
        """
        if self._breaker_routes_local():
            return self._execute_local(items, context_factory)
        pairs: List[Tuple[str, str, Optional[str]]] = []
        payloads: Dict[str, bytes] = {}
        strategies: List[Optional[MatchStrategy]] = []
        for source, target, strategy in items:
            if isinstance(strategy, MatchStrategy):
                spec: Optional[str] = strategy.to_spec()
                strategies.append(strategy)
            elif isinstance(strategy, str) or strategy is None:
                spec = strategy
                strategies.append(None)
            else:
                raise ServiceError(
                    f"process-pool strategies must be MatchStrategy objects, "
                    f"spec strings or None, got {type(strategy).__name__}"
                )
            source_digest = self._digest(source)
            target_digest = self._digest(target)
            payloads.setdefault(source_digest, codec.schema_payload(source))
            payloads.setdefault(target_digest, codec.schema_payload(target))
            pairs.append((source_digest, target_digest, spec))
        index = self._acquire(deadline)
        release = True
        try:
            header, buffers = self._execute_on_worker(index, pairs, payloads, deadline)
            worker = self._workers[index]
            worker.shipped.update(payloads)
            worker.requests += len(pairs)
        except _WorkerTimedOut as error:
            # The background respawner owns (and will re-release) the slot.
            release = False
            raise PoolTimeoutError(str(error)) from error
        except _WorkerDied:
            # Died on the replay too: serve the chunk in-process rather than
            # failing a request whose work is perfectly doable locally.
            header = None
        finally:
            if release:
                self._release(index)
        if header is None:
            return self._execute_local(items, context_factory)
        items_header = header["items"]
        outcomes: List["MatchOutcome"] = []
        factory = context_factory if context_factory is not None else build_context
        for (source, target, _), strategy, item in zip(items, strategies, items_header):
            if strategy is None:
                spec = str(item["strategy"])
                strategy = self._spec_memo.get(spec)
                if strategy is None:
                    strategy = MatchStrategy.parse(spec)
                    self._spec_memo[spec] = strategy
            outcomes.append(
                codec.rebuild_outcome(
                    item, buffers, source, target, strategy, factory(source, target)
                )
            )
        return outcomes

    def _execute_on_worker(self, index, pairs, payloads, deadline=None):
        """Round-trip with the two recovery paths: re-ship and replay-once.

        ``unknown-schema`` means the worker evicted (or never had) a digest
        the parent believed was shipped -- the parent forgets its shipped-set
        optimism and re-sends with full payloads.  A broken pipe means the
        worker died; it was respawned by ``_roundtrip`` and the request is
        replayed once on the fresh process (match execution has no effects
        outside the worker, so the replay cannot double-apply anything).  A
        second death propagates :class:`_WorkerDied` (the chunk then runs on
        the fallback session); a watchdog kill propagates
        :class:`_WorkerTimedOut` untouched -- never replayed.
        """
        worker = self._workers[index]
        replayed = False
        for _ in range(3):
            frame = self._match_frame(worker, pairs, payloads)
            try:
                header, buffers = self._roundtrip(index, frame, deadline)
            except _WorkerDied:
                worker = self._workers[index]
                if replayed:
                    raise
                replayed = True
                continue
            if header.get("kind") == "unknown-schema":
                worker.shipped.difference_update(header.get("digests", ()))
                continue
            if header.get("kind") != "outcomes":
                raise ServiceError(
                    f"match worker sent {header.get('kind')!r} instead of outcomes"
                )
            return header, buffers
        raise ServiceError("match worker kept rejecting shipped schemas")

    # -- match entry points -----------------------------------------------------------

    def match(
        self,
        source: "Schema",
        target: "Schema",
        strategy: object = None,
        context_factory: Optional[Callable] = None,
        timeout: Optional[float] = None,
    ) -> "MatchOutcome":
        """Match one pair on some free worker; byte-identical to the serial path.

        ``timeout`` bounds the whole call in seconds; see :meth:`match_many`.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        return self._execute_chunk(
            [(source, target, strategy)], context_factory, deadline
        )[0]

    def match_many(
        self,
        items: Sequence[PoolRequest],
        context_factory: Optional[Callable] = None,
        timeout: Optional[float] = None,
    ) -> List["MatchOutcome"]:
        """Fan a batch out across the workers, preserving request order.

        The batch is split into up to ``size`` contiguous chunks; each chunk
        acquires one worker for one framed round trip (so per-pair IPC cost
        is amortised across the chunk).  ``context_factory(source, target)``
        builds the context attached to each reassembled outcome (defaults to
        a fresh default-resource context).

        ``timeout`` (seconds) is an absolute deadline over the whole batch:
        a worker still holding a chunk at the deadline is SIGKILLed by the
        watchdog (its slot respawned in the background) and the call raises
        :class:`~repro.exceptions.PoolTimeoutError` within deadline plus
        scheduling grace -- never a replay, never an unbounded wait.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        items = [self._normalized(item) for item in items]
        if not items:
            return []
        chunk_count = min(self.size, len(items))
        if chunk_count == 1:
            return self._execute_chunk(items, context_factory, deadline)
        bounds = [
            (len(items) * part // chunk_count, len(items) * (part + 1) // chunk_count)
            for part in range(chunk_count)
        ]
        with ThreadPoolExecutor(max_workers=chunk_count) as executor:
            chunks = list(
                executor.map(
                    lambda span: self._execute_chunk(
                        items[span[0]:span[1]], context_factory, deadline
                    ),
                    bounds,
                )
            )
        return [outcome for chunk in chunks for outcome in chunk]

    @staticmethod
    def _normalized(item) -> PoolRequest:
        if len(item) == 2:
            return (item[0], item[1], None)
        if len(item) == 3:
            return (item[0], item[1], item[2])
        raise ServiceError(
            f"process-pool requests must be (source, target[, strategy]) "
            f"tuples, got a tuple of length {len(item)}"
        )

    # -- statistics and maintenance ------------------------------------------------------

    def worker_stats(self, timeout: float = 5.0) -> List[Dict[str, object]]:
        """Live per-worker statistics (pid, requests handled, cache counters).

        Each worker is queried over its (exclusively held) pipe, waiting at
        most ``timeout`` seconds per worker: a worker staying busy with a
        long match is reported from the parent-side counters with
        ``"busy": True`` instead of blocking the caller -- ``GET /stats`` is
        a monitoring endpoint and must never starve behind match traffic.
        """
        stats: List[Dict[str, object]] = []
        for index in range(self.size):
            acquired = self._acquire_specific(index, timeout=timeout)
            if acquired is None:
                stats.append({
                    "pid": self._workers[index].pid,
                    "requests": self._workers[index].requests,
                    "busy": True,
                })
                continue
            try:
                header, _ = self._roundtrip(acquired, codec.encode_frame({"kind": "stats"}))
            except _WorkerDied:
                stats.append({"pid": self._workers[index].pid, "requests":
                              self._workers[index].requests, "alive": False})
                continue
            finally:
                self._release(acquired)
            info = dict(header["info"])
            info["requests_dispatched"] = self._workers[index].requests
            stats.append(info)
        with self._resilience_lock:
            for index, entry in enumerate(stats):
                entry["respawn_backoff"] = self._backoff[index]
        return stats

    def resilience_info(self) -> Dict[str, object]:
        """Breaker state, watchdog and respawn counters (``/health`` surface)."""
        with self._resilience_lock:
            return {
                "breaker": {
                    "state": "open" if self._breaker_open else "closed",
                    "threshold": self._breaker_threshold,
                    "consecutive_failures": self._consecutive_failures,
                    "trips": self._breaker_trips,
                    "probes": self._breaker_probes,
                    "routed_local": self._routed_local,
                },
                "watchdog_kills": self._watchdog_kills,
                "respawns": self._respawns,
                "respawn_backoff": list(self._backoff),
            }

    def _acquire_specific(
        self, index: int, timeout: Optional[float] = None
    ) -> Optional[int]:
        """Take worker ``index`` specifically; ``None`` on timeout (if given)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                if self._closed:
                    raise ServiceError("the process pool is closed")
                if index in self._free:
                    self._free.remove(index)
                    return index
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._condition.wait(remaining)

    def cache_info(self) -> Dict[str, object]:
        """Aggregated cache statistics over all workers.

        Mirrors :meth:`repro.service.pool.SessionPool.cache_info` -- the same
        ``shards`` list and summed totals -- plus ``backend`` and a
        ``workers`` list with per-process pid / request counters, which is
        what ``GET /stats`` exposes for the process backend.
        """
        stats = self.worker_stats()
        keys = ("profiles", "cubes", "cube_hits", "cube_misses",
                "store_hits", "store_misses")
        shards = [
            {key: shard.get(key, 0) for key in keys} for shard in stats
        ]
        totals = {key: sum(shard[key] for shard in shards) for key in keys}
        workers = [
            {
                "pid": shard.get("pid"),
                "requests": shard.get("requests", 0),
                "schemas": shard.get("schemas", 0),
            }
            for shard in stats
        ]
        return {"backend": self.backend, "shards": shards, "workers": workers, **totals}

    def clear_caches(self) -> None:
        """Drop every worker's session caches (and shipped-schema sets)."""
        for index in range(self.size):
            acquired = self._acquire_specific(index)
            try:
                self._roundtrip(acquired, codec.encode_frame({"kind": "clear"}))
                self._workers[index].shipped.clear()
            except _WorkerDied:  # pragma: no cover - a fresh worker is clear
                pass
            finally:
                self._release(acquired)
        with self._digest_lock:
            self._digests = weakref.WeakKeyDictionary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessSessionPool(size={self.size})"
