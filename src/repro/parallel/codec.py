"""The process-pool wire codec: compact frames for schemas, specs and results.

The process backend moves three kinds of payload between the parent and its
worker processes: *schemas* (shipped once per worker, as the loss-less JSON
document of :mod:`repro.repository.serialization`), *strategy specs* (the
declarative strings of :mod:`repro.core.spec`) and *match outcomes*.  None of
these go through :mod:`pickle` object graphs -- a frame is a small JSON header
followed by raw buffers, so

* similarity layers travel as the bytes of the computed numpy arrays; with
  the default ``float64`` cube dtype a reassembled cube is **bit-identical**
  to the one the worker produced (which in turn is bit-identical to a serial
  in-process execution -- the property the differential test suite locks
  down).  Workers may instead ship cube stacks as ``float32`` or quantized
  ``uint16`` (the store's dtype contract, recorded per item as
  ``cube_dtype``), which quarters the dominant buffer at a tested tolerance
  while the aggregated matrix and the correspondence similarities -- the
  floats that decide mappings -- always stay ``float64``;
* the parent and worker only need to agree on this module, not on the pickle
  compatibility of every model class;
* decoding cost is one JSON parse plus ``np.frombuffer`` views; rebuilt cube
  arrays are *copied out of the frame* (or decoded through ``astype``), so
  they are always writable -- never a read-only view into the receive
  buffer.

Frame layout (all integers big-endian)::

    magic   4 bytes   b"CPF1"
    hlen    u32       length of the JSON header
    header  hlen      UTF-8 JSON object (must carry a "kind" key)
    count   u32       number of raw buffers
    count * (u64 length + payload bytes)

Examples
--------
>>> frame = encode_frame({"kind": "ping"}, [b"abc"])
>>> header, buffers = decode_frame(frame)
>>> header["kind"], bytes(buffers[0])
('ping', b'abc')
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix
from repro.exceptions import ServiceError
from repro.model.mapping import Correspondence, MatchResult
from repro.repository.store import CUBE_DTYPES, decode_stack, encode_stack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.match_operation import MatchOutcome
    from repro.model.schema import Schema

#: Frame magic; bump the digit when the layout changes so a version-skewed
#: worker fails loudly instead of misreading buffers.
MAGIC = b"CPF1"

_PREFIX = struct.Struct(">4sI")
_COUNT = struct.Struct(">I")
_BUFFER_LENGTH = struct.Struct(">Q")


def encode_frame(header: Dict[str, object], buffers: Sequence[object] = ()) -> bytes:
    """Serialise one message: a JSON header plus raw byte buffers.

    ``buffers`` entries may be ``bytes``-like or numpy arrays (sent as their
    C-order byte representation).
    """
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    parts = [
        _PREFIX.pack(MAGIC, len(header_bytes)),
        header_bytes,
        _COUNT.pack(len(buffers)),
    ]
    for item in buffers:
        if isinstance(item, np.ndarray):
            data = np.ascontiguousarray(item, dtype=np.float64).tobytes()
        else:
            data = bytes(item)
        parts.append(_BUFFER_LENGTH.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


def decode_frame(data: bytes) -> Tuple[Dict[str, object], List[memoryview]]:
    """Decode one frame into ``(header, buffers)``.

    Buffers are returned as zero-copy memoryviews into ``data``.

    Raises
    ------
    ServiceError
        If the frame is truncated or carries the wrong magic.
    """
    view = memoryview(data)
    try:
        magic, header_length = _PREFIX.unpack_from(view, 0)
        if magic != MAGIC:
            raise ServiceError(
                f"bad wire frame magic {magic!r} (version skew between the "
                f"parent and a match worker?)"
            )
        offset = _PREFIX.size
        header = json.loads(bytes(view[offset:offset + header_length]).decode("utf-8"))
        offset += header_length
        (count,) = _COUNT.unpack_from(view, offset)
        offset += _COUNT.size
        buffers: List[memoryview] = []
        for _ in range(count):
            (length,) = _BUFFER_LENGTH.unpack_from(view, offset)
            offset += _BUFFER_LENGTH.size
            if offset + int(length) > len(view):
                raise ValueError(
                    f"buffer of {length} bytes extends past the frame end"
                )
            buffers.append(view[offset:offset + int(length)])
            offset += int(length)
    except (struct.error, ValueError, json.JSONDecodeError) as error:
        raise ServiceError(f"truncated or corrupt wire frame: {error}") from error
    if not isinstance(header, dict) or "kind" not in header:
        raise ServiceError("wire frame header must be a JSON object with a 'kind'")
    return header, buffers


# -- outcome encoding (worker side) ---------------------------------------------


def encode_outcomes(
    outcomes: Sequence["MatchOutcome"], cube_dtype: str = "float64"
) -> bytes:
    """Encode a batch of match outcomes as one ``outcomes`` frame.

    Per outcome the header carries the matcher names, the cube shape, the
    cube buffer's dtype, the selected ``(source, target)`` dotted-path pairs
    and the strategy spec actually used; three raw buffers carry the cube
    stack (encoded as ``cube_dtype`` -- the store's dtype contract), the
    aggregated matrix and the correspondence similarities (with the combined
    schema similarity appended as the final element).  The aggregated matrix
    and the similarities always travel as ``float64``, so the floats that
    decide mappings cross the boundary bit-exactly whatever the cube dtype.
    """
    if cube_dtype not in CUBE_DTYPES:
        raise ServiceError(
            f"unknown cube wire dtype {cube_dtype!r}, expected one of {CUBE_DTYPES}"
        )
    items: List[Dict[str, object]] = []
    buffers: List[object] = []
    for outcome in outcomes:
        stack = outcome.cube.as_array()
        sims = np.array(
            [c.similarity for c in outcome.result.correspondences]
            + [outcome.schema_similarity],
            dtype=np.float64,
        )
        items.append(
            {
                "matchers": list(outcome.cube.matcher_names),
                "shape": list(stack.shape),
                "cube_dtype": cube_dtype,
                "pairs": [
                    [c.source.dotted(), c.target.dotted()]
                    for c in outcome.result.correspondences
                ],
                "strategy": outcome.strategy.to_spec(),
                "buffers": [len(buffers), len(buffers) + 1, len(buffers) + 2],
            }
        )
        buffers.extend(
            [encode_stack(stack, cube_dtype), outcome.aggregated.values, sims]
        )
    return encode_frame({"kind": "outcomes", "items": items}, buffers)


# -- outcome rebuilding (parent side) -------------------------------------------


def rebuild_outcome(
    item: Dict[str, object],
    buffers: Sequence[memoryview],
    source: "Schema",
    target: "Schema",
    strategy,
    context,
) -> "MatchOutcome":
    """Reassemble one :class:`~repro.core.match_operation.MatchOutcome`.

    ``source`` / ``target`` are the *parent's* schema objects -- the worker
    matched content-identical reconstructions, so the path axes line up by
    construction (a shape mismatch means the schema mutated between digesting
    and dispatching and is reported as a :class:`ServiceError`).  All floats
    are taken from the raw buffers, never from JSON; with the default
    ``float64`` cube dtype the rebuilt outcome is bit-identical to the
    worker's, and with a compact cube dtype only the cube layers carry the
    (tested) quantization error -- correspondences and the aggregated matrix
    are always exact.
    """
    from repro.core.match_operation import MatchOutcome

    source_paths = source.paths()
    target_paths = target.paths()
    matcher_names = list(item["matchers"])
    shape = tuple(int(value) for value in item["shape"])
    if shape != (len(matcher_names), len(source_paths), len(target_paths)):
        raise ServiceError(
            f"match worker returned a cube of shape {shape} for path axes "
            f"({len(source_paths)}, {len(target_paths)}); was a schema "
            f"mutated mid-request?"
        )
    cube_index, aggregated_index, sims_index = (int(i) for i in item["buffers"])
    cube_dtype = str(item.get("cube_dtype", "float64"))
    if cube_dtype not in CUBE_DTYPES:
        raise ServiceError(
            f"match worker sent a cube of unknown dtype {cube_dtype!r}"
        )
    # decode_stack copies out of the frame (bytearray / astype), so the cube
    # fed into downstream caches and stores is writable, never a read-only
    # view into the connection's receive buffer.  The aggregated matrix gets
    # the same copy treatment.
    stack = decode_stack(buffers[cube_index], cube_dtype, shape)
    aggregated_values = np.frombuffer(
        bytearray(buffers[aggregated_index]), dtype=np.float64
    ).reshape(shape[1], shape[2])
    sims = np.frombuffer(buffers[sims_index], dtype=np.float64)
    pairs = list(item["pairs"])
    if len(sims) != len(pairs) + 1:
        raise ServiceError(
            f"match worker returned {len(sims)} similarities for "
            f"{len(pairs)} correspondences"
        )
    cube = SimilarityCube.from_layers(
        source_paths,
        target_paths,
        (
            (name, SimilarityMatrix(source_paths, target_paths, stack[index]))
            for index, name in enumerate(matcher_names)
        ),
    )
    aggregated = SimilarityMatrix(source_paths, target_paths, aggregated_values)
    by_source = {path.dotted(): path for path in source_paths}
    by_target = {path.dotted(): path for path in target_paths}
    result = MatchResult(source, target)
    try:
        for (source_dotted, target_dotted), similarity in zip(pairs, sims):
            result.add(
                Correspondence(
                    by_source[source_dotted], by_target[target_dotted], float(similarity)
                )
            )
    except KeyError as error:
        raise ServiceError(
            f"match worker returned a correspondence over unknown path {error}"
        ) from error
    return MatchOutcome(
        result=result,
        cube=cube,
        aggregated=aggregated,
        schema_similarity=float(sims[-1]),
        strategy=strategy,
        context=context,
    )


# -- error frames ----------------------------------------------------------------


def encode_error(error: BaseException) -> bytes:
    """Encode an exception as an ``error`` frame (type name + message + status)."""
    status = getattr(error, "status", 0)
    return encode_frame(
        {
            "kind": "error",
            "error": str(error),
            "error_type": type(error).__name__,
            "status": int(status) if isinstance(status, int) else 0,
        }
    )


def raise_remote_error(header: Dict[str, object]) -> None:
    """Re-raise a worker's ``error`` frame as a :class:`ServiceError`."""
    raise ServiceError(
        f"match worker failed: {header.get('error_type', 'Error')}: "
        f"{header.get('error', 'unknown error')}",
        status=int(header.get("status", 0) or 0),
    )


def schema_payload(schema: "Schema") -> bytes:
    """The wire form of one schema (the loss-less repository JSON document)."""
    from repro.repository.serialization import schema_to_json

    return schema_to_json(schema).encode("utf-8")


def schema_from_payload(payload: memoryview) -> "Schema":
    """Rebuild a schema from its wire form."""
    from repro.repository.serialization import schema_from_json

    return schema_from_json(bytes(payload).decode("utf-8"))
