"""Process-parallel match execution: break the GIL ceiling, keep byte-identity.

The warm HTTP service throughput flat-lines under concurrent clients because
every :class:`~repro.service.pool.SessionPool` shard shares one interpreter --
the GIL, not the hardware, is the ceiling.  Composite matching is
embarrassingly parallel across schema pairs, so this package adds a
**process** execution backend:

* :class:`~repro.parallel.pool.ProcessSessionPool` -- spawn-safe worker
  processes, each owning a warm :class:`~repro.session.session.MatchSession`
  (optionally seeded from a shared persistent
  :class:`~repro.repository.store.SimilarityStore`);
* :mod:`~repro.parallel.codec` -- the compact request/response wire format
  (schemas as loss-less JSON documents shipped once per worker, strategy
  specs as strings, similarity layers as raw ``float64`` buffers -- never
  pickled object graphs).

Entry points: ``MatchSession.match_many(..., processes=N)`` fans a batch out
across worker processes, and ``coma serve --backend process --workers N``
runs the HTTP service on the pool.  Both are byte-identical to the serial
path -- same mappings, same similarity bits -- which the differential suite
in ``tests/test_parallel_equivalence.py`` enforces against a serial
reference, in the spirit of VOODB-style validation of parallel backends.
"""

from repro.parallel.codec import decode_frame, encode_frame
from repro.parallel.pool import ProcessSessionPool

__all__ = ["ProcessSessionPool", "decode_frame", "encode_frame"]
