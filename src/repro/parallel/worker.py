"""The match worker: one process, one warm session, a framed request loop.

``worker_main`` is the spawn target of
:class:`~repro.parallel.pool.ProcessSessionPool`.  It is deliberately a
module-level function taking only picklable arguments (a
``multiprocessing.connection.Connection`` and a plain options dict), so the
pool works under the ``spawn`` start method -- the only one that is safe
regardless of the parent's thread activity (``fork`` would duplicate the
parent's locked session caches, HTTP server threads and sqlite handles).

The worker owns a private warm :class:`~repro.session.session.MatchSession`;
when the parent configured a persistent
:class:`~repro.repository.store.SimilarityStore` path, the session opens its
own connection to that shared file, so every worker starts warm from cubes
any process stored before it (and contributes its own).  Schemas arrive once
per worker as loss-less JSON documents and are cached by content digest;
match requests then reference digests only.

Protocol (all frames via :mod:`repro.parallel.codec`):

===============  ==============================================================
request kind     reply
===============  ==============================================================
``match``        ``outcomes`` (one item per pair) or ``unknown-schema``
``stats``        ``stats`` with the session's ``cache_info`` + pid + requests
``clear``        ``ok`` (caches dropped)
``shutdown``     ``ok``, then the loop exits and the session closes
===============  ==============================================================

Any per-request failure is answered with an ``error`` frame; the loop only
exits on ``shutdown`` or a closed pipe, so one bad request never kills the
worker.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional

from repro import faults
from repro.exceptions import ComaError
from repro.parallel import codec

#: How many reconstructed schemas one worker keeps (oldest evicted first).  An
#: evicted digest is simply re-shipped by the parent through the
#: ``unknown-schema`` recovery round trip.
SCHEMA_CACHE_BOUND = 256


def _build_session(options: Dict[str, object]):
    """The worker's warm session, built from spawn-safe primitive options."""
    from repro.session.session import MatchSession

    repository = None
    repository_path = options.get("repository_path")
    if repository_path:
        from repro.repository.repository import Repository

        # threadsafe: the session's store writer thread and the request loop
        # may both touch repository-backed reuse matchers.
        repository = Repository(str(repository_path), threadsafe=True)
    return MatchSession(
        repository=repository,
        store=options.get("store_path") or None,
        store_dtype=options.get("store_dtype") or None,
        strategy=options.get("default_strategy") or None,
    )


def _handle_match(
    session,
    schemas: "OrderedDict",
    header,
    buffers,
    bound: int,
    wire_dtype: str = "float64",
):
    """Execute one ``match`` request; returns ``(reply bytes, pairs matched)``."""
    faults.fault_point("worker.match")
    pairs = header["pairs"]
    needed = {str(pair[side]) for pair in pairs for side in ("source", "target")}
    for entry in header.get("schemas", ()):
        digest = str(entry["digest"])
        if digest not in schemas:
            schemas[digest] = codec.schema_from_payload(buffers[int(entry["buffer"])])
        else:
            schemas.move_to_end(digest)
    # Evict beyond the bound, but never a schema this very frame references --
    # otherwise a single chunk touching more distinct schemas than the bound
    # would evict its own payload and re-request it forever.
    if len(schemas) > bound:
        for digest in [d for d in schemas if d not in needed]:
            if len(schemas) <= bound:
                break
            del schemas[digest]
    missing = sorted(digest for digest in needed if digest not in schemas)
    if missing:
        return codec.encode_frame({"kind": "unknown-schema", "digests": missing}), 0
    outcomes = []
    for pair in pairs:
        source = schemas[str(pair["source"])]
        target = schemas[str(pair["target"])]
        schemas.move_to_end(str(pair["source"]))
        schemas.move_to_end(str(pair["target"]))
        outcomes.append(
            session.match(source, target, strategy=pair.get("strategy") or None)
        )
    return codec.encode_outcomes(outcomes, cube_dtype=wire_dtype), len(outcomes)


def worker_main(connection, options: Dict[str, object]) -> None:
    """Run the worker request loop until ``shutdown`` or a closed pipe."""
    plan_document = options.get("fault_plan")
    if plan_document:
        # The parent ships its fault plan with the spawn options, so chaos
        # runs exercise the same fault model on both sides of the pipe.  A
        # respawned worker re-arms from a fresh document (counters at zero):
        # per-process triggers like "kill on the first match" stay active
        # across the respawn, which is exactly what a crash-loop scenario
        # needs.
        faults.arm(faults.FaultPlan.from_dict(dict(plan_document)))
    session = _build_session(options)
    schemas: "OrderedDict[str, object]" = OrderedDict()
    bound = int(options.get("schema_cache_bound") or SCHEMA_CACHE_BOUND)
    wire_dtype = str(options.get("wire_dtype") or "float64")
    requests = 0
    connection.send_bytes(
        codec.encode_frame(
            {
                "kind": "ready",
                # The parent refuses to fan out a session whose configuration
                # digest differs (that would silently break byte-identity).
                "config_digest": session.config_digest(),
                "pid": os.getpid(),
            }
        )
    )
    try:
        while True:
            try:
                data = connection.recv_bytes()
            except (EOFError, OSError):
                break  # the parent went away; nothing left to serve
            try:
                header, buffers = codec.decode_frame(data)
                kind = header["kind"]
                if kind == "shutdown":
                    connection.send_bytes(codec.encode_frame({"kind": "ok"}))
                    break
                if kind == "match":
                    # Counted on execution only: an unknown-schema reply (and
                    # its replay) must not inflate the per-worker numbers.
                    reply, matched = _handle_match(
                        session, schemas, header, buffers, bound, wire_dtype
                    )
                    requests += matched
                elif kind == "stats":
                    reply = codec.encode_frame(
                        {
                            "kind": "stats",
                            "info": {
                                "pid": os.getpid(),
                                "requests": requests,
                                "schemas": len(schemas),
                                **session.cache_info(),
                            },
                        }
                    )
                elif kind == "clear":
                    session.clear_caches()
                    schemas.clear()
                    reply = codec.encode_frame({"kind": "ok"})
                else:
                    raise ComaError(f"unknown worker request kind {kind!r}")
            except Exception as error:  # noqa: BLE001 - reply, never die
                reply = codec.encode_error(error)
            try:
                connection.send_bytes(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        session.close()
        connection.close()
