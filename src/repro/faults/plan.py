"""Deterministic, seed-driven fault injection for the resilience harness.

A production matcher must *degrade* under partial failure -- a flipped byte
in a store blob, a wedged worker process, a lost corpus index -- rather than
hang or return a silently wrong answer.  That behaviour is only trustworthy
when it is exercised by a **repeatable** fault model: ad-hoc ``kill -9`` and
hand-corrupted files reproduce a failure once, while a reviewer (or the CI
chaos lane) needs the *same* failure on every run.  This module provides that
model:

* a :class:`FaultPoint` is a **named seam** compiled into production code
  (``"store.blob"``, ``"worker.match"``, ``"corpus.rank"``, ...).  Seams are
  free when nothing is armed: :func:`fault_point` is one module-global read
  and a ``None`` check;
* a :class:`FaultRule` matches a seam (exact name or ``fnmatch`` glob, plus
  an optional key substring) with a **deterministic trigger** -- the nth
  matching call, every nth call, all calls after the first n -- and an
  **action**: ``raise`` a configurable exception, ``corrupt`` the bytes
  flowing through the seam (seeded, reproducible), ``delay`` the call (a
  wedged dependency), or ``kill`` the process (a crash);
* a :class:`FaultPlan` bundles rules, round-trips through JSON (so plans
  ship to spawned pool workers inside the handshake options and load from a
  file for ``coma serve --fault-plan``), and counts every visit and firing
  for assertions.

Nothing here is imported by production code paths beyond the tiny hook
functions at the bottom; arming is always explicit (:func:`arm`, the
:func:`armed` context manager, or the ``COMA_ENABLE_FAULTS``-gated CLI
flag).

Examples
--------
>>> plan = FaultPlan([FaultRule(point="demo.seam", action="raise", nth=2)])
>>> with armed(plan):
...     fault_point("demo.seam")          # first call: no trigger
...     try:
...         fault_point("demo.seam")      # second call: boom
...     except FaultInjected as error:
...         print("injected")
injected
>>> plan.stats()[0]["fired"]
1
"""

from __future__ import annotations

import contextlib
import fnmatch
import json
import os
import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import FaultInjected, RepositoryError, SearchError, ServiceError

#: Actions a rule may take when it fires.
ACTIONS = ("raise", "corrupt", "delay", "kill")

#: Corruption modes of the ``corrupt`` action.
CORRUPT_MODES = ("flip", "truncate", "zero")

#: The exception types a ``raise`` rule may name.  Deliberately a closed
#: registry of *constructible-from-one-message* types: a plan loaded from an
#: untrusted file can only raise errors the harness already handles.
ERROR_TYPES = {
    "FaultInjected": FaultInjected,
    "OSError": OSError,
    "IOError": OSError,
    "sqlite3.OperationalError": sqlite3.OperationalError,
    "sqlite3.DatabaseError": sqlite3.DatabaseError,
    "RepositoryError": RepositoryError,
    "SearchError": SearchError,
    "ServiceError": ServiceError,
}

#: Exit code of the ``kill`` action -- distinctive enough that a test seeing
#: a worker die with it knows the harness (not the code under test) did it.
KILL_EXIT_CODE = 86


@dataclass
class FaultRule:
    """One deterministic fault: *where* (seam), *when* (trigger), *what* (action).

    Parameters
    ----------
    point:
        The seam name to match -- exact, or an ``fnmatch`` glob
        (``"store.*"``).
    action:
        ``"raise"`` | ``"corrupt"`` | ``"delay"`` | ``"kill"``.
    nth:
        Fire on exactly the nth matching call (1-based).
    every:
        Fire on every ``every``-th matching call (1 = every call).
    after:
        Fire on every matching call *after* the first ``after``.
    count:
        Fire at most this many times (``None`` = unlimited).  The default
        for ``nth`` rules is effectively one firing.
    key:
        Only calls whose key contains this substring match (seams pass a
        content key -- a store digest, a schema-pair digest -- when they
        have one).
    error:
        For ``raise``: a name from :data:`ERROR_TYPES`.
    message:
        The injected exception's message (a default names the seam).
    delay:
        For ``delay``: seconds the seam blocks (simulating a wedged
        dependency; pair with a deadline on the caller's side).
    mode / seed / flips:
        For ``corrupt``: ``"flip"`` XOR-flips ``flips`` seeded byte
        positions, ``"truncate"`` drops the second half, ``"zero"`` zeroes
        the payload.  The same ``(seed, firing index)`` always corrupts the
        same positions -- byte-level chaos, exactly reproducible.
    """

    point: str
    action: str
    nth: Optional[int] = None
    every: Optional[int] = None
    after: Optional[int] = None
    count: Optional[int] = None
    key: Optional[str] = None
    error: str = "FaultInjected"
    message: Optional[str] = None
    delay: float = 0.0
    mode: str = "flip"
    seed: int = 0
    flips: int = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultInjected(
                f"unknown fault action {self.action!r}, expected one of {ACTIONS}"
            )
        if self.action == "raise" and self.error not in ERROR_TYPES:
            raise FaultInjected(
                f"unknown fault error type {self.error!r}, expected one of "
                f"{sorted(ERROR_TYPES)}"
            )
        if self.action == "corrupt" and self.mode not in CORRUPT_MODES:
            raise FaultInjected(
                f"unknown corruption mode {self.mode!r}, expected one of "
                f"{CORRUPT_MODES}"
            )
        triggers = [value for value in (self.nth, self.every, self.after)
                    if value is not None]
        if len(triggers) > 1:
            raise FaultInjected(
                "a fault rule takes at most one of nth= / every= / after="
            )
        for label, value in (("nth", self.nth), ("every", self.every)):
            if value is not None and value < 1:
                raise FaultInjected(f"{label}= must be >= 1, got {value}")

    # -- matching and firing ---------------------------------------------------

    def matches(self, point: str, key: Optional[str]) -> bool:
        """Whether this rule applies to one seam visit (before trigger logic)."""
        if point != self.point and not fnmatch.fnmatchcase(point, self.point):
            return False
        if self.key is not None and (key is None or self.key not in key):
            return False
        return True

    def should_fire(self, calls: int, fired: int) -> bool:
        """The trigger decision for the ``calls``-th matching call (1-based)."""
        if self.count is not None and fired >= self.count:
            return False
        if self.nth is not None:
            return calls == self.nth
        if self.every is not None:
            return calls % self.every == 0
        if self.after is not None:
            return calls > self.after
        return True  # no trigger given: every matching call fires

    def build_error(self) -> Exception:
        """The exception instance a ``raise`` firing throws."""
        message = self.message or f"injected fault at {self.point!r}"
        return ERROR_TYPES[self.error](message)

    def corrupt(self, data: bytes, firing: int) -> bytes:
        """Deterministically corrupt ``data`` for the ``firing``-th firing."""
        if not data:
            return data
        if self.mode == "truncate":
            return data[: len(data) // 2]
        if self.mode == "zero":
            return bytes(len(data))
        mutated = bytearray(data)
        for flip in range(max(1, self.flips)):
            # A fixed multiplicative hash over (seed, firing, flip): the same
            # plan corrupts the same byte positions on every run.
            position = (
                zlib.crc32(f"{self.seed}:{firing}:{flip}".encode("ascii"))
                % len(mutated)
            )
            mutated[position] ^= 0xFF
        return bytes(mutated)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The JSON-serialisable form (defaults omitted for readability)."""
        document: Dict[str, object] = {"point": self.point, "action": self.action}
        for name in ("nth", "every", "after", "count", "key", "message"):
            value = getattr(self, name)
            if value is not None:
                document[name] = value
        if self.action == "raise" and self.error != "FaultInjected":
            document["error"] = self.error
        if self.action == "delay" and self.delay:
            document["delay"] = self.delay
        if self.action == "corrupt":
            document.update({"mode": self.mode, "seed": self.seed})
            if self.flips != 1:
                document["flips"] = self.flips
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output (unknown keys rejected)."""
        if not isinstance(document, dict):
            raise FaultInjected("a fault rule document must be a JSON object")
        known = {
            "point", "action", "nth", "every", "after", "count", "key",
            "error", "message", "delay", "mode", "seed", "flips",
        }
        unknown = set(document) - known
        if unknown:
            raise FaultInjected(
                f"unknown fault rule field(s): {', '.join(sorted(unknown))}"
            )
        if "point" not in document or "action" not in document:
            raise FaultInjected("a fault rule needs at least 'point' and 'action'")
        return cls(**document)  # type: ignore[arg-type]


class FaultPlan:
    """An armable bundle of :class:`FaultRule`\\ s with per-rule counters.

    The plan carries all runtime state (visit and firing counts per rule)
    behind one lock, so seams on any thread share the deterministic
    counting.  Plans serialise to JSON (:meth:`to_dict` / :meth:`to_json` /
    :meth:`save`) and back (:meth:`from_dict` / :meth:`load`), which is how
    they travel to spawned pool workers and into ``coma serve
    --fault-plan``.
    """

    def __init__(self, rules: Sequence[FaultRule], name: str = "fault-plan"):
        self.name = str(name)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._lock = threading.Lock()
        self._calls = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)

    # -- the runtime -----------------------------------------------------------

    def visit(self, point: str, key: Optional[str] = None) -> None:
        """One seam visit: fire every matching rule's non-byte action.

        ``delay`` sleeps, ``kill`` exits the process with
        :data:`KILL_EXIT_CODE`, ``raise`` raises; ``corrupt`` rules are
        ignored here (they only act in :meth:`transform`).
        """
        for rule, firing in self._due(point, key, byte_rules=False):
            if rule.action == "delay":
                time.sleep(rule.delay)
            elif rule.action == "kill":
                os._exit(KILL_EXIT_CODE)
            else:  # raise
                raise rule.build_error()

    def transform(self, point: str, data: bytes, key: Optional[str] = None) -> bytes:
        """One byte-carrying seam visit: apply due ``corrupt`` rules to ``data``.

        Non-corrupt rules matching the same seam fire exactly as in
        :meth:`visit` (a byte seam can also raise or delay).
        """
        for rule, firing in self._due(point, key, byte_rules=True):
            if rule.action == "corrupt":
                data = rule.corrupt(bytes(data), firing)
            elif rule.action == "delay":
                time.sleep(rule.delay)
            elif rule.action == "kill":
                os._exit(KILL_EXIT_CODE)
            else:
                raise rule.build_error()
        return data

    def _due(
        self, point: str, key: Optional[str], byte_rules: bool
    ) -> List[Tuple[FaultRule, int]]:
        """Advance counters for one visit; the rules due to fire, in order.

        ``corrupt`` rules only *count* visits on byte seams (transform), so
        a plan mixing corrupt and raise rules keeps each rule's call
        numbering aligned with the seam kind it acts on.
        """
        due: List[Tuple[FaultRule, int]] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.action == "corrupt" and not byte_rules:
                    continue
                if not rule.matches(point, key):
                    continue
                self._calls[index] += 1
                if rule.should_fire(self._calls[index], self._fired[index]):
                    self._fired[index] += 1
                    due.append((rule, self._fired[index]))
        return due

    def stats(self) -> List[Dict[str, object]]:
        """Per-rule visit/firing counters (for test assertions and /stats)."""
        with self._lock:
            return [
                {
                    "point": rule.point,
                    "action": rule.action,
                    "calls": self._calls[index],
                    "fired": self._fired[index],
                }
                for index, rule in enumerate(self.rules)
            ]

    def reset(self) -> None:
        """Zero every rule's counters (a fresh deterministic run)."""
        with self._lock:
            self._calls = [0] * len(self.rules)
            self._fired = [0] * len(self.rules)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The JSON-serialisable plan document."""
        return {
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        >>> plan = FaultPlan([FaultRule(point="a.b", action="delay", delay=0.5)])
        >>> FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()
        True
        """
        if not isinstance(document, dict) or not isinstance(
            document.get("rules"), list
        ):
            raise FaultInjected(
                "a fault plan document must be a JSON object with a 'rules' list"
            )
        return cls(
            [FaultRule.from_dict(rule) for rule in document["rules"]],
            name=str(document.get("name", "fault-plan")),
        )

    def to_json(self) -> str:
        """The plan as a JSON string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the plan to a JSON file (the ``--fault-plan`` input format)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file; raises :class:`FaultInjected` cleanly."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise FaultInjected(f"cannot read fault plan {path!r}: {error}") from error
        except json.JSONDecodeError as error:
            raise FaultInjected(
                f"fault plan {path!r} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(document)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(name={self.name!r}, rules={len(self.rules)})"


# -- process-wide arming ----------------------------------------------------------

#: The armed plan (or None).  Read unlocked on every seam visit: Python name
#: reads are atomic, and a seam racing arm()/disarm() harmlessly sees either
#: the old or the new plan -- determinism only requires that tests arm before
#: they drive traffic, which they do.
_ACTIVE: Optional[FaultPlan] = None
_ARM_LOCK = threading.Lock()


def arm(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any armed plan); returns it."""
    global _ACTIVE
    with _ARM_LOCK:
        _ACTIVE = plan
    return plan


def disarm() -> None:
    """Remove the armed plan; every seam returns to its zero-cost path."""
    global _ACTIVE
    with _ARM_LOCK:
        _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def armed(plan: FaultPlan):
    """Arm ``plan`` for the duration of a ``with`` block (always disarms)."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


# -- the seams (the only calls production code makes) ------------------------------


def fault_point(point: str, key: Optional[str] = None) -> None:
    """A named seam: no-op unless a plan is armed (one global read).

    Production call sites name their seam and, when they have one, a content
    key (a store digest, a schema-pair identifier) so plans can target
    specific traffic.  May raise, sleep or kill the process, per the armed
    plan's rules.
    """
    plan = _ACTIVE
    if plan is None:
        return
    plan.visit(point, key)


def fault_bytes(point: str, data: bytes, key: Optional[str] = None) -> bytes:
    """A byte-carrying seam: returns ``data`` (possibly corrupted) .

    Used where payload bytes cross a trust boundary -- store blobs and side
    files -- so corruption plans can flip exactly the bytes a torn write or
    bad disk would.
    """
    plan = _ACTIVE
    if plan is None:
        return data
    return plan.transform(point, data, key)
