"""The named, deterministic fault catalog.

Each entry is a complete :class:`~repro.faults.plan.FaultPlan` targeting one
failure mode the stack must survive.  The resilience suite
(``tests/test_resilience_e2e.py``) and the CI chaos lane replay every entry
and assert the system either returns **byte-identical** results to the
fault-free run or fails with a **typed error** -- never a hang, never a
silently wrong answer.

Plans carry runtime counters, so :func:`catalog_plan` builds a *fresh* plan
per call; :data:`CATALOG` maps names to builder callables.

Seam names instrumented across the stack (the fault-point catalog):

====================  ===========================================================
seam                  where / what flows through
====================  ===========================================================
``store.load``        top of ``SimilarityStore.load_cube`` (visit; key = cube key)
``store.blob.read``   inline blob payload bytes after the header (byte seam)
``store.side.read``   side-file bytes during integrity verification (byte seam)
``store.write``       ``SimilarityStore.store_cube`` before the row lands (visit)
``store.blob.write``  encoded payload bytes on their way to disk (byte seam)
``worker.match``      pool worker, before executing a match frame (visit)
``pool.roundtrip``    parent side, before a frame is sent to a worker (visit)
``corpus.rank``       ``SchemaCorpus.rank`` candidate generation (visit)
``corpus.load``       ``SchemaCorpus.load`` schema materialisation (visit)
====================  ===========================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.plan import FaultPlan, FaultRule


def _store_corruption() -> FaultPlan:
    """Flip seeded bytes in every cube blob read for the first four reads.

    Exercises the crc32 detection path: each corrupt read must be counted,
    quarantined, and served as a miss that recomputes -- results stay
    byte-identical to a fault-free run.
    """
    return FaultPlan(
        [
            FaultRule(point="store.blob.read", action="corrupt",
                      mode="flip", seed=901, flips=3, count=4),
            FaultRule(point="store.side.read", action="corrupt",
                      mode="flip", seed=902, flips=3, count=4),
        ],
        name="store-corruption",
    )


def _store_truncation() -> FaultPlan:
    """Serve torn (half-length) blob payloads for the first three reads."""
    return FaultPlan(
        [
            FaultRule(point="store.blob.read", action="corrupt",
                      mode="truncate", count=3),
        ],
        name="store-truncation",
    )


def _worker_hang() -> FaultPlan:
    """Wedge the first match frame a worker sees for two minutes.

    Without a deadline this hangs ``match_many`` forever; with
    ``timeout=`` the watchdog must SIGKILL the worker and surface a typed
    :class:`~repro.exceptions.PoolTimeoutError` within deadline + grace.
    """
    return FaultPlan(
        [FaultRule(point="worker.match", action="delay", delay=120.0, nth=1)],
        name="worker-hang",
    )


def _worker_crash_loop() -> FaultPlan:
    """Kill the worker process on each of the first three match frames.

    One death is absorbed by replay-once; three consecutive deaths must trip
    the circuit breaker, which routes chunks to in-process execution (same
    results, byte-identical) until a probe finds workers healthy again.
    """
    return FaultPlan(
        [FaultRule(point="worker.match", action="kill", count=3)],
        name="worker-crash-loop",
    )


def _corpus_index_loss() -> FaultPlan:
    """Fail corpus candidate generation as if the index file vanished.

    Search must come back as a typed 503 carrying
    ``details.component == "corpus"`` and ``/health`` must show the corpus
    component degraded; plain pair matching keeps working.
    """
    return FaultPlan(
        [
            FaultRule(point="corpus.rank", action="raise",
                      error="sqlite3.OperationalError",
                      message="no such table: schemas (injected index loss)"),
        ],
        name="corpus-index-loss",
    )


def _mid_write_kill() -> FaultPlan:
    """Kill the process in the middle of its second store write.

    Replayed inside a sacrificial subprocess: after the kill, the store
    opened by the parent must hold only complete, crc-clean blobs (the
    tmp+rename and WAL discipline make torn writes invisible).
    """
    return FaultPlan(
        [FaultRule(point="store.write", action="kill", nth=2)],
        name="mid-write-kill",
    )


CATALOG: Dict[str, Callable[[], FaultPlan]] = {
    "store-corruption": _store_corruption,
    "store-truncation": _store_truncation,
    "worker-hang": _worker_hang,
    "worker-crash-loop": _worker_crash_loop,
    "corpus-index-loss": _corpus_index_loss,
    "mid-write-kill": _mid_write_kill,
}


def catalog_plan(name: str) -> FaultPlan:
    """A fresh (zero-counter) plan for catalog entry ``name``.

    >>> catalog_plan("worker-hang").rules[0].action
    'delay'
    """
    try:
        builder = CATALOG[name]
    except KeyError:
        raise_from = sorted(CATALOG)
        from repro.exceptions import FaultInjected

        raise FaultInjected(
            f"unknown catalog plan {name!r}, expected one of {raise_from}"
        ) from None
    return builder()
