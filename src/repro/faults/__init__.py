"""Deterministic fault injection (:mod:`repro.faults`).

Public surface:

* :class:`FaultRule` / :class:`FaultPlan` -- declare *where* (named seam),
  *when* (deterministic trigger) and *what* (raise / corrupt / delay / kill);
* :func:`arm` / :func:`disarm` / :func:`armed` / :func:`active_plan` --
  process-wide installation;
* :func:`fault_point` / :func:`fault_bytes` -- the seams production code
  compiles in (zero-cost while nothing is armed);
* :data:`CATALOG` / :func:`catalog_plan` -- the named fault catalog the
  resilience suite and the CI chaos lane replay.
"""

from repro.faults.catalog import CATALOG, catalog_plan
from repro.faults.plan import (
    ACTIONS,
    CORRUPT_MODES,
    ERROR_TYPES,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    armed,
    disarm,
    fault_bytes,
    fault_point,
)

__all__ = [
    "ACTIONS",
    "CATALOG",
    "CORRUPT_MODES",
    "ERROR_TYPES",
    "KILL_EXIT_CODE",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "arm",
    "armed",
    "catalog_plan",
    "disarm",
    "fault_bytes",
    "fault_point",
]
