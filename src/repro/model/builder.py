"""A small fluent builder for constructing schemas programmatically.

The importers cover external formats (DDL, XSD, dicts); the builder covers the
common in-code case of tests, examples and the bundled datasets, where nesting
is easiest to express with ``with``-style contexts:

.. code-block:: python

    builder = SchemaBuilder("PO2")
    with builder.inner("DeliverTo"):
        with builder.inner("Address"):
            builder.leaf("Street", "xsd:string")
            builder.leaf("City", "xsd:string")
    schema = builder.build()

Shared fragments are supported with :meth:`SchemaBuilder.shared` /
:meth:`SchemaBuilder.attach_shared`, mirroring the ``Address`` complex type of
the paper's PO2 example.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional

from repro.exceptions import SchemaError
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema


class SchemaBuilder:
    """Fluent construction of :class:`~repro.model.schema.Schema` objects."""

    def __init__(self, name: str, namespace: Optional[str] = None):
        self._schema = Schema(name, namespace=namespace)
        self._stack: List[SchemaElement] = [self._schema.root]
        self._shared: Dict[str, SchemaElement] = {}
        self._built = False

    # -- nesting -------------------------------------------------------------

    @property
    def current_parent(self) -> SchemaElement:
        """The element new children are currently attached to."""
        return self._stack[-1]

    @contextlib.contextmanager
    def inner(
        self,
        name: str,
        kind: ElementKind = ElementKind.ELEMENT,
        documentation: Optional[str] = None,
    ) -> Iterator[SchemaElement]:
        """Add an inner element and make it the parent for the ``with`` block."""
        element = self._schema.add_element(
            name, parent=self.current_parent, kind=kind, documentation=documentation
        )
        self._stack.append(element)
        try:
            yield element
        finally:
            self._stack.pop()

    def leaf(
        self,
        name: str,
        source_type: Optional[str] = None,
        kind: ElementKind = ElementKind.ELEMENT,
        documentation: Optional[str] = None,
    ) -> SchemaElement:
        """Add a leaf element under the current parent."""
        return self._schema.add_element(
            name,
            parent=self.current_parent,
            kind=kind,
            source_type=source_type,
            documentation=documentation,
        )

    def leaves(self, *names_and_types: tuple[str, Optional[str]] | str) -> List[SchemaElement]:
        """Add several leaves at once; items are names or ``(name, type)`` tuples."""
        created = []
        for item in names_and_types:
            if isinstance(item, tuple):
                name, source_type = item
            else:
                name, source_type = item, None
            created.append(self.leaf(name, source_type))
        return created

    # -- shared fragments --------------------------------------------------------

    @contextlib.contextmanager
    def shared(self, fragment_name: str, kind: ElementKind = ElementKind.TYPE) -> Iterator[SchemaElement]:
        """Define a reusable fragment rooted at a detached element.

        The fragment is *not* part of any path until attached with
        :meth:`attach_shared`; children added inside the block hang beneath it.
        """
        if fragment_name in self._shared:
            raise SchemaError(f"shared fragment {fragment_name!r} is already defined")
        element = self._schema.add_detached_element(fragment_name, kind=kind)
        self._shared[fragment_name] = element
        self._stack.append(element)
        try:
            yield element
        finally:
            self._stack.pop()

    def attach_shared(self, fragment_name: str, parent: Optional[SchemaElement] = None) -> SchemaElement:
        """Attach a previously defined shared fragment under ``parent`` (default current)."""
        if fragment_name not in self._shared:
            raise SchemaError(f"shared fragment {fragment_name!r} has not been defined")
        fragment = self._shared[fragment_name]
        self._schema.add_link(parent if parent is not None else self.current_parent, fragment)
        return fragment

    # -- finishing ------------------------------------------------------------------

    def reference(self, source: SchemaElement, target: SchemaElement) -> None:
        """Record a referential link (e.g. a foreign key) between two elements."""
        from repro.model.element import LinkKind

        self._schema.add_link(source, target, LinkKind.REFERENCE)

    def build(self) -> Schema:
        """Return the constructed schema.  The builder must not be reused afterwards."""
        if self._built:
            raise SchemaError("SchemaBuilder.build() may only be called once")
        if len(self._stack) != 1:
            raise SchemaError("unbalanced inner()/shared() blocks while building schema")
        self._built = True
        return self._schema
