"""Generic data types and the data-type compatibility table.

COMA's ``DataType`` matcher (Section 4.1 of the paper) does not compare the
raw source-level type strings (``VARCHAR(200)``, ``xsd:string``, ...).  Instead
every source type is first mapped onto a small set of *generic* data types and
a symmetric *compatibility table* assigns a similarity in ``[0, 1]`` to every
pair of generic types.

This module provides:

* :class:`GenericType` -- the enumeration of generic types,
* :func:`map_source_type` -- mapping from SQL / XSD / JSON type names to a
  generic type,
* :class:`TypeCompatibilityTable` -- the configurable compatibility table with
  a sensible default mirroring the paper's intent (identical types are fully
  compatible, numeric types are highly compatible with each other, string is
  moderately compatible with most types because almost anything can be encoded
  as a string).
"""

from __future__ import annotations

import enum
import re
from typing import Iterable, Mapping, Optional, Tuple


class GenericType(enum.Enum):
    """Generic data types onto which source-level types are mapped."""

    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    TIME = "time"
    DATETIME = "datetime"
    BINARY = "binary"
    IDENTIFIER = "identifier"
    ENUM = "enum"
    COMPLEX = "complex"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Regular-expression based mapping from source type names to generic types.
#: The first matching pattern wins; patterns are matched case-insensitively
#: against the source type with any parenthesised length/precision stripped.
_SOURCE_TYPE_PATTERNS: Tuple[Tuple[str, GenericType], ...] = (
    # SQL types
    (r"^(var)?char.*$", GenericType.STRING),
    (r"^(n)?(var)?char.*$", GenericType.STRING),
    (r"^(tiny|medium|long)?text$", GenericType.STRING),
    (r"^clob$", GenericType.STRING),
    (r"^(big|small|tiny|medium)?int(eger)?$", GenericType.INTEGER),
    (r"^serial$", GenericType.IDENTIFIER),
    (r"^(numeric|number|decimal|dec|money)$", GenericType.DECIMAL),
    (r"^(float|real|double( precision)?)$", GenericType.FLOAT),
    (r"^bool(ean)?$", GenericType.BOOLEAN),
    (r"^date$", GenericType.DATE),
    (r"^time$", GenericType.TIME),
    (r"^(datetime|timestamp.*)$", GenericType.DATETIME),
    (r"^(blob|binary|varbinary|bytea)$", GenericType.BINARY),
    (r"^uuid$", GenericType.IDENTIFIER),
    (r"^enum$", GenericType.ENUM),
    # XSD types (with or without the xsd:/xs: prefix)
    (r"^(xsd?:)?string$", GenericType.STRING),
    (r"^(xsd?:)?(normalizedstring|token|language|name|ncname)$", GenericType.STRING),
    (r"^(xsd?:)?(anyuri|qname)$", GenericType.STRING),
    (r"^(xsd?:)?(int|integer|long|short|byte)$", GenericType.INTEGER),
    (r"^(xsd?:)?(nonnegativeinteger|positiveinteger|unsignedint|unsignedlong)$",
     GenericType.INTEGER),
    (r"^(xsd?:)?decimal$", GenericType.DECIMAL),
    (r"^(xsd?:)?(float|double)$", GenericType.FLOAT),
    (r"^(xsd?:)?boolean$", GenericType.BOOLEAN),
    (r"^(xsd?:)?date$", GenericType.DATE),
    (r"^(xsd?:)?time$", GenericType.TIME),
    (r"^(xsd?:)?datetime$", GenericType.DATETIME),
    (r"^(xsd?:)?(base64binary|hexbinary)$", GenericType.BINARY),
    (r"^(xsd?:)?id(ref)?s?$", GenericType.IDENTIFIER),
    # JSON-ish names
    (r"^str$", GenericType.STRING),
    (r"^number$", GenericType.DECIMAL),
    (r"^object$", GenericType.COMPLEX),
    (r"^array$", GenericType.COMPLEX),
)

_COMPILED_PATTERNS = tuple(
    (re.compile(pattern, re.IGNORECASE), generic)
    for pattern, generic in _SOURCE_TYPE_PATTERNS
)


def normalise_source_type(source_type: str) -> str:
    """Strip length/precision arguments and whitespace from a source type name.

    ``VARCHAR(200)`` becomes ``varchar``; ``NUMERIC(10, 2)`` becomes ``numeric``.
    """
    stripped = source_type.strip().lower()
    stripped = re.sub(r"\(.*\)$", "", stripped).strip()
    return stripped


def map_source_type(source_type: Optional[str]) -> GenericType:
    """Map a source-level type string to its :class:`GenericType`.

    Unknown or empty strings map to :attr:`GenericType.UNKNOWN`; inner/complex
    elements without a type should use :attr:`GenericType.COMPLEX` explicitly.
    """
    if not source_type:
        return GenericType.UNKNOWN
    normalised = normalise_source_type(source_type)
    if not normalised:
        return GenericType.UNKNOWN
    for pattern, generic in _COMPILED_PATTERNS:
        if pattern.match(normalised):
            return generic
    return GenericType.UNKNOWN


#: Groups of generic types that are mutually highly compatible.
_NUMERIC_TYPES = frozenset({
    GenericType.INTEGER,
    GenericType.DECIMAL,
    GenericType.FLOAT,
})

_TEMPORAL_TYPES = frozenset({
    GenericType.DATE,
    GenericType.TIME,
    GenericType.DATETIME,
})

_TEXT_LIKE = frozenset({GenericType.STRING, GenericType.ENUM, GenericType.IDENTIFIER})


def _default_compatibility(a: GenericType, b: GenericType) -> float:
    """Default pairwise compatibility between two generic types."""
    if a == b:
        return 1.0
    if GenericType.UNKNOWN in (a, b):
        return 0.5
    if a in _NUMERIC_TYPES and b in _NUMERIC_TYPES:
        return 0.8
    if a in _TEMPORAL_TYPES and b in _TEMPORAL_TYPES:
        return 0.8
    if a in _TEXT_LIKE and b in _TEXT_LIKE:
        return 0.7
    # Strings can encode nearly everything, so string vs X keeps a moderate score.
    if GenericType.STRING in (a, b):
        other = b if a == GenericType.STRING else a
        if other in _NUMERIC_TYPES or other in _TEMPORAL_TYPES:
            return 0.4
        if other is GenericType.BOOLEAN:
            return 0.3
        if other is GenericType.COMPLEX:
            return 0.1
        return 0.3
    if GenericType.COMPLEX in (a, b):
        return 0.1
    if a is GenericType.IDENTIFIER and b in _NUMERIC_TYPES:
        return 0.6
    if b is GenericType.IDENTIFIER and a in _NUMERIC_TYPES:
        return 0.6
    return 0.2


class TypeCompatibilityTable:
    """Symmetric table assigning a similarity to every pair of generic types.

    The table starts from :func:`_default_compatibility` and individual pairs can
    be overridden with :meth:`set`.  Lookups accept either :class:`GenericType`
    values or raw source-type strings (which are mapped first).
    """

    def __init__(self, overrides: Optional[Mapping[Tuple[GenericType, GenericType], float]] = None):
        self._overrides: dict[Tuple[GenericType, GenericType], float] = {}
        if overrides:
            for (a, b), value in overrides.items():
                self.set(a, b, value)

    @staticmethod
    def _key(a: GenericType, b: GenericType) -> Tuple[GenericType, GenericType]:
        return (a, b) if a.value <= b.value else (b, a)

    def set(self, a: GenericType, b: GenericType, similarity: float) -> None:
        """Override the compatibility of the pair ``(a, b)`` (symmetric)."""
        if not 0.0 <= similarity <= 1.0:
            raise ValueError(f"similarity must be within [0, 1], got {similarity!r}")
        self._overrides[self._key(a, b)] = float(similarity)

    def copy(self) -> "TypeCompatibilityTable":
        """An independent copy (overrides applied to it do not affect this table)."""
        table = TypeCompatibilityTable()
        table._overrides = dict(self._overrides)
        return table

    def compatibility(self, a: GenericType | str | None, b: GenericType | str | None) -> float:
        """Return the compatibility of two types (generic values or source strings)."""
        generic_a = a if isinstance(a, GenericType) else map_source_type(a)
        generic_b = b if isinstance(b, GenericType) else map_source_type(b)
        override = self._overrides.get(self._key(generic_a, generic_b))
        if override is not None:
            return override
        return _default_compatibility(generic_a, generic_b)

    def items(self) -> Iterable[Tuple[GenericType, GenericType, float]]:
        """Yield ``(type_a, type_b, similarity)`` for every pair of generic types."""
        types = list(GenericType)
        for i, a in enumerate(types):
            for b in types[i:]:
                yield a, b, self.compatibility(a, b)


#: Module-level default table used when a matcher is not given an explicit one.
DEFAULT_TYPE_COMPATIBILITY = TypeCompatibilityTable()
