"""Schema paths - the match granularity of COMA.

Schema elements are represented by their *paths*: sequences of nodes following
the containment links from the root down to the corresponding node (Section 3).
Shared fragments (such as the ``Address`` type in the paper's PO2 schema) yield
multiple paths referring to the same underlying node, and match candidates are
determined independently for each path.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.model.datatypes import GenericType
from repro.model.element import SchemaElement


class SchemaPath:
    """An immutable root-to-node path through the containment hierarchy.

    A path is hashable and compares by the sequence of element identities it
    traverses, so two distinct paths ending at the same shared element are not
    equal.  The human-readable dotted form (e.g.
    ``PO2.DeliverTo.Address.City``) is available via :meth:`dotted` / ``str``.
    """

    __slots__ = ("_elements", "_key", "_names")

    def __init__(self, elements: Sequence[SchemaElement]):
        if not elements:
            raise ValueError("a schema path must contain at least one element")
        self._elements: Tuple[SchemaElement, ...] = tuple(elements)
        self._key: Tuple[int, ...] = tuple(e.element_id for e in self._elements)
        self._names: Optional[Tuple[str, ...]] = None

    # -- basic accessors -------------------------------------------------

    @property
    def elements(self) -> Tuple[SchemaElement, ...]:
        """The elements along the path, root first."""
        return self._elements

    @property
    def leaf(self) -> SchemaElement:
        """The final element of the path (the element this path denotes)."""
        return self._elements[-1]

    @property
    def root(self) -> SchemaElement:
        """The first element of the path (the schema root)."""
        return self._elements[0]

    @property
    def parent(self) -> Optional["SchemaPath"]:
        """The path without its final element, or ``None`` for the root path."""
        if len(self._elements) == 1:
            return None
        return SchemaPath(self._elements[:-1])

    @property
    def depth(self) -> int:
        """Number of containment steps from the root (root path has depth 0)."""
        return len(self._elements) - 1

    @property
    def name(self) -> str:
        """The name of the element the path denotes."""
        return self.leaf.name

    @property
    def names(self) -> Tuple[str, ...]:
        """All element names along the path, root first (computed once).

        Ranking, tokenization and tie-breaking all consult the name tuple on
        hot paths, so it is cached on first access; element names are fixed
        after schema construction.
        """
        if self._names is None:
            self._names = tuple(element.name for element in self._elements)
        return self._names

    @property
    def source_type(self) -> Optional[str]:
        """The source-level data type of the denoted element."""
        return self.leaf.source_type

    @property
    def generic_type(self) -> GenericType:
        """The generic data type of the denoted element."""
        return self.leaf.generic_type

    # -- derived forms ---------------------------------------------------

    def dotted(self, skip_root: bool = False) -> str:
        """Return the dotted string form, optionally omitting the schema root."""
        names = self.names[1:] if skip_root and len(self._elements) > 1 else self.names
        return ".".join(names)

    def long_name(self, separator: str = "") -> str:
        """Concatenate all names along the path into one long string.

        This is the representation used by the ``NamePath`` matcher
        (Section 4.2): the long name provides additional tokens for name
        matching and distinguishes different contexts of a shared element.
        """
        return separator.join(self.names)

    def child(self, element: SchemaElement) -> "SchemaPath":
        """Return a new path extending this one by ``element``."""
        return SchemaPath(self._elements + (element,))

    def startswith(self, other: "SchemaPath") -> bool:
        """True if ``other`` is a prefix of this path (by element identity)."""
        return self._key[: len(other._key)] == other._key

    # -- dunder protocol -------------------------------------------------

    def __iter__(self) -> Iterator[SchemaElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __getitem__(self, index: int) -> SchemaElement:
        return self._elements[index]

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaPath):
            return NotImplemented
        return self._key == other._key

    def __lt__(self, other: "SchemaPath") -> bool:
        return self.names < other.names

    def __str__(self) -> str:
        return self.dotted()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaPath({self.dotted()!r})"
