"""Schema elements (graph nodes) and typed links between them.

A COMA schema is a rooted directed acyclic graph (Section 3 of the paper).
Graph nodes are :class:`SchemaElement` instances and directed edges are
:class:`Link` instances of a particular :class:`LinkKind` (containment or
referential).  Only containment links define the path structure used as the
match granularity; referential links carry additional structural information
(e.g. foreign keys) that matchers may exploit.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Optional

from repro.model.datatypes import GenericType, map_source_type


class LinkKind(enum.Enum):
    """Kinds of directed links between schema elements."""

    CONTAINMENT = "containment"
    REFERENCE = "reference"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ElementKind(enum.Enum):
    """Broad classification of schema elements.

    The classification mirrors the element sorts mentioned in the paper:
    relational tables and columns, XML (complex) elements and attributes.
    ``INNER`` / ``LEAF`` status is *not* stored here because it is a property
    of the graph (an element is inner iff it has containment children) and is
    computed by :class:`~repro.model.schema.Schema`.
    """

    SCHEMA = "schema"
    TABLE = "table"
    COLUMN = "column"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TYPE = "type"
    GENERIC = "generic"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_element_id_counter = itertools.count(1)


def _next_element_id() -> int:
    return next(_element_id_counter)


@dataclasses.dataclass(eq=False)
class SchemaElement:
    """A node of the schema graph.

    Parameters
    ----------
    name:
        The element name as it appears in the source schema (e.g. ``shipToCity``).
    kind:
        The broad element classification (table, column, XML element, ...).
    source_type:
        The raw source-level data type (``VARCHAR(200)``, ``xsd:string``...),
        if any.  ``None`` for inner / structural elements.
    documentation:
        Optional free-text annotation from the source schema.

    Identity semantics: elements compare by object identity, not by name,
    because the same name may legitimately occur several times in one schema
    (e.g. ``Street`` under both ``DeliverTo`` and ``BillTo``).
    """

    name: str
    kind: ElementKind = ElementKind.GENERIC
    source_type: Optional[str] = None
    documentation: Optional[str] = None
    element_id: int = dataclasses.field(default_factory=_next_element_id)

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("schema element name must be a non-empty string")
        self.name = self.name.strip()

    @property
    def generic_type(self) -> GenericType:
        """The element's data type mapped onto the generic type system."""
        if self.source_type is None:
            return GenericType.COMPLEX if self.kind in (
                ElementKind.TABLE, ElementKind.ELEMENT, ElementKind.TYPE, ElementKind.SCHEMA
            ) else GenericType.UNKNOWN
        return map_source_type(self.source_type)

    def __hash__(self) -> int:
        return hash(self.element_id)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        type_part = f", type={self.source_type!r}" if self.source_type else ""
        return f"SchemaElement({self.name!r}, kind={self.kind.value}{type_part})"


@dataclasses.dataclass(frozen=True)
class Link:
    """A directed, typed edge of the schema graph."""

    source: SchemaElement
    target: SchemaElement
    kind: LinkKind = LinkKind.CONTAINMENT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.source.name!r} -> {self.target.name!r}, {self.kind.value})"
