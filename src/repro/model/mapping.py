"""Match results (mappings) between two schemas.

The result of the match operation is a set of *mapping elements*: pairs of
schema paths together with a similarity value in ``[0, 1]`` indicating the
plausibility of their correspondence (Section 3 of the paper).  This module
provides:

* :class:`Correspondence` -- one mapping element,
* :class:`MatchResult` -- the full mapping between two schemas, with set-style
  operations, filtering, inversion and the relational view used by
  ``MatchCompose`` (Figure 3c).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.model.path import SchemaPath
from repro.model.schema import Schema


@dataclasses.dataclass(frozen=True)
class Correspondence:
    """A single mapping element: two paths and the plausibility of their match."""

    source: SchemaPath
    target: SchemaPath
    similarity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity <= 1.0:
            raise ValueError(
                f"similarity must be within [0, 1], got {self.similarity!r} "
                f"for {self.source} <-> {self.target}"
            )

    @property
    def pair(self) -> Tuple[SchemaPath, SchemaPath]:
        """The ``(source, target)`` path pair, without the similarity."""
        return (self.source, self.target)

    def inverted(self) -> "Correspondence":
        """The same correspondence read in the opposite direction."""
        return Correspondence(self.target, self.source, self.similarity)

    def __str__(self) -> str:
        return f"{self.source} <-> {self.target} ({self.similarity:.2f})"


class MatchResult:
    """A mapping between a source and a target schema.

    The mapping stores at most one similarity per ``(source path, target path)``
    pair; adding the same pair again keeps the maximum similarity (a pair that
    several strategies propose is at least as plausible as either proposal).
    """

    def __init__(
        self,
        source_schema: Schema,
        target_schema: Schema,
        correspondences: Optional[Iterable[Correspondence]] = None,
        name: Optional[str] = None,
    ):
        self._source_schema = source_schema
        self._target_schema = target_schema
        self._name = name or f"{source_schema.name}<->{target_schema.name}"
        self._by_pair: Dict[Tuple[SchemaPath, SchemaPath], Correspondence] = {}
        for correspondence in correspondences or ():
            self.add(correspondence)

    # -- identity -----------------------------------------------------------

    @property
    def source_schema(self) -> Schema:
        """The mapping's source (S1) schema."""
        return self._source_schema

    @property
    def target_schema(self) -> Schema:
        """The mapping's target (S2) schema."""
        return self._target_schema

    @property
    def name(self) -> str:
        """Human-readable mapping name (defaults to ``S1<->S2``)."""
        return self._name

    @property
    def schema_pair(self) -> Tuple[str, str]:
        """The ``(source name, target name)`` pair identifying the match task."""
        return (self._source_schema.name, self._target_schema.name)

    # -- mutation -------------------------------------------------------------

    def add(self, correspondence: Correspondence) -> None:
        """Add a correspondence, keeping the higher similarity on duplicates."""
        key = correspondence.pair
        existing = self._by_pair.get(key)
        if existing is None or correspondence.similarity > existing.similarity:
            self._by_pair[key] = correspondence

    def add_pair(self, source: SchemaPath, target: SchemaPath, similarity: float = 1.0) -> None:
        """Convenience wrapper building and adding a :class:`Correspondence`."""
        self.add(Correspondence(source, target, similarity))

    def remove_pair(self, source: SchemaPath, target: SchemaPath) -> bool:
        """Remove the correspondence for ``(source, target)``; returns True if present."""
        return self._by_pair.pop((source, target), None) is not None

    # -- access ----------------------------------------------------------------

    @property
    def correspondences(self) -> Tuple[Correspondence, ...]:
        """All correspondences, ordered by (source path, target path) names."""
        return tuple(
            sorted(self._by_pair.values(), key=lambda c: (c.source.names, c.target.names))
        )

    def pairs(self) -> Tuple[Tuple[SchemaPath, SchemaPath], ...]:
        """The set of matched ``(source, target)`` path pairs, sorted."""
        return tuple(c.pair for c in self.correspondences)

    def similarity_of(self, source: SchemaPath, target: SchemaPath) -> Optional[float]:
        """The stored similarity of a pair, or ``None`` if the pair is not matched."""
        correspondence = self._by_pair.get((source, target))
        return correspondence.similarity if correspondence else None

    def candidates_for_source(self, source: SchemaPath) -> Tuple[Correspondence, ...]:
        """All correspondences originating at ``source``, best first."""
        found = [c for c in self._by_pair.values() if c.source == source]
        return tuple(sorted(found, key=lambda c: -c.similarity))

    def candidates_for_target(self, target: SchemaPath) -> Tuple[Correspondence, ...]:
        """All correspondences ending at ``target``, best first."""
        found = [c for c in self._by_pair.values() if c.target == target]
        return tuple(sorted(found, key=lambda c: -c.similarity))

    def matched_sources(self) -> Tuple[SchemaPath, ...]:
        """Distinct source paths that received at least one match candidate."""
        return tuple(sorted({c.source for c in self._by_pair.values()}, key=lambda p: p.names))

    def matched_targets(self) -> Tuple[SchemaPath, ...]:
        """Distinct target paths that received at least one match candidate."""
        return tuple(sorted({c.target for c in self._by_pair.values()}, key=lambda p: p.names))

    # -- transformations ----------------------------------------------------------

    def inverted(self) -> "MatchResult":
        """The mapping read in the opposite direction (S2 -> S1)."""
        return MatchResult(
            self._target_schema,
            self._source_schema,
            (c.inverted() for c in self._by_pair.values()),
            name=f"{self._target_schema.name}<->{self._source_schema.name}",
        )

    def filter(self, predicate: Callable[[Correspondence], bool]) -> "MatchResult":
        """A new mapping containing only correspondences satisfying ``predicate``."""
        return MatchResult(
            self._source_schema,
            self._target_schema,
            (c for c in self._by_pair.values() if predicate(c)),
            name=self._name,
        )

    def above_threshold(self, threshold: float) -> "MatchResult":
        """A new mapping keeping only correspondences with similarity >= threshold."""
        return self.filter(lambda c: c.similarity >= threshold)

    def with_uniform_similarity(self, similarity: float = 1.0) -> "MatchResult":
        """A copy with every similarity replaced by ``similarity``.

        Mirrors the paper's treatment of manually derived mappings, whose
        element similarities are uniformly set to 1.0 (Section 7.1).
        """
        return MatchResult(
            self._source_schema,
            self._target_schema,
            (Correspondence(c.source, c.target, similarity) for c in self._by_pair.values()),
            name=self._name,
        )

    def merged_with(self, other: "MatchResult") -> "MatchResult":
        """Union of two mappings over the same schema pair (max similarity on overlap)."""
        if other.schema_pair != self.schema_pair:
            raise SchemaError(
                f"cannot merge mapping over {other.schema_pair} into mapping over {self.schema_pair}"
            )
        merged = MatchResult(self._source_schema, self._target_schema, self._by_pair.values(),
                             name=self._name)
        for correspondence in other.correspondences:
            merged.add(correspondence)
        return merged

    # -- relational view (Figure 3c) -------------------------------------------------

    def as_tuples(self) -> List[Tuple[str, str, float]]:
        """The mapping as ``(source dotted path, target dotted path, sim)`` tuples."""
        return [
            (c.source.dotted(), c.target.dotted(), c.similarity)
            for c in self.correspondences
        ]

    @classmethod
    def from_tuples(
        cls,
        source_schema: Schema,
        target_schema: Schema,
        rows: Sequence[Tuple[str, str, float]] | Sequence[Tuple[str, str]],
        name: Optional[str] = None,
    ) -> "MatchResult":
        """Build a mapping from dotted-path tuples (the inverse of :meth:`as_tuples`)."""
        result = cls(source_schema, target_schema, name=name)
        for row in rows:
            source_dotted, target_dotted = row[0], row[1]
            similarity = float(row[2]) if len(row) > 2 else 1.0
            result.add_pair(
                source_schema.find_path(source_dotted),
                target_schema.find_path(target_dotted),
                similarity,
            )
        return result

    # -- comparison with a reference mapping -------------------------------------------

    def pair_set(self) -> frozenset:
        """The set of matched pairs keyed by dotted path strings (for evaluation)."""
        return frozenset((c.source.dotted(), c.target.dotted()) for c in self._by_pair.values())

    # -- dunder protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self.correspondences)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Correspondence):
            return item.pair in self._by_pair
        if isinstance(item, tuple) and len(item) == 2:
            first, second = item
            if isinstance(first, SchemaPath) and isinstance(second, SchemaPath):
                return (first, second) in self._by_pair
            if isinstance(first, str) and isinstance(second, str):
                return (first, second) in {
                    (c.source.dotted(), c.target.dotted()) for c in self._by_pair.values()
                }
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchResult({self._name!r}, correspondences={len(self)})"
