"""Merkle-style content digests over a schema's path tree.

Incremental re-matching (``MatchSession.rematch``) needs to answer one
question per path of an evolved schema: *could any matcher produce a
different similarity for this row than it did for the previous version?*
Every matcher of the library derives a cell value from (a) the content of
the elements along the path's root-to-leaf chain (names, kinds, source
types, documentation -- the ``NamePath`` token modes consume the whole
chain) and (b) the content of the path's subtree (the structural matchers
compare children and leaves under the path).  Nothing else: no matcher
consults global statistics, sibling sets or corpus frequencies.

Both dependencies are captured by two digests per node of the path tree,
computed in one linear pass over the pre/post interval encoding of
:func:`repro.search.intervals.interval_encode`:

* the **chain digest** folds the parent's chain digest with the node's own
  content digest (a rename anywhere above a path changes its chain digest);
  the schema-root occurrence itself is excluded, because no spliceable
  matcher reads it and differently-named versions should still splice;
* the **subtree digest** is the Merkle hash of the node's content digest and
  its children's subtree digests in document order (an edit anywhere below a
  path changes its subtree digest) -- the contiguous preorder windows of the
  interval encoding make the children walk index arithmetic instead of a
  graph traversal.

A path's **row signature** is the hash of its chain and subtree digests.
Two paths of two schema versions with equal row signatures have bitwise
identical similarity rows against any fixed opposite schema, which is the
invariant :func:`schema_delta` and the cube splicer build on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.model.element import SchemaElement
from repro.model.schema import Schema

#: Bump when the digest inputs change shape: persisted signature vectors of
#: older versions must never compare equal to newer ones.
DIGEST_VERSION = 1


def _hash(document: object) -> str:
    """The sha256 hex digest of a canonically serialised JSON document."""
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def element_content_digest(element: SchemaElement) -> str:
    """The digest of everything matchers can read off one element.

    Mirrors the per-element record of the repository serialisation (name,
    kind, source type, documentation) minus the element id, which is an
    in-memory identity and not content.

    Examples
    --------
    >>> from repro.model.element import SchemaElement, ElementKind
    >>> a = SchemaElement("City", kind=ElementKind.COLUMN, source_type="VARCHAR(40)")
    >>> b = SchemaElement("City", kind=ElementKind.COLUMN, source_type="VARCHAR(40)")
    >>> element_content_digest(a) == element_content_digest(b)
    True
    >>> c = SchemaElement("City", kind=ElementKind.COLUMN, source_type="INT")
    >>> element_content_digest(a) == element_content_digest(c)
    False
    """
    return _hash(
        [
            DIGEST_VERSION,
            element.name,
            element.kind.value,
            element.source_type,
            element.documentation,
        ]
    )


@dataclasses.dataclass(frozen=True)
class SchemaDigests:
    """All content digests of one schema's path tree.

    ``chain`` and ``subtree`` are indexed by preorder rank and aligned with
    :func:`repro.search.intervals.interval_encode` (rank 0 is the schema
    root); ``signatures`` drops the root and is aligned with
    ``schema.paths()`` -- entry ``i`` is the row signature of path ``i``.
    """

    chain: Tuple[str, ...]
    subtree: Tuple[str, ...]
    signatures: Tuple[str, ...]
    references: str

    @property
    def root_subtree(self) -> str:
        """The Merkle digest of the whole path tree."""
        return self.subtree[0]


def references_digest(schema: Schema) -> str:
    """A content digest of the schema's referential links.

    Referential links ride outside the containment tree the chain/subtree
    digests cover, so the delta computer compares them wholesale: versions
    whose reference sets differ are never spliced.
    """
    records = sorted(
        _hash([element_content_digest(link.source), element_content_digest(link.target)])
        for link in schema.references()
    )
    return _hash([DIGEST_VERSION, records])


def schema_digests(schema: Schema) -> SchemaDigests:
    """Chain, subtree and row-signature digests of one schema.

    One linear pass over the interval encoding: subtree digests are folded
    bottom-up in reverse preorder (every node's children occupy a contiguous
    window, walked with index jumps by subtree size), chain digests top-down
    in preorder with a parent stack.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1
    >>> digests = schema_digests(load_po1())
    >>> len(digests.signatures) == len(load_po1().paths())
    True
    >>> digests2 = schema_digests(load_po1())
    >>> digests.signatures == digests2.signatures  # content-determined
    True
    """
    from repro.search.intervals import interval_encode

    nodes = interval_encode(schema)
    paths = schema.paths(include_root=True)
    content = [element_content_digest(path.leaf) for path in paths]

    subtree: List[str] = [""] * len(nodes)
    for rank in range(len(nodes) - 1, -1, -1):
        children: List[str] = []
        child = rank + 1
        end = rank + nodes[rank].size
        while child < end:
            children.append(subtree[child])
            child += nodes[child].size
        subtree[rank] = _hash([content[rank], children])

    # The root's own content is excluded from the chain fold: no cacheable
    # matcher consumes the root occurrence (the registered ``NamePath`` drops
    # it, and the with-root variant requires a matcher *instance*, which the
    # session never splices), so two versions differing only in the schema
    # name keep identical row signatures and splice fully -- the common case
    # of re-uploading an evolved schema under a new name.
    chain: List[str] = [""] * len(nodes)
    chain[0] = _hash([DIGEST_VERSION, None])
    stack: List[int] = [0]  # preorder ranks of the currently open chain
    for rank, node in enumerate(nodes):
        if rank == 0:
            continue
        while stack and nodes[stack[-1]].depth >= node.depth:
            stack.pop()
        parent = chain[stack[-1]] if stack else chain[0]
        chain[rank] = _hash([parent, content[rank]])
        stack.append(rank)

    signatures = tuple(
        _hash([chain[rank], subtree[rank]]) for rank in range(1, len(nodes))
    )
    return SchemaDigests(
        chain=tuple(chain),
        subtree=tuple(subtree),
        signatures=signatures,
        references=references_digest(schema),
    )


def path_signatures(schema: Schema) -> Tuple[str, ...]:
    """The row signatures of ``schema.paths()``, in path order."""
    return schema_digests(schema).signatures


@dataclasses.dataclass(frozen=True)
class SchemaDelta:
    """The difference between two versions of one schema, at path granularity.

    ``matched`` pairs old and new path indices whose row signatures are
    equal -- their similarity rows can be copied verbatim from a previous
    result.  ``changed`` lists the new path indices that need recomputation
    (paths that are new, edited, or sit on an edited chain/subtree).
    ``added`` / ``removed`` classify the non-matched paths by dotted name
    for reporting.  ``full`` marks deltas where splicing is unsafe (e.g.
    differing reference links) and everything must be recomputed.
    """

    matched: Tuple[Tuple[int, int], ...]
    changed: Tuple[int, ...]
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    full: bool = False

    @property
    def reused(self) -> int:
        """Number of rows a splice copies from the previous result."""
        return len(self.matched)

    @property
    def recomputed(self) -> int:
        """Number of rows a splice must recompute."""
        return len(self.changed)


def schema_delta(
    old: Schema,
    new: Schema,
    old_digests: Optional[SchemaDigests] = None,
    new_digests: Optional[SchemaDigests] = None,
) -> SchemaDelta:
    """Diff two schema versions into matched / changed / added / removed paths.

    Paths are aligned by row signature, not identity: re-parsing or
    regenerating a schema yields fresh elements, but content-equal paths
    still pair up.  Duplicate signatures (content-identical paths, e.g. a
    shared ``Address`` fragment) are paired greedily in document order --
    any pairing of identical rows splices identically.

    ``old_digests`` / ``new_digests`` short-circuit the digest computation
    when the caller already holds the :class:`SchemaDigests` (the session's
    rematch path computes them once and reuses them for persistence).

    Examples
    --------
    >>> from repro.datasets.generators import generate_schema
    >>> base, _ = generate_schema("V1", sections=2, fields_per_section=3, seed=1)
    >>> same = schema_delta(base, base)
    >>> same.recomputed, same.reused == len(base.paths())
    (0, True)
    """
    if old_digests is None:
        old_digests = schema_digests(old)
    if new_digests is None:
        new_digests = schema_digests(new)
    old_rows = old_digests.signatures
    new_rows = new_digests.signatures

    full = old_digests.references != new_digests.references
    pool: Dict[str, Deque[int]] = {}
    if not full:
        for index, signature in enumerate(old_rows):
            pool.setdefault(signature, deque()).append(index)

    matched: List[Tuple[int, int]] = []
    changed: List[int] = []
    for index, signature in enumerate(new_rows):
        bucket = pool.get(signature)
        if bucket:
            matched.append((bucket.popleft(), index))
        else:
            changed.append(index)

    old_dotted = {path.dotted(skip_root=True) for path in old.paths()}
    new_dotted = {path.dotted(skip_root=True) for path in new.paths()}
    added = tuple(sorted(new_dotted - old_dotted))
    removed = tuple(sorted(old_dotted - new_dotted))
    return SchemaDelta(
        matched=tuple(matched),
        changed=tuple(changed),
        added=added,
        removed=removed,
        full=full,
    )
