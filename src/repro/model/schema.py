"""The schema graph: a rooted directed acyclic graph of schema elements.

This is COMA's internal schema representation (Section 3, Figure 1b).  All
matchers operate on this format; external formats (relational DDL, XSD, dicts)
are converted into it by the importers.

The central operations are:

* adding elements and containment / referential links (cycle-checked),
* enumerating all root-to-node :class:`~repro.model.path.SchemaPath` objects,
  which is the match granularity,
* classifying paths as inner or leaf,
* computing the statistics reported in Table 5 of the paper
  (max depth, node / path counts broken down by inner and leaf).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import CycleError, SchemaError, UnknownElementError
from repro.model.element import ElementKind, Link, LinkKind, SchemaElement
from repro.model.path import SchemaPath


@dataclasses.dataclass(frozen=True)
class SchemaStatistics:
    """Structural statistics of a schema, as reported in Table 5 of the paper."""

    name: str
    max_depth: int
    node_count: int
    path_count: int
    inner_node_count: int
    inner_path_count: int
    leaf_node_count: int
    leaf_path_count: int

    def as_row(self) -> Dict[str, object]:
        """Return the statistics as a flat dict suitable for tabular reports."""
        return {
            "schema": self.name,
            "max_depth": self.max_depth,
            "nodes": self.node_count,
            "paths": self.path_count,
            "inner_nodes": self.inner_node_count,
            "inner_paths": self.inner_path_count,
            "leaf_nodes": self.leaf_node_count,
            "leaf_paths": self.leaf_path_count,
        }


class Schema:
    """A rooted directed acyclic graph representing one schema.

    Parameters
    ----------
    name:
        The schema name.  It becomes the name of the implicit root element and
        the first component of every path.
    namespace:
        Optional namespace / source URI recorded for provenance.

    The root element is created automatically.  Elements are attached to the
    graph with :meth:`add_element` (optionally directly under a parent) and
    additional containment or reference links are added with :meth:`add_link`.
    """

    def __init__(self, name: str, namespace: Optional[str] = None):
        if not name or not name.strip():
            raise SchemaError("schema name must be a non-empty string")
        self._name = name.strip()
        self._namespace = namespace
        self._root = SchemaElement(self._name, kind=ElementKind.SCHEMA)
        self._elements: List[SchemaElement] = [self._root]
        self._element_ids = {self._root.element_id}
        self._children: Dict[SchemaElement, List[SchemaElement]] = {self._root: []}
        self._parents: Dict[SchemaElement, List[SchemaElement]] = {self._root: []}
        self._references: List[Link] = []
        self._paths_cache: Optional[Tuple[SchemaPath, ...]] = None

    # -- identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The schema name (also the root element name)."""
        return self._name

    @property
    def namespace(self) -> Optional[str]:
        """Optional namespace or source URI."""
        return self._namespace

    @property
    def root(self) -> SchemaElement:
        """The implicit root element of the schema graph."""
        return self._root

    # -- construction ------------------------------------------------------

    def add_element(
        self,
        name: str,
        parent: Optional[SchemaElement] = None,
        kind: ElementKind = ElementKind.GENERIC,
        source_type: Optional[str] = None,
        documentation: Optional[str] = None,
    ) -> SchemaElement:
        """Create a new element and attach it beneath ``parent`` (default: root)."""
        element = SchemaElement(
            name, kind=kind, source_type=source_type, documentation=documentation
        )
        self._register(element)
        self.add_link(parent if parent is not None else self._root, element)
        return element

    def add_detached_element(
        self,
        name: str,
        kind: ElementKind = ElementKind.GENERIC,
        source_type: Optional[str] = None,
        documentation: Optional[str] = None,
    ) -> SchemaElement:
        """Create an element that is registered but not yet linked to a parent.

        Useful for shared fragments (an element may later be linked under
        several parents) and for importers that create nodes before wiring the
        hierarchy.  Detached elements do not contribute paths until linked.
        """
        element = SchemaElement(
            name, kind=kind, source_type=source_type, documentation=documentation
        )
        self._register(element)
        return element

    def _register(self, element: SchemaElement) -> None:
        if element.element_id in self._element_ids:
            raise SchemaError(f"element {element!r} is already part of schema {self._name!r}")
        self._elements.append(element)
        self._element_ids.add(element.element_id)
        self._children.setdefault(element, [])
        self._parents.setdefault(element, [])
        self._invalidate()

    def add_link(
        self,
        source: SchemaElement,
        target: SchemaElement,
        kind: LinkKind = LinkKind.CONTAINMENT,
    ) -> Link:
        """Add a directed link from ``source`` to ``target``.

        Containment links participate in path enumeration and are checked for
        cycles; reference links are recorded separately and may freely connect
        any two registered elements.
        """
        self._require_registered(source)
        self._require_registered(target)
        link = Link(source, target, kind)
        if kind is LinkKind.CONTAINMENT:
            if target is self._root:
                raise CycleError("the schema root cannot be the target of a containment link")
            if self._reachable(target, source):
                raise CycleError(
                    f"adding containment link {source.name!r} -> {target.name!r} "
                    "would create a cycle"
                )
            if target in self._children[source]:
                raise SchemaError(
                    f"containment link {source.name!r} -> {target.name!r} already exists"
                )
            self._children[source].append(target)
            self._parents[target].append(source)
            self._invalidate()
        else:
            self._references.append(link)
        return link

    def _require_registered(self, element: SchemaElement) -> None:
        if element.element_id not in self._element_ids:
            raise UnknownElementError(
                f"element {element.name!r} does not belong to schema {self._name!r}"
            )

    def _reachable(self, start: SchemaElement, goal: SchemaElement) -> bool:
        """True if ``goal`` is reachable from ``start`` via containment links."""
        if start is goal:
            return True
        stack = [start]
        seen = {start.element_id}
        while stack:
            current = stack.pop()
            for child in self._children.get(current, ()):
                if child is goal:
                    return True
                if child.element_id not in seen:
                    seen.add(child.element_id)
                    stack.append(child)
        return False

    def _invalidate(self) -> None:
        self._paths_cache = None

    # -- graph accessors ---------------------------------------------------

    @property
    def elements(self) -> Tuple[SchemaElement, ...]:
        """All registered elements including the root."""
        return tuple(self._elements)

    def children(self, element: SchemaElement) -> Tuple[SchemaElement, ...]:
        """Containment children of ``element`` in insertion order."""
        self._require_registered(element)
        return tuple(self._children.get(element, ()))

    def parents(self, element: SchemaElement) -> Tuple[SchemaElement, ...]:
        """Containment parents of ``element`` (more than one for shared fragments)."""
        self._require_registered(element)
        return tuple(self._parents.get(element, ()))

    def references(self) -> Tuple[Link, ...]:
        """All referential links of the schema."""
        return tuple(self._references)

    def references_from(self, element: SchemaElement) -> Tuple[Link, ...]:
        """Referential links whose source is ``element``."""
        return tuple(link for link in self._references if link.source is element)

    def is_leaf(self, element: SchemaElement) -> bool:
        """True if ``element`` has no containment children."""
        self._require_registered(element)
        return not self._children.get(element)

    def is_inner(self, element: SchemaElement) -> bool:
        """True if ``element`` has at least one containment child."""
        return not self.is_leaf(element)

    def is_shared(self, element: SchemaElement) -> bool:
        """True if ``element`` has more than one containment parent."""
        self._require_registered(element)
        return len(self._parents.get(element, ())) > 1

    def find_elements(self, name: str) -> Tuple[SchemaElement, ...]:
        """All elements (excluding the root) whose name equals ``name`` exactly."""
        return tuple(e for e in self._elements[1:] if e.name == name)

    def find_element(self, name: str) -> SchemaElement:
        """The unique element named ``name``; raises if absent or ambiguous."""
        matches = self.find_elements(name)
        if not matches:
            raise UnknownElementError(f"no element named {name!r} in schema {self._name!r}")
        if len(matches) > 1:
            raise SchemaError(
                f"element name {name!r} is ambiguous in schema {self._name!r} "
                f"({len(matches)} occurrences); use find_elements or a path lookup"
            )
        return matches[0]

    # -- paths ---------------------------------------------------------------

    def paths(self, include_root: bool = False) -> Tuple[SchemaPath, ...]:
        """All root-to-node paths following containment links, in DFS order.

        The root path itself is omitted by default because the root is an
        artificial element that does not correspond to any source construct.
        """
        if self._paths_cache is None:
            collected: List[SchemaPath] = []
            self._collect_paths(SchemaPath([self._root]), collected)
            self._paths_cache = tuple(collected)
        if include_root:
            return (SchemaPath([self._root]),) + self._paths_cache
        return self._paths_cache

    def _collect_paths(self, prefix: SchemaPath, out: List[SchemaPath]) -> None:
        for child in self._children.get(prefix.leaf, ()):
            child_path = prefix.child(child)
            out.append(child_path)
            self._collect_paths(child_path, out)

    def leaf_paths(self) -> Tuple[SchemaPath, ...]:
        """Paths whose final element is a leaf."""
        return tuple(p for p in self.paths() if self.is_leaf(p.leaf))

    def inner_paths(self) -> Tuple[SchemaPath, ...]:
        """Paths whose final element is an inner element."""
        return tuple(p for p in self.paths() if self.is_inner(p.leaf))

    def descendant_paths(self, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        """All paths strictly beneath ``path`` (sharing it as a prefix)."""
        return tuple(p for p in self.paths() if p != path and p.startswith(path))

    def child_paths(self, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        """Paths extending ``path`` by exactly one containment step."""
        return tuple(path.child(child) for child in self._children.get(path.leaf, ()))

    def leaf_paths_under(self, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        """Leaf paths that have ``path`` as a prefix (used by the Leaves matcher)."""
        return tuple(
            p for p in self.descendant_paths(path) if self.is_leaf(p.leaf)
        )

    def find_path(self, dotted: str) -> SchemaPath:
        """Resolve a dotted path string (with or without the schema root) to a path."""
        target_with_root = dotted.strip()
        for path in self.paths():
            if path.dotted() == target_with_root or path.dotted(skip_root=True) == target_with_root:
                return path
        raise UnknownElementError(f"no path {dotted!r} in schema {self._name!r}")

    def path_of(self, element: SchemaElement) -> SchemaPath:
        """Any one path ending at ``element`` (the first in DFS order)."""
        for path in self.paths():
            if path.leaf is element:
                return path
        raise UnknownElementError(
            f"element {element.name!r} is not reachable from the root of {self._name!r}"
        )

    def paths_of(self, element: SchemaElement) -> Tuple[SchemaPath, ...]:
        """All paths ending at ``element`` (several when the element is shared)."""
        return tuple(path for path in self.paths() if path.leaf is element)

    # -- statistics ----------------------------------------------------------

    def statistics(self) -> SchemaStatistics:
        """Compute the Table 5 statistics for this schema."""
        all_paths = self.paths()
        reachable: Dict[int, SchemaElement] = {}
        for path in all_paths:
            reachable[path.leaf.element_id] = path.leaf
        nodes = list(reachable.values())
        inner_nodes = [n for n in nodes if self.is_inner(n)]
        leaf_nodes = [n for n in nodes if self.is_leaf(n)]
        inner_paths = [p for p in all_paths if self.is_inner(p.leaf)]
        leaf_paths = [p for p in all_paths if self.is_leaf(p.leaf)]
        max_depth = max((p.depth for p in all_paths), default=0)
        return SchemaStatistics(
            name=self._name,
            max_depth=max_depth,
            node_count=len(nodes),
            path_count=len(all_paths),
            inner_node_count=len(inner_nodes),
            inner_path_count=len(inner_paths),
            leaf_node_count=len(leaf_nodes),
            leaf_path_count=len(leaf_paths),
        )

    # -- dunder protocol ------------------------------------------------------

    def __len__(self) -> int:
        """Number of paths (the size measure used throughout the evaluation)."""
        return len(self.paths())

    def __iter__(self) -> Iterator[SchemaPath]:
        return iter(self.paths())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, SchemaPath):
            return item in self.paths()
        if isinstance(item, SchemaElement):
            return item.element_id in self._element_ids
        if isinstance(item, str):
            try:
                self.find_path(item)
                return True
            except UnknownElementError:
                return False
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self._name!r}, paths={len(self.paths())})"


def schemas_by_size(first: Schema, second: Schema) -> Tuple[Schema, Schema]:
    """Return ``(larger, smaller)`` by path count, preserving order on ties."""
    if len(second.paths()) > len(first.paths()):
        return second, first
    return first, second
