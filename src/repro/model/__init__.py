"""Schema graph model: elements, links, paths, schemas, mappings and data types."""

from repro.model.builder import SchemaBuilder
from repro.model.datatypes import (
    DEFAULT_TYPE_COMPATIBILITY,
    GenericType,
    TypeCompatibilityTable,
    map_source_type,
    normalise_source_type,
)
from repro.model.digests import (
    SchemaDelta,
    SchemaDigests,
    path_signatures,
    schema_delta,
    schema_digests,
)
from repro.model.element import ElementKind, Link, LinkKind, SchemaElement
from repro.model.mapping import Correspondence, MatchResult
from repro.model.path import SchemaPath
from repro.model.schema import Schema, SchemaStatistics, schemas_by_size

__all__ = [
    "DEFAULT_TYPE_COMPATIBILITY",
    "Correspondence",
    "ElementKind",
    "GenericType",
    "Link",
    "LinkKind",
    "MatchResult",
    "Schema",
    "SchemaDelta",
    "SchemaDigests",
    "SchemaBuilder",
    "SchemaElement",
    "SchemaPath",
    "SchemaStatistics",
    "TypeCompatibilityTable",
    "map_source_type",
    "normalise_source_type",
    "path_signatures",
    "schema_delta",
    "schema_digests",
    "schemas_by_size",
]
