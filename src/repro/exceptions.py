"""Exception hierarchy for the COMA reproduction.

All library-raised errors derive from :class:`ComaError` so applications can
catch a single base class.  The hierarchy mirrors the major subsystems: schema
model, importers, matchers, combination machinery, repository and evaluation.
"""

from __future__ import annotations

from typing import Optional


class ComaError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ComaError):
    """Raised when a schema graph is malformed or an operation on it is invalid."""


class CycleError(SchemaError):
    """Raised when containment links would form a cycle (schemas must be DAGs)."""


class UnknownElementError(SchemaError):
    """Raised when a node or path referenced by name does not exist in a schema."""


class ImportError_(ComaError):
    """Raised when an external schema definition (DDL, XSD, dict) cannot be parsed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`ImportError`; exported publicly as ``SchemaImportError``.
    """


SchemaImportError = ImportError_


class MatcherError(ComaError):
    """Raised when a matcher is misconfigured or fails during execution."""


class UnknownMatcherError(MatcherError):
    """Raised when a matcher name cannot be resolved from the matcher registry."""


class CombinationError(ComaError):
    """Raised for invalid aggregation / direction / selection configurations."""


class StrategyError(CombinationError):
    """Raised when a match strategy is inconsistent (e.g. unknown sub-strategy name)."""


class SessionError(ComaError):
    """Raised when a :class:`~repro.session.session.MatchSession` is misused."""


class RepositoryError(ComaError):
    """Raised when the persistent repository cannot store or retrieve an object."""


class ServiceError(ComaError):
    """Raised by the match service and its client for failed service requests.

    Carries the HTTP ``status`` of the failed request (0 when the failure
    happened before a response was received, e.g. a connection error) and an
    optional structured ``details`` dict.  Server-side, ``details`` is merged
    into the JSON error payload next to ``"error"`` (e.g. the per-index
    ``"invalid"`` list of a batch validation failure); client-side it carries
    the decoded error payload of the failed response.
    """

    def __init__(self, message: str, status: int = 0, details: "Optional[dict]" = None):
        super().__init__(message)
        self.status = int(status)
        self.details = dict(details) if details else {}


class PoolTimeoutError(ServiceError):
    """Raised when a pooled ``match_many(timeout=...)`` deadline expires.

    The wedged worker has already been SIGKILLed and a respawn scheduled by
    the time this propagates, so callers may safely retry; ``status`` is 504
    so the service layer can forward it as a gateway timeout unchanged.
    """

    def __init__(self, message: str, details: "Optional[dict]" = None):
        super().__init__(message, status=504, details=details)


class EvaluationError(ComaError):
    """Raised by the evaluation harness (missing gold standard, empty task list, ...)."""


class FaultInjected(ComaError):
    """Raised by an armed fault-injection rule (:mod:`repro.faults`).

    Also used for fault-plan validation errors, so a malformed
    ``--fault-plan`` file surfaces as a clean, typed failure.
    """


class SearchError(ComaError):
    """Raised by the corpus-search subsystem (:mod:`repro.search`).

    Covers corpus files that cannot be opened or were built with an
    incompatible tokenizer configuration, unknown schema names, and invalid
    search parameters.
    """
