"""Plain-text report formatting for tables and figure data series.

The benchmark harness regenerates every table and figure of the paper as text:
tables become aligned columns, figures become their underlying data series
(plus a small ASCII bar rendering where that aids reading).  All functions
return strings so benches can both print them and write them to files.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    column_names = list(columns) if columns else list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        if value is None:
            return "-"
        return str(value)

    rendered = [[cell(row.get(name)) for name in column_names] for row in rows]
    widths = [
        max(len(column_names[i]), max(len(r[i]) for r in rendered))
        for i in range(len(column_names))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(column_names))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(column_names))))
    return "\n".join(lines)


def format_bar_chart(
    series: Sequence[Tuple[str, float]],
    title: Optional[str] = None,
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render ``(label, value)`` pairs as a horizontal ASCII bar chart."""
    if not series:
        return (title + "\n" if title else "") + "(no data)"
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(label) for label, _ in series)
    maximum = max((abs(value) for _, value in series), default=1.0) or 1.0
    for label, value in series:
        bar_length = int(round(abs(value) / maximum * width))
        bar = "#" * bar_length
        sign = "-" if value < 0 else ""
        lines.append(
            f"{label.ljust(label_width)}  {sign}{bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def format_grouped_bars(
    groups: Mapping[str, Sequence[Tuple[str, float]]],
    title: Optional[str] = None,
    value_format: str = "{:.2f}",
) -> str:
    """Render several named series over the same x-axis as a compact text matrix."""
    if not groups:
        return (title + "\n" if title else "") + "(no data)"
    lines: List[str] = []
    if title:
        lines.append(title)
    any_series = next(iter(groups.values()))
    x_labels = [label for label, _ in any_series]
    name_width = max(len(name) for name in groups)
    column_width = max(max(len(label) for label in x_labels), 6)
    header = " " * name_width + "  " + "  ".join(label.rjust(column_width) for label in x_labels)
    lines.append(header)
    for name, series in groups.items():
        values = {label: value for label, value in series}
        cells = [
            value_format.format(values.get(label, 0.0)).rjust(column_width)
            for label in x_labels
        ]
        lines.append(name.ljust(name_width) + "  " + "  ".join(cells))
    return "\n".join(lines)


def format_key_values(pairs: Iterable[Tuple[str, object]], title: Optional[str] = None) -> str:
    """Render key/value pairs as aligned lines (used for summary blocks)."""
    items = list(pairs)
    lines: List[str] = []
    if title:
        lines.append(title)
    if not items:
        lines.append("(none)")
        return "\n".join(lines)
    key_width = max(len(key) for key, _ in items)
    for key, value in items:
        if isinstance(value, float):
            rendered = f"{value:.3f}"
        else:
            rendered = str(value)
        lines.append(f"{key.ljust(key_width)} : {rendered}")
    return "\n".join(lines)
