"""Match quality measures: Precision, Recall, Overall, F-measure (Section 7.1).

Given the manually determined real matches ``R`` and the matches ``P`` returned
by automatic match processing, the true positives ``I = P ∩ R``, false
positives ``F = P \\ I`` and false negatives ``M = R \\ I`` define:

* ``Precision = |I| / |P|`` -- reliability of the predictions,
* ``Recall = |I| / |R|`` -- share of real matches found,
* ``Overall = 1 - (|F| + |M|) / |R| = Recall * (2 - 1/Precision)`` -- the
  combined measure of [Melnik et al. 2002] accounting for the post-match
  effort of removing false and adding missed matches.  Overall can be
  negative when Precision < 0.5.
* ``F-measure`` -- the harmonic mean of Precision and Recall (reported as an
  additional reference measure; the paper itself uses Overall).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.exceptions import EvaluationError
from repro.model.mapping import MatchResult

#: A correspondence key used for set comparison: (source dotted path, target dotted path).
PairKey = Tuple[str, str]


@dataclasses.dataclass(frozen=True)
class MatchQuality:
    """The quality measures of one match experiment."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def predicted(self) -> int:
        """``|P|`` -- the number of proposed correspondences."""
        return self.true_positives + self.false_positives

    @property
    def real(self) -> int:
        """``|R|`` -- the number of real correspondences."""
        return self.true_positives + self.false_negatives

    @property
    def precision(self) -> float:
        """``|I| / |P|`` (1.0 when nothing was predicted and nothing was real)."""
        if self.predicted == 0:
            return 1.0 if self.real == 0 else 0.0
        return self.true_positives / self.predicted

    @property
    def recall(self) -> float:
        """``|I| / |R|`` (1.0 when there are no real matches)."""
        if self.real == 0:
            return 1.0
        return self.true_positives / self.real

    @property
    def overall(self) -> float:
        """``1 - (|F| + |M|) / |R|``; negative when false positives dominate."""
        if self.real == 0:
            return 1.0 if self.false_positives == 0 else -float(self.false_positives)
        return 1.0 - (self.false_positives + self.false_negatives) / self.real

    @property
    def f_measure(self) -> float:
        """The harmonic mean of Precision and Recall."""
        precision = self.precision
        recall = self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def as_dict(self) -> dict:
        """All measures as a plain dict (for tabular reports)."""
        return {
            "predicted": self.predicted,
            "real": self.real,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "overall": self.overall,
            "f_measure": self.f_measure,
        }


def _pair_keys(mapping: MatchResult | Iterable[PairKey]) -> FrozenSet[PairKey]:
    if isinstance(mapping, MatchResult):
        return mapping.pair_set()
    return frozenset(mapping)


def evaluate_mapping(
    predicted: MatchResult | Iterable[PairKey],
    reference: MatchResult | Iterable[PairKey],
) -> MatchQuality:
    """Compare a predicted mapping against the reference (gold) mapping."""
    predicted_keys = _pair_keys(predicted)
    reference_keys = _pair_keys(reference)
    true_positives = len(predicted_keys & reference_keys)
    return MatchQuality(
        true_positives=true_positives,
        false_positives=len(predicted_keys) - true_positives,
        false_negatives=len(reference_keys) - true_positives,
    )


@dataclasses.dataclass(frozen=True)
class AverageQuality:
    """Quality measures averaged over several experiments (one per match task)."""

    precision: float
    recall: float
    overall: float
    f_measure: float
    experiment_count: int

    def as_dict(self) -> dict:
        """All averaged measures as a plain dict."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "overall": self.overall,
            "f_measure": self.f_measure,
            "experiments": self.experiment_count,
        }


def average_quality(qualities: Sequence[MatchQuality]) -> AverageQuality:
    """Average the quality measures of several experiments (Section 7.1)."""
    if not qualities:
        raise EvaluationError("cannot average an empty list of match qualities")
    count = len(qualities)
    return AverageQuality(
        precision=sum(q.precision for q in qualities) / count,
        recall=sum(q.recall for q in qualities) / count,
        overall=sum(q.overall for q in qualities) / count,
        f_measure=sum(q.f_measure for q in qualities) / count,
        experiment_count=count,
    )
