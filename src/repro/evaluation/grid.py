"""The evaluation grid of Table 6: matchers and combination strategies tested.

The paper exhaustively evaluated 12,312 series, each a choice of matcher (or
matcher combination), aggregation, direction, selection and combined-similarity
strategy over the 10 match tasks.  This module enumerates the same space:

* matcher usages: the 5 single hybrid matchers, all 10 pair-wise combinations,
  the combination of all 5 (``All``); and on the reuse side the SchemaM /
  SchemaA single matchers, their pair-wise combinations with the 5 hybrid
  matchers and ``All+SchemaM`` / ``All+SchemaA``;
* aggregations: Max, Average, Min (Weighted is excluded, as in the paper);
* directions: LargeSmall, SmallLarge, Both;
* selections: MaxN(1-4), Delta(0.01-0.1), Threshold(0.3-1.0), and the
  combinations Threshold(0.5)+MaxN(n) and Threshold(0.5)+Delta(d);
* combined similarity: Average and Dice (hybrid-internal).

Because the full grid is large, :func:`reduced_grid` provides a representative
sub-grid (same strategy families, fewer parameter points) that the benchmark
harness uses by default; set ``COMA_FULL_GRID=1`` to run the full grid.

Series are evaluated against matcher layers the
:class:`~repro.evaluation.campaign.EvaluationCampaign` pre-computes through the
batch :class:`~repro.engine.engine.MatchEngine`, so enumerating thousands of
series costs matcher execution only once per task.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
from typing import Iterator, List, Sequence, Tuple

from repro.combination.aggregation import AVERAGE, MAX, MIN, AggregationStrategy
from repro.combination.direction import BOTH, LARGE_SMALL, SMALL_LARGE, DirectionStrategy
from repro.combination.selection import (
    CombinedSelection,
    MaxDelta,
    MaxN,
    SelectionStrategy,
    Threshold,
)
from repro.matchers.registry import EVALUATION_HYBRID_MATCHERS

#: The two combined-similarity variants of hybrid matchers tested in the paper.
COMBINED_SIMILARITY_VARIANTS: Tuple[str, ...] = ("Average", "Dice")


@dataclasses.dataclass(frozen=True)
class SeriesSpec:
    """One series: a matcher usage plus a full combination-strategy choice."""

    matchers: Tuple[str, ...]
    aggregation: AggregationStrategy
    direction: DirectionStrategy
    selection: SelectionStrategy
    combined_similarity: str = "Average"

    @property
    def matcher_label(self) -> str:
        """The matcher usage label, e.g. ``"NamePath+Leaves"`` or ``"All"``."""
        if set(self.matchers) == set(EVALUATION_HYBRID_MATCHERS):
            return "All"
        if (
            len(self.matchers) == len(EVALUATION_HYBRID_MATCHERS) + 1
            and set(EVALUATION_HYBRID_MATCHERS) < set(self.matchers)
        ):
            extra = next(m for m in self.matchers if m not in EVALUATION_HYBRID_MATCHERS)
            return f"All+{extra}"
        return "+".join(self.matchers)

    @property
    def uses_reuse(self) -> bool:
        """True if any reuse-oriented matcher participates."""
        return any(m.startswith("Schema") or m == "Fragment" for m in self.matchers)

    @property
    def is_single(self) -> bool:
        """True if the series runs exactly one matcher."""
        return len(self.matchers) == 1

    def label(self) -> str:
        """A full human-readable series label."""
        return (
            f"{self.matcher_label} ({self.aggregation}, {self.direction}, "
            f"{self.selection}, {self.combined_similarity})"
        )


# ---------------------------------------------------------------------------
# Matcher usages
# ---------------------------------------------------------------------------

def no_reuse_matcher_usages() -> List[Tuple[str, ...]]:
    """The 16 no-reuse usages: 5 singles, 10 pairs, and All."""
    singles = [(name,) for name in EVALUATION_HYBRID_MATCHERS]
    pairs = [tuple(pair) for pair in itertools.combinations(EVALUATION_HYBRID_MATCHERS, 2)]
    return singles + pairs + [tuple(EVALUATION_HYBRID_MATCHERS)]


def reuse_matcher_usages(reuse_matchers: Sequence[str] = ("SchemaM", "SchemaA")) -> List[Tuple[str, ...]]:
    """The 14 reuse usages: 2 singles, 10 pair-wise with hybrids, 2 All+Schema."""
    usages: List[Tuple[str, ...]] = [(name,) for name in reuse_matchers]
    for reuse_matcher in reuse_matchers:
        for hybrid in EVALUATION_HYBRID_MATCHERS:
            usages.append((reuse_matcher, hybrid))
    for reuse_matcher in reuse_matchers:
        usages.append(tuple(EVALUATION_HYBRID_MATCHERS) + (reuse_matcher,))
    return usages


def all_matcher_usages() -> List[Tuple[str, ...]]:
    """All 30 matcher usages of Table 6 (16 no-reuse + 14 reuse)."""
    return no_reuse_matcher_usages() + reuse_matcher_usages()


# ---------------------------------------------------------------------------
# Strategy dimensions
# ---------------------------------------------------------------------------

AGGREGATIONS: Tuple[AggregationStrategy, ...] = (MAX, AVERAGE, MIN)
DIRECTIONS: Tuple[DirectionStrategy, ...] = (LARGE_SMALL, SMALL_LARGE, BOTH)


def full_selection_strategies() -> List[SelectionStrategy]:
    """The full selection dimension of Table 6 (36 strategies)."""
    strategies: List[SelectionStrategy] = []
    strategies.extend(MaxN(n) for n in range(1, 5))
    deltas = (0.01, 0.02, 0.03, 0.04, 0.06, 0.08, 0.1)
    strategies.extend(MaxDelta(d) for d in deltas)
    thresholds = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    strategies.extend(Threshold(t) for t in thresholds)
    strategies.extend(CombinedSelection([Threshold(0.5), MaxN(n)]) for n in range(1, 5))
    strategies.extend(CombinedSelection([Threshold(0.5), MaxDelta(d)]) for d in deltas)
    return strategies


def reduced_selection_strategies() -> List[SelectionStrategy]:
    """A representative sub-grid of selection strategies (used by default benches)."""
    return [
        MaxN(1),
        MaxN(2),
        MaxDelta(0.02),
        MaxDelta(0.1),
        Threshold(0.5),
        Threshold(0.8),
        CombinedSelection([Threshold(0.5), MaxN(1)]),
        CombinedSelection([Threshold(0.5), MaxDelta(0.02)]),
    ]


def selection_strategies(full: bool | None = None) -> List[SelectionStrategy]:
    """The selection dimension; full when requested or ``COMA_FULL_GRID=1`` is set."""
    if full is None:
        full = os.environ.get("COMA_FULL_GRID", "") == "1"
    return full_selection_strategies() if full else reduced_selection_strategies()


# ---------------------------------------------------------------------------
# Series enumeration
# ---------------------------------------------------------------------------

def enumerate_series(
    matcher_usages: Sequence[Tuple[str, ...]],
    aggregations: Sequence[AggregationStrategy] = AGGREGATIONS,
    directions: Sequence[DirectionStrategy] = DIRECTIONS,
    selections: Sequence[SelectionStrategy] | None = None,
    combined_similarities: Sequence[str] = COMBINED_SIMILARITY_VARIANTS,
) -> Iterator[SeriesSpec]:
    """Enumerate all series for the given dimension choices.

    For single matchers the aggregation dimension is not relevant (there is
    only one cube layer), and for single reuse matchers the hybrid-internal
    combined-similarity dimension is not relevant either; redundant series are
    skipped exactly as in the paper's accounting.
    """
    active_selections = selections if selections is not None else selection_strategies()
    for matchers in matcher_usages:
        single = len(matchers) == 1
        single_reuse = single and (matchers[0].startswith("Schema") or matchers[0] == "Fragment")
        usage_aggregations = (AVERAGE,) if single else tuple(aggregations)
        usage_combined = ("Average",) if single_reuse else tuple(combined_similarities)
        for aggregation in usage_aggregations:
            for direction in directions:
                for selection in active_selections:
                    for combined in usage_combined:
                        yield SeriesSpec(
                            matchers=tuple(matchers),
                            aggregation=aggregation,
                            direction=direction,
                            selection=selection,
                            combined_similarity=combined,
                        )


def no_reuse_series(full: bool | None = None) -> List[SeriesSpec]:
    """All no-reuse series (Figure 9 / Figure 10 population)."""
    return list(
        enumerate_series(no_reuse_matcher_usages(), selections=selection_strategies(full))
    )


def reuse_series(full: bool | None = None) -> List[SeriesSpec]:
    """All reuse series (Section 7.3)."""
    return list(
        enumerate_series(reuse_matcher_usages(), selections=selection_strategies(full))
    )


def full_grid() -> List[SeriesSpec]:
    """The complete Table 6 grid (both no-reuse and reuse series)."""
    return no_reuse_series(full=True) + reuse_series(full=True)
