"""The evaluation campaign: efficient execution of many series over the match tasks.

The paper's evaluation runs thousands of *series* (matcher usage + combination
strategy) over 10 match tasks.  Re-running the matchers for every series would
be wasteful -- and unnecessary, because COMA's architecture stores the
matcher-specific similarity cube and applies combination strategies to it
afterwards (Section 3).  The campaign does exactly that:

1. **prepare()** executes every hybrid matcher once per task (in both the
   Average and Dice internal combined-similarity variants) through the batch
   :class:`~repro.engine.engine.MatchEngine`, derives the automatic
   default-operation mappings (for SchemaA reuse), and computes the
   SchemaM / SchemaA reuse layers;
2. **evaluate_series()** then evaluates any :class:`~repro.evaluation.grid.SeriesSpec`
   by slicing the pre-computed layers, aggregating, selecting and comparing
   against the task's gold standard -- which takes milliseconds per series.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.combination.combined import AVERAGE_COMBINED, DICE_COMBINED
from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix
from repro.combination.strategy import CombinationStrategy, default_combination
from repro.core.match_operation import build_context, combine_cube
from repro.datasets.gold_standard import MatchTask, load_all_tasks
from repro.engine.engine import DEFAULT_ENGINE, MatchEngine
from repro.evaluation.grid import SeriesSpec
from repro.evaluation.metrics import AverageQuality, MatchQuality, average_quality, evaluate_mapping
from repro.exceptions import EvaluationError
from repro.matchers.base import MatchContext
from repro.matchers.hybrid import (
    ChildrenMatcher,
    LeavesMatcher,
    NameMatcher,
    NamePathMatcher,
    TypeNameMatcher,
)
from repro.matchers.registry import EVALUATION_HYBRID_MATCHERS
from repro.matchers.reuse import InMemoryMappingStore, SchemaReuseMatcher, StoredMapping
from repro.model.mapping import Correspondence, MatchResult


def _hybrid_matcher_factories():
    return {
        "Name": NameMatcher,
        "NamePath": NamePathMatcher,
        "TypeName": TypeNameMatcher,
        "Children": ChildrenMatcher,
        "Leaves": LeavesMatcher,
    }


@dataclasses.dataclass
class SeriesResult:
    """The outcome of evaluating one series over all tasks."""

    spec: SeriesSpec
    per_task: List[Tuple[str, MatchQuality]]
    average: AverageQuality

    @property
    def label(self) -> str:
        """The series label (matcher usage + strategies)."""
        return self.spec.label()

    @property
    def matcher_label(self) -> str:
        """The matcher usage label only."""
        return self.spec.matcher_label


class TaskWorkbench:
    """Pre-computed matcher layers and metadata for one match task."""

    def __init__(self, task: MatchTask, context: MatchContext):
        self.task = task
        self.context = context
        #: layer matrices: variant ("Average"/"Dice") -> matcher name -> matrix.
        self.layers: Dict[str, Dict[str, SimilarityMatrix]] = {"Average": {}, "Dice": {}}

    def layer(self, matcher_name: str, variant: str) -> SimilarityMatrix:
        """The matrix of one matcher in one combined-similarity variant.

        Reuse matchers have a single variant; they are stored under "Average"
        and served for both variants.
        """
        by_name = self.layers.get(variant, {})
        if matcher_name in by_name:
            return by_name[matcher_name]
        fallback = self.layers["Average"]
        if matcher_name in fallback:
            return fallback[matcher_name]
        raise EvaluationError(
            f"no pre-computed layer for matcher {matcher_name!r} in task {self.task.name}"
        )

    def cube_for(self, matchers: Sequence[str], variant: str) -> SimilarityCube:
        """A similarity cube containing the requested matcher layers."""
        cube = SimilarityCube(self.task.source.paths(), self.task.target.paths())
        for name in matchers:
            cube.add_layer(name, self.layer(name, variant))
        return cube


class EvaluationCampaign:
    """Prepares the per-task similarity layers and evaluates series against them."""

    def __init__(
        self,
        tasks: Optional[Sequence[MatchTask]] = None,
        include_reuse: bool = True,
        hybrid_matchers: Sequence[str] = EVALUATION_HYBRID_MATCHERS,
        variants: Sequence[str] = ("Average", "Dice"),
        engine: Optional[MatchEngine] = None,
        context_factory: Optional[Callable[..., MatchContext]] = None,
    ):
        """``context_factory(source, target)`` overrides per-task context creation.

        A :class:`~repro.session.session.MatchSession` passes its own factory
        so the campaign's matcher executions share the session's path-profile
        caches; the default builds independent contexts as before.
        """
        self._tasks = list(tasks) if tasks is not None else load_all_tasks()
        if not self._tasks:
            raise EvaluationError("an evaluation campaign needs at least one match task")
        self._include_reuse = include_reuse
        self._hybrid_names = tuple(hybrid_matchers)
        self._variants = tuple(variants)
        self._engine = engine if engine is not None else DEFAULT_ENGINE
        self._context_factory = context_factory if context_factory is not None else build_context
        self._workbenches: Dict[str, TaskWorkbench] = {}
        self._automatic_mappings: Dict[str, MatchResult] = {}
        self._manual_store = InMemoryMappingStore()
        self._automatic_store = InMemoryMappingStore()
        self._prepared = False

    # -- preparation -------------------------------------------------------------

    @property
    def tasks(self) -> List[MatchTask]:
        """The match tasks of this campaign."""
        return list(self._tasks)

    def prepare(self) -> "EvaluationCampaign":
        """Execute the matchers once per task and derive the reuse layers."""
        if self._prepared:
            return self
        factories = _hybrid_matcher_factories()
        unknown = [name for name in self._hybrid_names if name not in factories]
        if unknown:
            raise EvaluationError(f"unknown hybrid matchers in campaign: {unknown}")

        for task in self._tasks:
            context = self._context_factory(task.source, task.target)
            workbench = TaskWorkbench(task, context)
            for variant in self._variants:
                combined = DICE_COMBINED if variant == "Dice" else AVERAGE_COMBINED
                for name in self._hybrid_names:
                    matcher = factories[name]()
                    if variant != "Average" and hasattr(matcher, "with_combined_similarity"):
                        matcher = matcher.with_combined_similarity(combined)
                    workbench.layers[variant][name] = self._engine.compute_matrix(
                        matcher, task.source.paths(), task.target.paths(), context
                    )
            self._workbenches[task.name] = workbench

        # Manual mappings (gold standards) feed the SchemaM reuse variant.
        for task in self._tasks:
            self._manual_store.add(
                StoredMapping.from_match_result(task.reference, origin="manual",
                                                name=f"{task.name} (gold)")
            )

        # Automatic default-operation mappings feed the SchemaA reuse variant.
        default = default_combination()
        for task in self._tasks:
            workbench = self._workbenches[task.name]
            cube = workbench.cube_for(self._hybrid_names, "Average")
            result, _, _ = combine_cube(cube, default, workbench.context)
            self._automatic_mappings[task.name] = result
            self._automatic_store.add(
                StoredMapping.from_match_result(result, origin="automatic",
                                                name=f"{task.name} (auto)")
            )

        if self._include_reuse:
            for task in self._tasks:
                workbench = self._workbenches[task.name]
                schema_m = SchemaReuseMatcher(
                    provider=self._manual_store, origin="manual", name="SchemaM"
                )
                schema_a = SchemaReuseMatcher(
                    provider=self._automatic_store, origin="automatic", name="SchemaA"
                )
                workbench.layers["Average"]["SchemaM"] = self._engine.compute_matrix(
                    schema_m, task.source.paths(), task.target.paths(), workbench.context
                )
                workbench.layers["Average"]["SchemaA"] = self._engine.compute_matrix(
                    schema_a, task.source.paths(), task.target.paths(), workbench.context
                )

        self._prepared = True
        return self

    def workbench(self, task_name: str) -> TaskWorkbench:
        """The pre-computed workbench of one task."""
        self.prepare()
        if task_name not in self._workbenches:
            raise EvaluationError(f"no workbench for task {task_name!r}")
        return self._workbenches[task_name]

    def automatic_mapping(self, task_name: str) -> MatchResult:
        """The default-operation mapping derived for a task (reused by SchemaA)."""
        self.prepare()
        return self._automatic_mappings[task_name]

    # -- series evaluation ---------------------------------------------------------------

    def evaluate_series(self, spec: SeriesSpec) -> SeriesResult:
        """Evaluate one series over every task and average the quality measures."""
        self.prepare()
        per_task: List[Tuple[str, MatchQuality]] = []
        for task in self._tasks:
            quality = self.evaluate_series_on_task(spec, task)
            per_task.append((task.name, quality))
        return SeriesResult(
            spec=spec,
            per_task=per_task,
            average=average_quality([quality for _, quality in per_task]),
        )

    def evaluate_series_on_task(self, spec: SeriesSpec, task: MatchTask) -> MatchQuality:
        """Evaluate one series on a single task."""
        self.prepare()
        workbench = self._workbenches[task.name]
        cube = workbench.cube_for(spec.matchers, spec.combined_similarity)
        combination = CombinationStrategy(
            aggregation=spec.aggregation,
            direction=spec.direction,
            selection=spec.selection,
        )
        aggregated = combination.aggregate(cube)
        selected = combination.select(aggregated)
        predicted = MatchResult(task.source, task.target)
        for source, target, similarity in selected:
            predicted.add(Correspondence(source, target, similarity))
        return evaluate_mapping(predicted, task.reference)

    def evaluate_many(self, specs: Iterable[SeriesSpec]) -> List[SeriesResult]:
        """Evaluate a batch of series."""
        return [self.evaluate_series(spec) for spec in specs]

    def predicted_mapping(self, spec: SeriesSpec, task: MatchTask) -> MatchResult:
        """The mapping one series proposes for one task (useful for inspection)."""
        self.prepare()
        workbench = self._workbenches[task.name]
        cube = workbench.cube_for(spec.matchers, spec.combined_similarity)
        combination = CombinationStrategy(
            aggregation=spec.aggregation,
            direction=spec.direction,
            selection=spec.selection,
        )
        selected = combination.select(combination.aggregate(cube))
        predicted = MatchResult(task.source, task.target)
        for source, target, similarity in selected:
            predicted.add(Correspondence(source, target, similarity))
        return predicted
