"""Analysis helpers turning series results into the paper's figures and tables.

Each function corresponds to one evaluation artefact:

* :func:`overall_distribution` -- Figure 9 (histogram of series per Overall range),
* :func:`strategy_shares` -- Figure 10 (per-strategy share of series per range),
* :func:`single_matcher_quality` -- Figure 11 (avg P/R/Overall of single matchers),
* :func:`best_combination_quality` -- Figure 12 (quality of best matcher combinations),
* :func:`sensitivity_by_task` -- Figure 13 (per-task best Overall vs schema size/similarity),
* :func:`default_strategy_selection` -- the Section 7.2 reasoning that picks the
  default combination strategy from the best series per matcher combination.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.evaluation.campaign import EvaluationCampaign, SeriesResult
from repro.evaluation.grid import SeriesSpec
from repro.evaluation.metrics import AverageQuality

#: The Overall ranges of Figure 9 / 10: the negative bucket plus [0.0, 0.1) ... [0.7, 0.8).
OVERALL_RANGES: Tuple[Tuple[float, float], ...] = (
    (float("-inf"), 0.0),
    (0.0, 0.1), (0.1, 0.2), (0.2, 0.3), (0.3, 0.4),
    (0.4, 0.5), (0.5, 0.6), (0.6, 0.7), (0.7, 0.8),
    (0.8, 1.01),
)


def range_label(bounds: Tuple[float, float]) -> str:
    """A human-readable label for one Overall range."""
    low, high = bounds
    if low == float("-inf"):
        return "Min-0.0"
    return f"{low:.1f}-{high if high <= 1.0 else 1.0:.1f}"


def bucket_of(overall: float) -> int:
    """The index of the Overall range containing ``overall``."""
    for index, (low, high) in enumerate(OVERALL_RANGES):
        if low <= overall < high:
            return index
    return len(OVERALL_RANGES) - 1


def overall_distribution(results: Sequence[SeriesResult]) -> List[Tuple[str, int]]:
    """Figure 9: the number of series falling into each average-Overall range."""
    counts = [0] * len(OVERALL_RANGES)
    for result in results:
        counts[bucket_of(result.average.overall)] += 1
    return [(range_label(bounds), counts[i]) for i, bounds in enumerate(OVERALL_RANGES)]


def strategy_shares(
    results: Sequence[SeriesResult],
    dimension: Callable[[SeriesSpec], str],
) -> Dict[str, List[Tuple[str, float]]]:
    """Figure 10: per strategy value, the share of series in each Overall range.

    ``dimension`` extracts the strategy value of interest from a series spec,
    e.g. ``lambda spec: str(spec.aggregation)`` for Figure 10a.
    """
    totals = [0] * len(OVERALL_RANGES)
    per_value: Dict[str, List[int]] = {}
    for result in results:
        bucket = bucket_of(result.average.overall)
        totals[bucket] += 1
        value = dimension(result.spec)
        per_value.setdefault(value, [0] * len(OVERALL_RANGES))[bucket] += 1
    shares: Dict[str, List[Tuple[str, float]]] = {}
    for value, counts in sorted(per_value.items()):
        shares[value] = [
            (range_label(bounds), counts[i] / totals[i] if totals[i] else 0.0)
            for i, bounds in enumerate(OVERALL_RANGES)
        ]
    return shares


@dataclasses.dataclass(frozen=True)
class MatcherQuality:
    """The averaged quality of one matcher usage (a bar group of Figure 11 / 12)."""

    label: str
    quality: AverageQuality
    spec: SeriesSpec

    def as_row(self) -> Dict[str, object]:
        """A flat dict row for tabular reports."""
        return {
            "matcher": self.label,
            "precision": self.quality.precision,
            "recall": self.quality.recall,
            "overall": self.quality.overall,
        }


def single_matcher_quality(
    campaign: EvaluationCampaign,
    matcher_names: Sequence[str],
    spec_builder: Callable[[str], SeriesSpec],
) -> List[MatcherQuality]:
    """Figure 11: evaluate each single matcher with its designated combination strategy."""
    rows: List[MatcherQuality] = []
    for name in matcher_names:
        spec = spec_builder(name)
        result = campaign.evaluate_series(spec)
        rows.append(MatcherQuality(label=name, quality=result.average, spec=spec))
    return sorted(rows, key=lambda r: r.quality.overall)


def best_series_per_matcher(
    results: Sequence[SeriesResult],
) -> Dict[str, SeriesResult]:
    """The best (highest average Overall) series for every matcher-usage label."""
    best: Dict[str, SeriesResult] = {}
    for result in results:
        label = result.matcher_label
        if label not in best or result.average.overall > best[label].average.overall:
            best[label] = result
    return best


def best_combination_quality(results: Sequence[SeriesResult]) -> List[MatcherQuality]:
    """Figure 12: the quality of the best series of each matcher combination."""
    best = best_series_per_matcher(
        [r for r in results if len(r.spec.matchers) > 1]
    )
    rows = [
        MatcherQuality(label=label, quality=result.average, spec=result.spec)
        for label, result in best.items()
    ]
    return sorted(rows, key=lambda r: -r.quality.overall)


@dataclasses.dataclass(frozen=True)
class TaskSensitivity:
    """One Figure 13 data point: problem size vs best achievable Overall."""

    task_name: str
    total_paths: int
    schema_similarity: float
    best_no_reuse_overall: float
    best_reuse_overall: Optional[float]

    def as_row(self) -> Dict[str, object]:
        """A flat dict row for tabular reports."""
        return {
            "task": self.task_name,
            "all_paths": self.total_paths,
            "schema_similarity": self.schema_similarity,
            "overall_no_reuse": self.best_no_reuse_overall,
            "overall_reuse": self.best_reuse_overall,
        }


def sensitivity_by_task(
    campaign: EvaluationCampaign,
    no_reuse_results: Sequence[SeriesResult],
    reuse_results: Sequence[SeriesResult] = (),
) -> List[TaskSensitivity]:
    """Figure 13: for each task, the best per-task Overall across all series."""
    best_no_reuse: Dict[str, float] = {}
    for result in no_reuse_results:
        for task_name, quality in result.per_task:
            if task_name not in best_no_reuse or quality.overall > best_no_reuse[task_name]:
                best_no_reuse[task_name] = quality.overall
    best_reuse: Dict[str, float] = {}
    for result in reuse_results:
        for task_name, quality in result.per_task:
            if task_name not in best_reuse or quality.overall > best_reuse[task_name]:
                best_reuse[task_name] = quality.overall

    rows: List[TaskSensitivity] = []
    for task in campaign.tasks:
        rows.append(
            TaskSensitivity(
                task_name=task.name,
                total_paths=task.total_paths,
                schema_similarity=task.schema_similarity,
                best_no_reuse_overall=best_no_reuse.get(task.name, float("nan")),
                best_reuse_overall=best_reuse.get(task.name) if best_reuse else None,
            )
        )
    return sorted(rows, key=lambda r: (r.total_paths, r.task_name))


@dataclasses.dataclass(frozen=True)
class DefaultStrategyChoice:
    """The outcome of the Section 7.2 default-strategy selection procedure."""

    aggregation_votes: Dict[str, int]
    direction_votes: Dict[str, int]
    selection_votes: Dict[str, int]
    combined_votes: Dict[str, int]
    best_label: str
    best_overall: float


def default_strategy_selection(results: Sequence[SeriesResult]) -> DefaultStrategyChoice:
    """Reproduce the paper's default-strategy vote over the best combination series."""
    best = best_series_per_matcher([r for r in results if len(r.spec.matchers) > 1])
    positive = {label: r for label, r in best.items() if r.average.overall > 0}
    aggregation_votes: Dict[str, int] = {}
    direction_votes: Dict[str, int] = {}
    selection_votes: Dict[str, int] = {}
    combined_votes: Dict[str, int] = {}
    best_label = ""
    best_overall = float("-inf")
    for label, result in positive.items():
        spec = result.spec
        aggregation_votes[str(spec.aggregation)] = aggregation_votes.get(str(spec.aggregation), 0) + 1
        direction_votes[str(spec.direction)] = direction_votes.get(str(spec.direction), 0) + 1
        selection_votes[str(spec.selection)] = selection_votes.get(str(spec.selection), 0) + 1
        combined_votes[spec.combined_similarity] = combined_votes.get(spec.combined_similarity, 0) + 1
        if result.average.overall > best_overall:
            best_overall = result.average.overall
            best_label = label
    return DefaultStrategyChoice(
        aggregation_votes=aggregation_votes,
        direction_votes=direction_votes,
        selection_votes=selection_votes,
        combined_votes=combined_votes,
        best_label=best_label,
        best_overall=best_overall,
    )
