"""Importer base class and shared helpers.

Importers convert external schema definitions (relational DDL, XML Schema,
plain dict specifications) into the internal graph representation
(:class:`~repro.model.schema.Schema`) on which all matchers operate
(Section 3, Figure 1).
"""

from __future__ import annotations

import abc
import pathlib
from typing import Union

from repro.model.schema import Schema

#: Anything an importer accepts as source text: a string or a path to a file.
SchemaSource = Union[str, pathlib.Path]


class SchemaImporter(abc.ABC):
    """Base class for schema importers."""

    #: The format name used by the importer registry (e.g. ``"sql"``, ``"xsd"``).
    format_name: str = "unknown"

    #: File suffixes (lower-case, with dot) this importer claims.
    file_suffixes: tuple[str, ...] = ()

    @abc.abstractmethod
    def import_text(self, text: str, name: str) -> Schema:
        """Parse schema ``text`` into the internal representation named ``name``."""

    def import_file(self, path: SchemaSource, name: str | None = None) -> Schema:
        """Read a file and import it; the schema name defaults to the file stem."""
        file_path = pathlib.Path(path)
        with open(file_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.import_text(text, name or file_path.stem)

    def accepts(self, path: SchemaSource) -> bool:
        """True if this importer claims the file suffix of ``path``."""
        suffix = pathlib.Path(path).suffix.lower()
        return suffix in self.file_suffixes
