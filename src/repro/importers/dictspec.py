"""Importer for dict / JSON schema specifications.

A convenient programmatic format used by tests, examples and the bundled
datasets.  A specification is a mapping::

    {
        "name": "PO2",
        "elements": [
            {"name": "DeliverTo", "children": [
                {"name": "Address", "children": [
                    {"name": "Street", "type": "xsd:string"},
                    {"name": "City", "type": "xsd:string"},
                ]},
            ]},
        ],
    }

Shared fragments can be expressed with ``"fragment": "<fragment name>"``
entries referencing a top-level ``"fragments"`` section; each reference links
the same underlying nodes under another parent, producing multiple paths.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ImportError_
from repro.importers.base import SchemaImporter
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema


class DictImporter(SchemaImporter):
    """Builds schemas from nested dict specifications (or their JSON form)."""

    format_name = "dict"
    file_suffixes = (".json",)

    def import_text(self, text: str, name: str) -> Schema:
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as error:
            raise ImportError_(f"invalid JSON while importing {name!r}: {error}") from error
        if not isinstance(spec, Mapping):
            raise ImportError_(f"the JSON document for {name!r} must be an object")
        return self.import_spec(spec, default_name=name)

    def import_spec(self, spec: Mapping[str, Any], default_name: str = "schema") -> Schema:
        """Build a schema from an in-memory dict specification."""
        name = str(spec.get("name", default_name))
        elements = spec.get("elements")
        if not isinstance(elements, Sequence) or not elements:
            raise ImportError_(f"schema spec {name!r} must contain a non-empty 'elements' list")

        schema = Schema(name, namespace=spec.get("namespace"))
        fragment_specs: Dict[str, Mapping[str, Any]] = {}
        for fragment in spec.get("fragments", ()):  # type: ignore[union-attr]
            if not isinstance(fragment, Mapping) or "name" not in fragment:
                raise ImportError_(f"every fragment of {name!r} needs a 'name'")
            fragment_specs[str(fragment["name"])] = fragment

        built_fragments: Dict[str, SchemaElement] = {}

        def build_fragment(fragment_name: str, parent: SchemaElement) -> None:
            if fragment_name not in fragment_specs:
                raise ImportError_(
                    f"schema spec {name!r} references unknown fragment {fragment_name!r}"
                )
            if fragment_name in built_fragments:
                schema.add_link(parent, built_fragments[fragment_name])
                return
            fragment_spec = fragment_specs[fragment_name]
            fragment_root = schema.add_detached_element(fragment_name, kind=ElementKind.TYPE)
            built_fragments[fragment_name] = fragment_root
            schema.add_link(parent, fragment_root)
            for child in fragment_spec.get("children", ()):
                build_node(child, fragment_root)

        def build_node(node: Any, parent: SchemaElement) -> None:
            if not isinstance(node, Mapping):
                raise ImportError_(f"schema spec {name!r} contains a non-object element: {node!r}")
            if "fragment" in node:
                build_fragment(str(node["fragment"]), parent)
                return
            if "name" not in node:
                raise ImportError_(f"every element of {name!r} needs a 'name': {node!r}")
            children = node.get("children")
            element = schema.add_element(
                str(node["name"]),
                parent=parent,
                kind=ElementKind.ELEMENT,
                source_type=node.get("type"),
                documentation=node.get("documentation"),
            )
            for child in children or ():
                build_node(child, element)

        for top_level in elements:
            build_node(top_level, schema.root)
        return schema
