"""Importer for relational schemas defined by SQL ``CREATE TABLE`` statements.

The importer understands the subset of DDL used by the paper's running example
(Figure 1a) and by typical schema dumps:

* ``CREATE TABLE [schema.]name ( column type [constraints], ... )``,
* column-level ``PRIMARY KEY``, ``NOT NULL``, ``DEFAULT ...``,
* column-level ``REFERENCES other_table [(column)]`` foreign keys, which become
  referential links in the graph,
* table-level ``PRIMARY KEY (...)`` and ``FOREIGN KEY (...) REFERENCES ...``.

Tables become inner elements under the schema root; columns become leaf
elements carrying their SQL type as ``source_type``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ImportError_
from repro.importers.base import SchemaImporter
from repro.model.element import ElementKind, LinkKind, SchemaElement
from repro.model.schema import Schema

_CREATE_TABLE = re.compile(
    r"CREATE\s+TABLE\s+(?P<name>[\w\.\"\[\]]+)\s*\((?P<body>.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)

_COLUMN_REFERENCES = re.compile(
    r"REFERENCES\s+(?P<table>[\w\.\"\[\]]+)(\s*\((?P<column>[\w\",\s]+)\))?",
    re.IGNORECASE,
)

_TABLE_CONSTRAINT_PREFIXES = (
    "primary key", "foreign key", "unique", "check", "constraint", "key", "index",
)

#: SQL types that may carry a parenthesised argument list.
_TYPE_PATTERN = re.compile(r"^(?P<type>[A-Za-z]+(\s+[A-Za-z]+)?(\s*\([\d\s,]*\))?)")


def _strip_quotes(identifier: str) -> str:
    return identifier.strip().strip('"').strip("[").strip("]")


def _split_columns(body: str) -> List[str]:
    """Split the body of a CREATE TABLE on top-level commas."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


class RelationalImporter(SchemaImporter):
    """Parses ``CREATE TABLE`` DDL into the internal schema graph."""

    format_name = "sql"
    file_suffixes = (".sql", ".ddl")

    def import_text(self, text: str, name: str) -> Schema:
        statements = list(_CREATE_TABLE.finditer(self._strip_comments(text)))
        if not statements:
            raise ImportError_(f"no CREATE TABLE statements found while importing {name!r}")

        schema = Schema(name)
        table_elements: Dict[str, SchemaElement] = {}
        column_elements: Dict[Tuple[str, str], SchemaElement] = {}
        pending_references: List[Tuple[SchemaElement, str, Optional[str]]] = []

        for statement in statements:
            raw_table_name = _strip_quotes(statement.group("name"))
            table_name = raw_table_name.split(".")[-1]
            table = schema.add_element(table_name, kind=ElementKind.TABLE)
            table_elements[table_name.lower()] = table

            for definition in _split_columns(statement.group("body")):
                lowered = definition.lower()
                if any(lowered.startswith(prefix) for prefix in _TABLE_CONSTRAINT_PREFIXES):
                    continue
                column = self._parse_column(definition)
                if column is None:
                    continue
                column_name, column_type, reference = column
                element = schema.add_element(
                    column_name, parent=table, kind=ElementKind.COLUMN, source_type=column_type
                )
                column_elements[(table_name.lower(), column_name.lower())] = element
                if reference is not None:
                    pending_references.append((element, reference[0], reference[1]))

        for source_element, referenced_table, referenced_column in pending_references:
            target_table = table_elements.get(referenced_table.split(".")[-1].lower())
            if target_table is None:
                continue
            target: SchemaElement = target_table
            if referenced_column:
                candidate = column_elements.get(
                    (referenced_table.split(".")[-1].lower(), referenced_column.lower())
                )
                if candidate is not None:
                    target = candidate
            schema.add_link(source_element, target, LinkKind.REFERENCE)

        return schema

    @staticmethod
    def _strip_comments(text: str) -> str:
        without_line_comments = re.sub(r"--[^\n]*", "", text)
        return re.sub(r"/\*.*?\*/", "", without_line_comments, flags=re.DOTALL)

    @staticmethod
    def _parse_column(definition: str) -> Optional[Tuple[str, str, Optional[Tuple[str, Optional[str]]]]]:
        """Parse one column definition into (name, type, optional reference)."""
        tokens = definition.strip().split(None, 1)
        if len(tokens) < 2:
            return None
        column_name = _strip_quotes(tokens[0])
        remainder = tokens[1].strip()
        type_match = _TYPE_PATTERN.match(remainder)
        if not type_match:
            return None
        column_type = type_match.group("type").strip()

        reference: Optional[Tuple[str, Optional[str]]] = None
        reference_match = _COLUMN_REFERENCES.search(remainder)
        if reference_match:
            referenced_table = _strip_quotes(reference_match.group("table"))
            referenced_column = reference_match.group("column")
            if referenced_column:
                referenced_column = _strip_quotes(referenced_column.split(",")[0])
            reference = (referenced_table, referenced_column)
        return column_name, column_type, reference
