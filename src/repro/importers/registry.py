"""Importer registry: choose the right importer by format name or file suffix."""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Tuple

from repro.exceptions import ImportError_
from repro.importers.base import SchemaImporter, SchemaSource
from repro.importers.dictspec import DictImporter
from repro.importers.relational import RelationalImporter
from repro.importers.xsd import XsdImporter
from repro.model.schema import Schema


class ImporterRegistry:
    """Maps format names and file suffixes to importer instances."""

    def __init__(self) -> None:
        self._by_format: Dict[str, SchemaImporter] = {}

    def register(self, importer: SchemaImporter, replace: bool = False) -> None:
        """Register an importer under its ``format_name``."""
        key = importer.format_name.lower()
        if key in self._by_format and not replace:
            raise ValueError(f"an importer for format {key!r} is already registered")
        self._by_format[key] = importer

    def by_format(self, format_name: str) -> SchemaImporter:
        """The importer registered for ``format_name``."""
        key = format_name.strip().lower()
        if key not in self._by_format:
            raise ImportError_(
                f"no importer for format {format_name!r}; known formats: "
                f"{', '.join(sorted(self._by_format))}"
            )
        return self._by_format[key]

    def for_file(self, path: SchemaSource) -> SchemaImporter:
        """The importer claiming the suffix of ``path``."""
        suffix = pathlib.Path(path).suffix.lower()
        for importer in self._by_format.values():
            if suffix in importer.file_suffixes:
                return importer
        raise ImportError_(f"no importer claims the file suffix {suffix!r} of {path}")

    def import_file(self, path: SchemaSource, name: Optional[str] = None,
                    format_name: Optional[str] = None) -> Schema:
        """Import a schema file, auto-detecting the importer unless a format is given."""
        importer = self.by_format(format_name) if format_name else self.for_file(path)
        return importer.import_file(path, name)

    def formats(self) -> Tuple[str, ...]:
        """All registered format names."""
        return tuple(sorted(self._by_format))


def default_registry() -> ImporterRegistry:
    """A registry with the built-in importers (SQL DDL, XSD, dict/JSON)."""
    registry = ImporterRegistry()
    registry.register(RelationalImporter())
    registry.register(XsdImporter())
    registry.register(DictImporter())
    return registry


#: Module-level default registry used by the high-level API and the CLI.
DEFAULT_IMPORTERS = default_registry()
