"""Schema importers: relational DDL, XML Schema (XSD) and dict/JSON specifications."""

from repro.importers.base import SchemaImporter, SchemaSource
from repro.importers.dictspec import DictImporter
from repro.importers.registry import DEFAULT_IMPORTERS, ImporterRegistry, default_registry
from repro.importers.relational import RelationalImporter
from repro.importers.xsd import XsdImporter

__all__ = [
    "DEFAULT_IMPORTERS",
    "DictImporter",
    "ImporterRegistry",
    "RelationalImporter",
    "SchemaImporter",
    "SchemaSource",
    "XsdImporter",
    "default_registry",
]
