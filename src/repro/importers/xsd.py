"""Importer for XML Schema (XSD) documents.

The importer covers the XSD constructs used by the paper's purchase-order
schemas (Figure 1a) and by typical message schemas:

* global ``xsd:element`` declarations (each becomes a subtree under the root),
* named ``xsd:complexType`` definitions, which are treated as *shared
  fragments*: a complex type referenced from several elements contributes one
  set of graph nodes with multiple containment parents, so its descendants
  appear on multiple paths (exactly the behaviour Table 5 quantifies),
* ``xsd:sequence`` / ``xsd:all`` / ``xsd:choice`` content models,
* ``xsd:attribute`` declarations (imported as leaves),
* anonymous inline complex types,
* simple-typed elements carrying their XSD type as ``source_type``.

Unresolvable type references degrade gracefully to leaf elements of unknown
type rather than failing the import.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.exceptions import ImportError_
from repro.importers.base import SchemaImporter
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

_XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"


def _local_name(tag: str) -> str:
    return tag.rsplit("}", 1)[-1] if "}" in tag else tag


def _strip_prefix(type_name: Optional[str]) -> Optional[str]:
    if type_name is None:
        return None
    return type_name.split(":")[-1]


def _is_builtin_type(type_name: Optional[str]) -> bool:
    if type_name is None:
        return False
    return _strip_prefix(type_name) in {
        "string", "normalizedString", "token", "boolean", "decimal", "float", "double",
        "integer", "int", "long", "short", "byte", "nonNegativeInteger", "positiveInteger",
        "unsignedInt", "unsignedLong", "date", "time", "dateTime", "duration", "anyURI",
        "base64Binary", "hexBinary", "ID", "IDREF", "QName", "language", "Name", "NCName",
    }


class XsdImporter(SchemaImporter):
    """Parses XML Schema documents into the internal schema graph."""

    format_name = "xsd"
    file_suffixes = (".xsd", ".xml")

    def __init__(self, max_recursion_depth: int = 12):
        if max_recursion_depth < 1:
            raise ValueError("max_recursion_depth must be >= 1")
        self._max_depth = int(max_recursion_depth)

    def import_text(self, text: str, name: str) -> Schema:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as error:
            raise ImportError_(f"invalid XML while importing {name!r}: {error}") from error
        if _local_name(root.tag) != "schema":
            raise ImportError_(
                f"expected an <xsd:schema> document element while importing {name!r}, "
                f"got <{_local_name(root.tag)}>"
            )

        schema = Schema(name, namespace=root.get("targetNamespace"))
        complex_types = {
            ct.get("name"): ct
            for ct in root
            if _local_name(ct.tag) == "complexType" and ct.get("name")
        }
        global_elements = [el for el in root if _local_name(el.tag) == "element"]
        if not global_elements and not complex_types:
            raise ImportError_(f"no global elements or complex types found in {name!r}")

        #: Shared fragment roots already materialised, keyed by complex type name.
        shared_fragments: Dict[str, SchemaElement] = {}

        def build_complex_type(
            type_name: str, parent: SchemaElement, depth: int
        ) -> None:
            """Attach the content of a named complex type beneath ``parent``.

            The first use materialises the type's nodes; later uses re-link the
            same fragment root, creating the shared-fragment path structure.
            """
            definition = complex_types.get(type_name)
            if definition is None:
                return
            if type_name in shared_fragments:
                try:
                    schema.add_link(parent, shared_fragments[type_name])
                except Exception:
                    # A second containment link between the same two nodes is
                    # redundant; sharing elsewhere is what matters.
                    pass
                return
            fragment_root = schema.add_detached_element(type_name, kind=ElementKind.TYPE)
            shared_fragments[type_name] = fragment_root
            schema.add_link(parent, fragment_root)
            build_children(definition, fragment_root, depth + 1)

        def build_children(node: ET.Element, parent: SchemaElement, depth: int) -> None:
            if depth > self._max_depth:
                return
            for child in node:
                tag = _local_name(child.tag)
                if tag in ("sequence", "all", "choice", "complexContent", "extension"):
                    build_children(child, parent, depth)
                elif tag == "element":
                    build_element(child, parent, depth)
                elif tag == "attribute":
                    attribute_name = child.get("name") or child.get("ref")
                    if attribute_name:
                        schema.add_element(
                            attribute_name,
                            parent=parent,
                            kind=ElementKind.ATTRIBUTE,
                            source_type=child.get("type") or "xsd:string",
                        )
                elif tag == "complexType":
                    # anonymous inline type directly under an element
                    build_children(child, parent, depth)

        def build_element(node: ET.Element, parent: SchemaElement, depth: int) -> None:
            element_name = node.get("name") or _strip_prefix(node.get("ref"))
            if not element_name:
                return
            type_reference = node.get("type")
            inline_types = [c for c in node if _local_name(c.tag) == "complexType"]
            if type_reference and not _is_builtin_type(type_reference):
                referenced = _strip_prefix(type_reference)
                element = schema.add_element(element_name, parent=parent, kind=ElementKind.ELEMENT)
                if referenced in complex_types:
                    build_complex_type(referenced, element, depth)
                return
            if inline_types:
                element = schema.add_element(element_name, parent=parent, kind=ElementKind.ELEMENT)
                build_children(inline_types[0], element, depth + 1)
                return
            schema.add_element(
                element_name,
                parent=parent,
                kind=ElementKind.ELEMENT,
                source_type=type_reference or "xsd:string",
            )

        if global_elements:
            for element in global_elements:
                build_element(element, schema.root, 0)
        else:
            # Schemas consisting only of named complex types (like Figure 1a's PO2):
            # expose each top-level complex type as a subtree under the root.
            for type_name in complex_types:
                if type_name in shared_fragments:
                    continue
                referenced_by_others = any(
                    _strip_prefix(el.get("type")) == type_name
                    for ct in complex_types.values()
                    for el in ct.iter()
                    if _local_name(el.tag) == "element"
                )
                if not referenced_by_others:
                    build_complex_type(type_name, schema.root, 0)

        return schema
