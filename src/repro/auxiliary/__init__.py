"""Auxiliary information sources: synonym dictionaries and related tables."""

from repro.auxiliary.synonyms import (
    DEFAULT_RELATIONSHIP_SIMILARITY,
    SynonymDictionary,
    TermRelationship,
    default_purchase_order_synonyms,
)

__all__ = [
    "DEFAULT_RELATIONSHIP_SIMILARITY",
    "SynonymDictionary",
    "TermRelationship",
    "default_purchase_order_synonyms",
]
