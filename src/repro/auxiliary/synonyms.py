"""Synonym dictionary used by the ``Synonym`` matcher.

The Synonym matcher (Section 4.1) "estimates the similarity between element
names by looking up the terminological relationships in a specified
dictionary.  Currently, it simply uses relationship-specific similarity
values, e.g. 1.0 for a synonymy and 0.8 for a hypernymy relationship."

:class:`SynonymDictionary` stores word pairs labelled with a
:class:`TermRelationship` and answers similarity lookups.  Synonymy is stored
symmetrically; hypernymy is stored directed (``hyponym -> hypernym``) but the
similarity lookup treats the pair symmetrically, as the paper's matcher does.
The evaluation's hand-built synonym file is reproduced by
:func:`default_purchase_order_synonyms`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Tuple


class TermRelationship(enum.Enum):
    """Terminological relationships recognised by the dictionary."""

    SYNONYM = "synonym"
    HYPERNYM = "hypernym"
    RELATED = "related"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Default relationship-specific similarity values from the paper.
DEFAULT_RELATIONSHIP_SIMILARITY: Dict[TermRelationship, float] = {
    TermRelationship.SYNONYM: 1.0,
    TermRelationship.HYPERNYM: 0.8,
    TermRelationship.RELATED: 0.6,
}


class SynonymDictionary:
    """A small terminological dictionary mapping word pairs to relationships."""

    def __init__(
        self,
        relationship_similarity: Optional[Dict[TermRelationship, float]] = None,
    ):
        self._pairs: Dict[Tuple[str, str], TermRelationship] = {}
        self._similarity = dict(DEFAULT_RELATIONSHIP_SIMILARITY)
        if relationship_similarity:
            for relationship, value in relationship_similarity.items():
                self.set_relationship_similarity(relationship, value)

    # -- configuration ---------------------------------------------------------

    def set_relationship_similarity(self, relationship: TermRelationship, value: float) -> None:
        """Override the similarity assigned to a relationship kind."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"similarity must be within [0, 1], got {value!r}")
        self._similarity[relationship] = float(value)

    def relationship_similarity(self, relationship: TermRelationship) -> float:
        """The similarity currently assigned to ``relationship``."""
        return self._similarity[relationship]

    # -- population --------------------------------------------------------------

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        first, second = a.strip().lower(), b.strip().lower()
        return (first, second) if first <= second else (second, first)

    def add(self, a: str, b: str, relationship: TermRelationship = TermRelationship.SYNONYM) -> None:
        """Record that words ``a`` and ``b`` stand in ``relationship``."""
        if not a.strip() or not b.strip():
            raise ValueError("synonym dictionary entries must be non-empty strings")
        self._pairs[self._key(a, b)] = relationship

    def add_synonyms(self, *groups: Iterable[str]) -> None:
        """Record every pair within each group as synonyms."""
        for group in groups:
            words = [w for w in group]
            for i, first in enumerate(words):
                for second in words[i + 1:]:
                    self.add(first, second, TermRelationship.SYNONYM)

    def add_hypernym(self, hyponym: str, hypernym: str) -> None:
        """Record that ``hypernym`` is a broader term for ``hyponym``."""
        self.add(hyponym, hypernym, TermRelationship.HYPERNYM)

    # -- lookup -------------------------------------------------------------------

    def relationship(self, a: str, b: str) -> Optional[TermRelationship]:
        """The stored relationship between two words, or ``None``."""
        if a.strip().lower() == b.strip().lower():
            return TermRelationship.SYNONYM
        return self._pairs.get(self._key(a, b))

    def similarity(self, a: str, b: str) -> float:
        """The relationship-specific similarity of two words (0.0 if unrelated)."""
        relationship = self.relationship(a, b)
        if relationship is None:
            return 0.0
        return self._similarity[relationship]

    def merged_with(self, other: "SynonymDictionary") -> "SynonymDictionary":
        """A new dictionary combining both; entries of ``other`` win on conflict."""
        merged = SynonymDictionary()
        merged._similarity.update(self._similarity)
        merged._similarity.update(other._similarity)
        merged._pairs.update(self._pairs)
        merged._pairs.update(other._pairs)
        return merged

    def items(self) -> Iterable[Tuple[Tuple[str, str], TermRelationship]]:
        """Iterate over ``((word_a, word_b), relationship)`` entries."""
        return self._pairs.items()

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: object) -> bool:
        if isinstance(pair, tuple) and len(pair) == 2:
            return self._key(str(pair[0]), str(pair[1])) in self._pairs
        return False


def default_purchase_order_synonyms() -> SynonymDictionary:
    """The domain synonym file used uniformly in the paper's evaluation.

    The paper lists domain-specific synonyms such as ``(ship, deliver)`` and
    ``(bill, invoice)``; this function reproduces the same content class for
    the purchase-order domain used by the bundled test schemas.
    """
    dictionary = SynonymDictionary()
    dictionary.add_synonyms(
        ("ship", "shipping", "shipment", "deliver", "delivery", "dispatch"),
        ("bill", "billing", "invoice", "invoicing"),
        ("customer", "client", "buyer", "purchaser"),
        ("vendor", "supplier", "seller"),
        ("street", "road"),
        ("city", "town"),
        ("zip", "postal", "postcode", "post"),
        ("telephone", "phone"),
        ("company", "organization", "firm"),
        ("contact", "person"),
        ("item", "article", "product", "line"),
        ("quantity", "count"),
        ("price", "cost"),
        ("order", "purchase"),
        ("number", "identifier", "code"),
        ("name", "title"),
        ("country", "nation"),
        ("state", "province", "region", "district"),
        ("date", "day"),
        ("total", "sum", "gross"),
        ("subtotal", "net"),
        ("amount", "value"),
        ("unit", "measure"),
        ("header", "head"),
        ("detail", "line"),
        ("email", "mail"),
        ("description", "text", "note", "comment"),
        ("partner", "party"),
        ("tax", "vat", "duty"),
        ("freight", "carriage"),
        ("currency", "money"),
        ("remark", "note", "comment"),
        ("position", "line"),
    )
    dictionary.add_hypernym("surname", "name")
    dictionary.add_hypernym("forename", "name")
    dictionary.add_hypernym("city", "address")
    dictionary.add_hypernym("street", "address")
    dictionary.add_hypernym("invoice", "document")
    dictionary.add_hypernym("order", "document")
    return dictionary
