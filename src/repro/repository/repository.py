"""The DBMS-based repository (Section 3 / Section 8), backed by SQLite.

The repository stores four kinds of objects:

* **schemas** -- the imported schema graphs (loss-lessly serialised),
* **mappings** -- complete (possibly user-confirmed) match results in the
  relational representation of Figure 3c, labelled with an origin
  (``manual`` / ``automatic`` / ``composed``) so the SchemaM / SchemaA reuse
  variants can filter them,
* **similarity cubes** -- the intermediate matcher-specific similarity values
  of a match task, so combination strategies can be re-run without re-running
  the matchers,
* **strategies** -- named declarative strategy specs (see
  :mod:`repro.core.spec`), stored in both the compact spec form (for listing)
  and the complete dict/JSON form (for loss-less reload), so tuned strategies
  are addressable by name from sessions, the CLI and configuration.

The class implements the :class:`~repro.matchers.reuse.provider.MappingProvider`
protocol, so it can be handed directly to the reuse matchers via
``MatchContext.repository``.
"""

from __future__ import annotations

import contextlib
import functools
import json
import sqlite3
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.combination.cube import SimilarityCube
from repro.exceptions import ComaError, RepositoryError
from repro.matchers.reuse.provider import MappingRow, StoredMapping
from repro.model.mapping import MatchResult
from repro.model.schema import Schema
from repro.repository.serialization import schema_from_json, schema_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import MatchStrategy
    from repro.matchers.registry import MatcherLibrary

_SCHEMA_DDL = """
CREATE TABLE IF NOT EXISTS schemas (
    name        TEXT PRIMARY KEY,
    format      TEXT NOT NULL DEFAULT 'internal',
    document    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS mappings (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    name           TEXT NOT NULL,
    source_schema  TEXT NOT NULL,
    target_schema  TEXT NOT NULL,
    origin         TEXT NOT NULL DEFAULT 'automatic'
);
CREATE TABLE IF NOT EXISTS mapping_rows (
    mapping_id   INTEGER NOT NULL REFERENCES mappings(id) ON DELETE CASCADE,
    source_path  TEXT NOT NULL,
    target_path  TEXT NOT NULL,
    similarity   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_mappings_pair
    ON mappings (source_schema, target_schema, origin);
CREATE INDEX IF NOT EXISTS idx_mapping_rows_mapping
    ON mapping_rows (mapping_id);
CREATE TABLE IF NOT EXISTS cube_entries (
    task         TEXT NOT NULL,
    matcher      TEXT NOT NULL,
    source_path  TEXT NOT NULL,
    target_path  TEXT NOT NULL,
    similarity   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cube_task ON cube_entries (task, matcher);
CREATE TABLE IF NOT EXISTS strategies (
    name       TEXT PRIMARY KEY,
    spec       TEXT NOT NULL,
    document   TEXT NOT NULL
);
"""


def _locked(method):
    """Run ``method`` under the repository lock (a no-op lock by default)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class Repository:
    """SQLite-backed store for schemas, mappings and similarity cubes.

    Parameters
    ----------
    path:
        The database file (``":memory:"`` for an in-memory repository).
    threadsafe:
        When True, the single underlying connection may be used from any
        thread and every repository method runs under an internal reentrant
        lock (statement sequences such as a mapping insert stay atomic).
        This is how the :mod:`repro.service` layer shares one repository
        across its worker sessions.  The default (False) keeps SQLite's
        same-thread check for single-threaded use.
    """

    def __init__(self, path: str = ":memory:", threadsafe: bool = False):
        self._path = path
        self._threadsafe = bool(threadsafe)
        self._lock = threading.RLock() if threadsafe else contextlib.nullcontext()
        self._connection = sqlite3.connect(path, check_same_thread=not threadsafe)
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._connection.executescript(_SCHEMA_DDL)
        self._connection.commit()

    # -- lifecycle -------------------------------------------------------------

    @property
    def path(self) -> str:
        """The database path (``":memory:"`` for an in-memory repository)."""
        return self._path

    @property
    def threadsafe(self) -> bool:
        """Whether this repository serialises cross-thread access internally."""
        return self._threadsafe

    @_locked
    def close(self) -> None:
        """Close the underlying database connection."""
        self._connection.close()

    def __enter__(self) -> "Repository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- schemas -----------------------------------------------------------------

    @_locked
    def store_schema(self, schema: Schema, replace: bool = True) -> None:
        """Persist a schema graph under its name."""
        document = schema_to_json(schema)
        try:
            if replace:
                self._connection.execute(
                    "INSERT OR REPLACE INTO schemas (name, document) VALUES (?, ?)",
                    (schema.name, document),
                )
            else:
                self._connection.execute(
                    "INSERT INTO schemas (name, document) VALUES (?, ?)",
                    (schema.name, document),
                )
        except sqlite3.IntegrityError as error:
            raise RepositoryError(f"schema {schema.name!r} is already stored") from error
        self._connection.commit()

    @_locked
    def load_schema(self, name: str) -> Schema:
        """Load a previously stored schema graph by name."""
        row = self._connection.execute(
            "SELECT document FROM schemas WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise RepositoryError(f"no schema named {name!r} in the repository")
        return schema_from_json(row[0])

    @_locked
    def schema_names(self) -> Tuple[str, ...]:
        """Names of all stored schemas, sorted."""
        rows = self._connection.execute("SELECT name FROM schemas ORDER BY name").fetchall()
        return tuple(r[0] for r in rows)

    @_locked
    def has_schema(self, name: str) -> bool:
        """True if a schema with this name is stored."""
        row = self._connection.execute(
            "SELECT 1 FROM schemas WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    @_locked
    def delete_schema(self, name: str) -> bool:
        """Delete a stored schema; returns True if one was removed."""
        cursor = self._connection.execute("DELETE FROM schemas WHERE name = ?", (name,))
        self._connection.commit()
        return cursor.rowcount > 0

    # -- mappings -----------------------------------------------------------------------

    @_locked
    def store_mapping(
        self,
        mapping: MatchResult | StoredMapping,
        origin: str = "automatic",
        name: Optional[str] = None,
    ) -> int:
        """Persist a mapping; returns its repository id."""
        if isinstance(mapping, MatchResult):
            stored = StoredMapping.from_match_result(mapping, origin=origin, name=name or "")
        else:
            stored = mapping
            if name or origin != "automatic":
                stored = StoredMapping(
                    source_schema=stored.source_schema,
                    target_schema=stored.target_schema,
                    rows=stored.rows,
                    origin=origin if origin != "automatic" else stored.origin,
                    name=name or stored.name,
                )
        cursor = self._connection.execute(
            "INSERT INTO mappings (name, source_schema, target_schema, origin) "
            "VALUES (?, ?, ?, ?)",
            (
                stored.name or f"{stored.source_schema}<->{stored.target_schema}",
                stored.source_schema,
                stored.target_schema,
                stored.origin,
            ),
        )
        mapping_id = int(cursor.lastrowid)
        self._connection.executemany(
            "INSERT INTO mapping_rows (mapping_id, source_path, target_path, similarity) "
            "VALUES (?, ?, ?, ?)",
            [(mapping_id, s, t, float(v)) for s, t, v in stored.rows],
        )
        self._connection.commit()
        return mapping_id

    def _load_rows(self, mapping_id: int) -> Tuple[MappingRow, ...]:
        rows = self._connection.execute(
            "SELECT source_path, target_path, similarity FROM mapping_rows "
            "WHERE mapping_id = ? ORDER BY source_path, target_path",
            (mapping_id,),
        ).fetchall()
        return tuple((r[0], r[1], float(r[2])) for r in rows)

    @_locked
    def stored_mappings(self, origin: Optional[str] = None) -> Sequence[StoredMapping]:
        """All stored mappings (the :class:`MappingProvider` protocol method)."""
        if origin is None:
            header_rows = self._connection.execute(
                "SELECT id, name, source_schema, target_schema, origin FROM mappings ORDER BY id"
            ).fetchall()
        else:
            header_rows = self._connection.execute(
                "SELECT id, name, source_schema, target_schema, origin FROM mappings "
                "WHERE origin = ? ORDER BY id",
                (origin,),
            ).fetchall()
        mappings: List[StoredMapping] = []
        for mapping_id, name, source_schema, target_schema, row_origin in header_rows:
            mappings.append(
                StoredMapping(
                    source_schema=source_schema,
                    target_schema=target_schema,
                    rows=self._load_rows(int(mapping_id)),
                    origin=row_origin,
                    name=name,
                )
            )
        return tuple(mappings)

    @_locked
    def mappings_between(
        self, first: str, second: str, origin: Optional[str] = None
    ) -> Tuple[StoredMapping, ...]:
        """Stored mappings whose schema pair is ``{first, second}`` in either orientation."""
        return tuple(
            m
            for m in self.stored_mappings(origin)
            if {m.source_schema, m.target_schema} == {first, second}
        )

    @_locked
    def delete_mappings(
        self, source: Optional[str] = None, target: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> int:
        """Delete mappings matching the given filters; returns the number removed."""
        clauses = []
        parameters: List[object] = []
        if source is not None:
            clauses.append("source_schema = ?")
            parameters.append(source)
        if target is not None:
            clauses.append("target_schema = ?")
            parameters.append(target)
        if origin is not None:
            clauses.append("origin = ?")
            parameters.append(origin)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        ids = [
            int(r[0])
            for r in self._connection.execute(
                f"SELECT id FROM mappings{where}", parameters
            ).fetchall()
        ]
        if not ids:
            return 0
        placeholders = ",".join("?" for _ in ids)
        self._connection.execute(
            f"DELETE FROM mapping_rows WHERE mapping_id IN ({placeholders})", ids
        )
        cursor = self._connection.execute(
            f"DELETE FROM mappings WHERE id IN ({placeholders})", ids
        )
        self._connection.commit()
        return cursor.rowcount

    @_locked
    def mapping_count(self, origin: Optional[str] = None) -> int:
        """The number of stored mappings, optionally restricted by origin."""
        if origin is None:
            row = self._connection.execute("SELECT COUNT(*) FROM mappings").fetchone()
        else:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM mappings WHERE origin = ?", (origin,)
            ).fetchone()
        return int(row[0])

    # -- strategies ----------------------------------------------------------------------------

    @_locked
    def store_strategy(
        self, name: str, strategy: "MatchStrategy | str", replace: bool = True
    ) -> None:
        """Persist a named strategy (an object or a declarative spec string).

        Matcher references are stored by *name*: a strategy carrying
        pre-configured matcher instances reloads as library-default instances.
        """
        from repro.core.strategy import MatchStrategy

        if isinstance(strategy, str):
            strategy = MatchStrategy.parse(strategy)
        if not name:
            raise RepositoryError("a stored strategy needs a non-empty name")
        document = json.dumps(strategy.to_dict(), sort_keys=True)
        spec = strategy.to_spec()
        try:
            # Validate at write time that the document reloads: a strategy
            # whose sub-strategies have no textual form (e.g. a Weighted
            # aggregation) must fail here, not on every later listing/load.
            MatchStrategy.from_dict(json.loads(document))
        except ComaError as error:
            raise RepositoryError(
                f"strategy {name!r} cannot be stored: its serialised form does "
                f"not reload ({error})"
            ) from error
        try:
            if replace:
                self._connection.execute(
                    "INSERT OR REPLACE INTO strategies (name, spec, document) "
                    "VALUES (?, ?, ?)",
                    (name, spec, document),
                )
            else:
                self._connection.execute(
                    "INSERT INTO strategies (name, spec, document) VALUES (?, ?, ?)",
                    (name, spec, document),
                )
        except sqlite3.IntegrityError as error:
            raise RepositoryError(f"strategy {name!r} is already stored") from error
        self._connection.commit()

    @_locked
    def load_strategy(
        self, name: str, library: Optional["MatcherLibrary"] = None
    ) -> "MatchStrategy":
        """Load a stored strategy by name (optionally validated against ``library``)."""
        from repro.core.strategy import MatchStrategy

        row = self._connection.execute(
            "SELECT document FROM strategies WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise RepositoryError(f"no strategy named {name!r} in the repository")
        return MatchStrategy.from_dict(json.loads(row[0]), library=library)

    @_locked
    def strategy_spec(self, name: str) -> str:
        """The compact spec form of a stored strategy (for listings)."""
        row = self._connection.execute(
            "SELECT spec FROM strategies WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise RepositoryError(f"no strategy named {name!r} in the repository")
        return row[0]

    @_locked
    def strategy_names(self) -> Tuple[str, ...]:
        """Names of all stored strategies, sorted."""
        rows = self._connection.execute(
            "SELECT name FROM strategies ORDER BY name"
        ).fetchall()
        return tuple(r[0] for r in rows)

    @_locked
    def has_strategy(self, name: str) -> bool:
        """True if a strategy with this name is stored."""
        row = self._connection.execute(
            "SELECT 1 FROM strategies WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    @_locked
    def delete_strategy(self, name: str) -> bool:
        """Delete a stored strategy; returns True if one was removed."""
        cursor = self._connection.execute("DELETE FROM strategies WHERE name = ?", (name,))
        self._connection.commit()
        return cursor.rowcount > 0

    # -- similarity cubes ----------------------------------------------------------------------

    @_locked
    def store_cube(self, task: str, cube: SimilarityCube, replace: bool = True) -> None:
        """Persist the non-zero entries of a similarity cube under a task label."""
        if replace:
            self._connection.execute("DELETE FROM cube_entries WHERE task = ?", (task,))
        self._connection.executemany(
            "INSERT INTO cube_entries (task, matcher, source_path, target_path, similarity) "
            "VALUES (?, ?, ?, ?, ?)",
            [(task, matcher, s, t, v) for matcher, s, t, v in cube.as_records()],
        )
        self._connection.commit()

    @_locked
    def load_cube_entries(
        self, task: str, matcher: Optional[str] = None
    ) -> Tuple[Tuple[str, str, str, float], ...]:
        """The stored ``(matcher, source path, target path, similarity)`` rows of a task."""
        if matcher is None:
            rows = self._connection.execute(
                "SELECT matcher, source_path, target_path, similarity FROM cube_entries "
                "WHERE task = ? ORDER BY matcher, source_path, target_path",
                (task,),
            ).fetchall()
        else:
            rows = self._connection.execute(
                "SELECT matcher, source_path, target_path, similarity FROM cube_entries "
                "WHERE task = ? AND matcher = ? ORDER BY source_path, target_path",
                (task, matcher),
            ).fetchall()
        return tuple((r[0], r[1], r[2], float(r[3])) for r in rows)

    @_locked
    def cube_tasks(self) -> Tuple[str, ...]:
        """All task labels for which cube entries are stored."""
        rows = self._connection.execute(
            "SELECT DISTINCT task FROM cube_entries ORDER BY task"
        ).fetchall()
        return tuple(r[0] for r in rows)
