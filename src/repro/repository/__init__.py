"""The SQLite-backed repository for schemas, mappings and similarity cubes,
plus the content-addressed persistent similarity store."""

from repro.repository.repository import Repository
from repro.repository.serialization import (
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from repro.repository.store import (
    SimilarityStore,
    cube_store_key,
    match_config_digest,
    schema_content_digest,
    tokenizer_digest,
)

__all__ = [
    "Repository",
    "SimilarityStore",
    "cube_store_key",
    "match_config_digest",
    "schema_content_digest",
    "schema_from_dict",
    "schema_from_json",
    "schema_to_dict",
    "schema_to_json",
    "tokenizer_digest",
]
