"""The SQLite-backed repository for schemas, mappings and similarity cubes."""

from repro.repository.repository import Repository
from repro.repository.serialization import (
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)

__all__ = [
    "Repository",
    "schema_from_dict",
    "schema_from_json",
    "schema_to_dict",
    "schema_to_json",
]
