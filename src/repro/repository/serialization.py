"""Loss-less (de)serialisation of schema graphs for the repository.

Schemas are stored as a JSON document that records every element, every
containment link and every referential link explicitly, so shared fragments
and multiple parents survive a round trip exactly -- which matters because the
reuse matchers join stored mappings on dotted *path* strings and those paths
must be reproducible.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.exceptions import RepositoryError
from repro.model.element import ElementKind, LinkKind, SchemaElement
from repro.model.schema import Schema

#: Version tag embedded in serialised documents for forward compatibility.
FORMAT_VERSION = 1


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialise a schema graph into a plain dict."""
    elements = schema.elements
    local_ids = {element.element_id: index for index, element in enumerate(elements)}
    element_records: List[Dict[str, Any]] = []
    for element in elements:
        element_records.append(
            {
                "id": local_ids[element.element_id],
                "name": element.name,
                "kind": element.kind.value,
                "source_type": element.source_type,
                "documentation": element.documentation,
            }
        )
    containment: List[List[int]] = []
    for element in elements:
        for child in schema.children(element):
            containment.append([local_ids[element.element_id], local_ids[child.element_id]])
    references: List[List[int]] = []
    for link in schema.references():
        references.append([local_ids[link.source.element_id], local_ids[link.target.element_id]])
    return {
        "version": FORMAT_VERSION,
        "name": schema.name,
        "namespace": schema.namespace,
        "elements": element_records,
        "containment": containment,
        "references": references,
    }


def schema_to_json(schema: Schema) -> str:
    """Serialise a schema graph to a JSON string."""
    return json.dumps(schema_to_dict(schema), sort_keys=True)


def schema_from_dict(document: Dict[str, Any]) -> Schema:
    """Rebuild a schema graph from its serialised dict form."""
    try:
        name = document["name"]
        element_records = document["elements"]
        containment = document["containment"]
        references = document.get("references", [])
    except KeyError as error:
        raise RepositoryError(f"serialised schema document is missing key {error}") from error

    schema = Schema(name, namespace=document.get("namespace"))
    elements_by_local_id: Dict[int, SchemaElement] = {}
    for record in element_records:
        local_id = int(record["id"])
        if local_id == 0:
            # The root element is created by the Schema constructor.
            elements_by_local_id[0] = schema.root
            continue
        elements_by_local_id[local_id] = schema.add_detached_element(
            record["name"],
            kind=ElementKind(record.get("kind", ElementKind.GENERIC.value)),
            source_type=record.get("source_type"),
            documentation=record.get("documentation"),
        )
    for parent_id, child_id in containment:
        schema.add_link(
            elements_by_local_id[int(parent_id)],
            elements_by_local_id[int(child_id)],
            LinkKind.CONTAINMENT,
        )
    for source_id, target_id in references:
        schema.add_link(
            elements_by_local_id[int(source_id)],
            elements_by_local_id[int(target_id)],
            LinkKind.REFERENCE,
        )
    return schema


def schema_from_json(text: str) -> Schema:
    """Rebuild a schema graph from its JSON form."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise RepositoryError(f"invalid serialised schema JSON: {error}") from error
    return schema_from_dict(document)
