"""The persistent similarity store: content-addressed cross-process reuse.

COMA's headline idea beyond matcher combination is the *reuse of previous
match results* (Section 5): similarity cubes live in a repository so later
match tasks start from work already done.  The in-process session caches
(PR 2) realise that within one process; this module extends it across process
restarts.  A :class:`SimilarityStore` is a small SQLite database holding

* **similarity cubes** -- the matcher-specific ``k x m x n`` layers of a match
  execution, stored under an explicit **layer-dtype contract**: ``float64``
  (the default) keeps a reloaded cube bit-identical to the computed one
  (mappings derived from it are therefore byte-identical to the uncached
  path), while ``float32`` and quantized ``uint16`` (similarities live in
  ``[0, 1]``; scale :data:`UINT16_SCALE`, maximum absolute round-trip error
  :data:`UINT16_MAX_ERROR`) trade that byte-identity for 2x / 4x smaller
  blobs.  Every blob carries a versioned header recording its dtype, so one
  store file remains readable whatever dtype later sessions configure;
* **token artifacts** -- the name -> token-list memo feeding
  :class:`~repro.engine.profiles.PathSetProfile`, so a fresh process skips
  re-tokenizing names it has seen in any earlier run.

Stacks at or above the store's ``mmap_threshold`` move out of SQLite into a
side file next to the database (``<path>.blobs/<key>.cube``) and are read
back through ``np.memmap`` in copy-on-write mode: pages fault in lazily, and
the mapped array is writable without touching the file.  Inline blobs are
copied into a writable buffer at the load boundary, so every loaded cube --
whatever its tier -- can be mutated in place by downstream code.

Everything is **content-addressed**: cube keys are SHA-256 digests of
``(source schema content, target schema content, matcher usage, linguistic
configuration)`` and token rows are keyed by the tokenizer configuration
digest.  There is no invalidation protocol -- changing a schema, the matcher
usage, the synonym dictionary, the abbreviation table or the
type-compatibility table changes the digest, and the store simply misses.
Stale reads are impossible by construction.

Writes go through a background writer thread (:meth:`SimilarityStore.flush`
drains it), so a match request never waits on the disk; reads happen inline
on the caller thread under the store's lock.  One store may be shared by many
sessions and threads (the service attaches one store to every pool shard).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import queue
import sqlite3
import struct
import threading
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro import faults

from repro.auxiliary.synonyms import SynonymDictionary, TermRelationship
from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix
from repro.exceptions import RepositoryError
from repro.linguistic.tokenizer import NameTokenizer
from repro.model.datatypes import TypeCompatibilityTable
from repro.model.schema import Schema
from repro.repository.serialization import schema_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matchers.registry import MatcherLibrary
    from repro.model.path import SchemaPath

#: Bump when the stored representation changes; part of every digest, so old
#: stores age out instead of being misread.  Version 2 introduced the
#: per-blob dtype header and the external (mmap) blob tier.
STORE_FORMAT_VERSION = 2

#: The cube storage dtypes a store accepts, smallest-loss first.
CUBE_DTYPES = ("float64", "float32", "uint16")

#: Quantization scale of the ``uint16`` tier (similarities live in [0, 1]).
UINT16_SCALE = 65535

#: Maximum absolute error of a ``uint16`` round trip: half a quantization
#: step, ``1 / 131070`` (~7.63e-6) -- comfortably inside the 1e-4 tolerance
#: the compact tiers are tested against.
UINT16_MAX_ERROR = 1.0 / (2 * UINT16_SCALE)

#: Inline blobs at or above this many payload bytes move to the mmap-backed
#: side-file tier (1 MiB by default).
DEFAULT_MMAP_THRESHOLD = 1 << 20

#: Versioned per-blob header: magic, dtype code, storage flag, 2 spare bytes,
#: crc32 of the payload (the inline bytes after the header, or the side
#: file's full contents).  ``CBH3`` added the checksum; legacy ``CBH2`` blobs
#: remain readable -- they simply skip verification.
_BLOB_HEADER = struct.Struct(">4sBB2xI")
_BLOB_MAGIC = b"CBH3"
_LEGACY_HEADER = struct.Struct(">4sBB2x")
_LEGACY_MAGIC = b"CBH2"
_DTYPE_CODES = {"float64": 0, "float32": 1, "uint16": 2}
_CODE_DTYPES = {code: name for name, code in _DTYPE_CODES.items()}
_NUMPY_DTYPES = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
    "uint16": np.dtype(np.uint16),
}
_STORAGE_INLINE = 0
_STORAGE_EXTERNAL = 1


class _CorruptBlob(Exception):
    """Internal: one stored blob failed integrity checks.

    Distinguishes *corruption* (checksum mismatch, truncated payload, bad
    header, vanished side file -- evidence of a torn write or bit rot, so the
    row is quarantined and counted) from the ordinary miss path (key absent,
    database briefly unavailable).  Never escapes :class:`SimilarityStore`.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason

_STORE_DDL = """
CREATE TABLE IF NOT EXISTS cubes (
    key            TEXT PRIMARY KEY,
    source_digest  TEXT NOT NULL,
    target_digest  TEXT NOT NULL,
    matchers       TEXT NOT NULL,
    config_digest  TEXT NOT NULL,
    matcher_names  TEXT NOT NULL,
    shape          TEXT NOT NULL,
    data           BLOB NOT NULL,
    dtype          TEXT NOT NULL DEFAULT 'float64',
    payload_bytes  INTEGER NOT NULL DEFAULT 0,
    external       INTEGER NOT NULL DEFAULT 0,
    created_at     REAL NOT NULL DEFAULT (julianday('now'))
);
CREATE TABLE IF NOT EXISTS tokens (
    config_digest  TEXT NOT NULL,
    name           TEXT NOT NULL,
    tokens         TEXT NOT NULL,
    PRIMARY KEY (config_digest, name)
);
CREATE TABLE IF NOT EXISTS counters (
    name   TEXT PRIMARY KEY,
    value  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS subtrees (
    schema_digest   TEXT PRIMARY KEY,
    digest_version  INTEGER NOT NULL,
    signatures      TEXT NOT NULL,
    created_at      REAL NOT NULL DEFAULT (julianday('now'))
);
"""

def encode_stack(stack: np.ndarray, dtype: str) -> bytes:
    """Encode a float64 cube stack into the given storage dtype's payload.

    ``float64`` is a raw byte copy (bit-identical round trip); ``float32``
    rounds to single precision; ``uint16`` quantizes ``[0, 1]`` similarities
    to ``round(value * UINT16_SCALE)`` (values are clipped into the unit
    interval first, so out-of-range cells saturate instead of wrapping).
    """
    array = np.ascontiguousarray(stack, dtype=np.float64)
    if dtype == "float64":
        return array.tobytes()
    if dtype == "float32":
        return array.astype(np.float32).tobytes()
    if dtype == "uint16":
        clipped = np.clip(array, 0.0, 1.0)
        return np.round(clipped * UINT16_SCALE).astype(np.uint16).tobytes()
    raise RepositoryError(f"unknown cube dtype {dtype!r}, expected one of {CUBE_DTYPES}")


def decode_stack(payload, dtype: str, shape: Tuple[int, ...]) -> np.ndarray:
    """Decode a stored payload back into a *writable* float64 stack.

    The compact dtypes decode through ``astype`` (which copies), and the
    ``float64`` path copies the payload into a ``bytearray`` first -- either
    way the result is safely mutable, never a read-only view into the blob.

    >>> stack = np.array([[[0.25, 1.0]]])
    >>> decoded = decode_stack(encode_stack(stack, "uint16"), "uint16", (1, 1, 2))
    >>> bool(np.max(np.abs(decoded - stack)) <= UINT16_MAX_ERROR)
    True
    """
    if dtype == "float64":
        return np.frombuffer(bytearray(payload), dtype=np.float64).reshape(shape)
    if dtype == "float32":
        raw = np.frombuffer(payload, dtype=np.float32)
        return raw.astype(np.float64).reshape(shape)
    if dtype == "uint16":
        raw = np.frombuffer(payload, dtype=np.uint16)
        return (raw.astype(np.float64) / UINT16_SCALE).reshape(shape)
    raise RepositoryError(f"unknown cube dtype {dtype!r}, expected one of {CUBE_DTYPES}")


def _sha256(document: object) -> str:
    """The SHA-256 hex digest of a canonical-JSON-serialisable document."""
    text = json.dumps(document, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def schema_content_digest(schema: Schema) -> str:
    """A stable digest of a schema's *content* (names, types, links).

    Two schemas with identical content -- e.g. the same file imported in two
    different processes -- digest identically, which is what lets a restarted
    service hit cubes stored by its predecessor.  The digest is recomputed
    from the current graph on every call (schemas are mutable); callers on a
    hot path memoise it with a lifetime they control -- the session keeps a
    per-instance cache dropped by ``clear_caches()``, so the documented
    remedy after in-place mutation re-addresses schemas too.
    """
    return _sha256([STORE_FORMAT_VERSION, schema_to_json(schema)])


def tokenizer_digest(tokenizer: NameTokenizer) -> str:
    """A stable digest of a tokenizer's configuration (flags + abbreviations)."""
    abbreviations = sorted(
        (key, list(expansion)) for key, expansion in tokenizer.abbreviations.items()
    )
    return _sha256(
        [
            STORE_FORMAT_VERSION,
            bool(tokenizer.expands_abbreviations),
            bool(tokenizer.drops_digits),
            abbreviations,
        ]
    )


def library_digest(library: "MatcherLibrary") -> str:
    """A digest of a matcher library's registrations (names, kinds, factories).

    Factories are identified by their ``module.qualname``: re-registering a
    name with a different factory (including any locally defined function or
    lambda) changes the digest, so two processes whose libraries resolve the
    same matcher names differently do not share store entries.  Factory
    *closure state* is invisible to this digest -- which is why sessions on
    custom libraries additionally bypass the store altogether and only the
    (unmutated) default library is fully content-addressed.
    """
    entries = sorted(
        (
            info.name.lower(),
            info.kind,
            f"{getattr(info.factory, '__module__', '?')}."
            f"{getattr(info.factory, '__qualname__', repr(info.factory))}",
        )
        for info in library.entries()
    )
    return _sha256(entries)


def match_config_digest(
    tokenizer: NameTokenizer,
    synonyms: SynonymDictionary,
    type_compatibility: TypeCompatibilityTable,
    library: Optional["MatcherLibrary"] = None,
) -> str:
    """A stable digest of every linguistic/auxiliary input a cube depends on.

    Cached cube values are a pure function of (schema contents, matcher
    usage, this configuration); any change here -- a new synonym pair, an
    adjusted relationship similarity, an abbreviation entry, a type
    compatibility override, a re-registered library matcher -- changes the
    digest and therefore invalidates all previously stored cubes for the new
    configuration.
    """
    synonym_pairs = sorted(
        (pair[0], pair[1], relationship.value) for pair, relationship in synonyms.items()
    )
    relationship_values = [
        (relationship.value, synonyms.relationship_similarity(relationship))
        for relationship in TermRelationship
    ]
    type_rows = sorted(
        (a.value, b.value, value) for a, b, value in type_compatibility.items()
    )
    return _sha256(
        [
            tokenizer_digest(tokenizer),
            synonym_pairs,
            relationship_values,
            type_rows,
            library_digest(library) if library is not None else None,
        ]
    )


def cube_store_key(
    source_digest: str,
    target_digest: str,
    matcher_usage: Sequence[str],
    config_digest: str,
) -> str:
    """The content address of one (schema pair, matcher usage, config) cube."""
    return _sha256(
        [source_digest, target_digest, [str(name) for name in matcher_usage], config_digest]
    )


class SimilarityStore:
    """A content-addressed SQLite store for similarity cubes and token artifacts.

    Parameters
    ----------
    path:
        The database file (``":memory:"`` works for tests, though an
        in-memory store obviously does not survive a restart).
    writer:
        Run the background writer thread (default).  With ``False`` every
        ``store_*_async`` call writes inline -- useful for deterministic
        tests.
    dtype:
        The storage dtype for cubes **written** by this store: ``"float64"``
        (default, bit-identical round trips), ``"float32"`` or quantized
        ``"uint16"`` (max round-trip error :data:`UINT16_MAX_ERROR`).  Reads
        honour the dtype recorded in each blob's header, so a store file
        written under one dtype stays readable under any other -- but a
        session requiring byte-identical warm restarts must only attach
        store files written as ``float64``.
    mmap_threshold:
        Payloads of at least this many bytes are written to an mmap-backed
        side file (``<path>.blobs/<key>.cube``) instead of an inline SQLite
        blob, and read back lazily through ``np.memmap`` in copy-on-write
        mode.  ``None`` disables the tier (in-memory stores always inline).
    readonly:
        Open for inspection only (``coma stats --store``): the file is
        opened ``mode=ro`` (a missing path fails instead of creating an
        empty database), no DDL or migrations run, and the open validates
        that the file actually contains the store tables -- pointing the
        flag at some *other* SQLite database raises
        :class:`~repro.exceptions.RepositoryError` instead of mutating it or
        reporting zeros.  Implies ``writer=False``.

    Thread safety: one internal lock serialises database access; reads run on
    the caller thread, writes on the writer thread.  The store may be shared
    by any number of sessions.

    Examples
    --------
    >>> store = SimilarityStore(":memory:")
    >>> store.cube_count()
    0
    >>> store.close()
    """

    #: How long a connection waits on another process's write lock before
    #: giving up.  30s comfortably covers a slow checkpoint; the store's read
    #: paths additionally degrade lock errors to cache misses, so this bound
    #: is a latency ceiling, not a correctness knob.
    BUSY_TIMEOUT_SECONDS = 30.0

    def __init__(
        self,
        path: str,
        writer: bool = True,
        dtype: str = "float64",
        mmap_threshold: Optional[int] = DEFAULT_MMAP_THRESHOLD,
        readonly: bool = False,
    ):
        if dtype not in CUBE_DTYPES:
            raise RepositoryError(
                f"unknown cube dtype {dtype!r}, expected one of {CUBE_DTYPES}"
            )
        if readonly and path == ":memory:":
            raise RepositoryError(
                "a read-only store needs an existing database file, "
                "not ':memory:'"
            )
        self._path = path
        self._dtype = dtype
        self._mmap_threshold = mmap_threshold
        self._readonly = bool(readonly)
        self._lock = threading.RLock()
        try:
            if readonly:
                # An inspection-only open (`coma stats --store`) must neither
                # create a database out of a typo'd path nor run DDL against
                # a file that is *some other* SQLite database -- mode=ro
                # fails on a missing file and guarantees zero mutation.
                self._connection = sqlite3.connect(
                    f"file:{path}?mode=ro",
                    uri=True,
                    check_same_thread=False,
                    timeout=self.BUSY_TIMEOUT_SECONDS,
                )
            else:
                self._connection = sqlite3.connect(
                    path, check_same_thread=False, timeout=self.BUSY_TIMEOUT_SECONDS
                )
            # One store file is routinely shared by many *processes* (every
            # worker of `coma serve --backend process` opens its own
            # connection).  WAL lets those readers proceed while a writer
            # commits -- the rollback-journal default would instead escalate
            # concurrent access into SQLITE_BUSY storms (and its
            # writer-vs-reader lock upgrade can deadlock outright, which a
            # busy timeout only converts into a 30s stall).  The busy timeout
            # then serialises concurrent writers.  synchronous=NORMAL is the
            # documented WAL pairing: commits stop waiting on fsync, and a
            # power-cut loses at most the final commits of a *cache*.
            self._connection.execute(
                f"PRAGMA busy_timeout = {int(self.BUSY_TIMEOUT_SECONDS * 1000)}"
            )
            if readonly:
                # No DDL, no migrations: verify the file actually is a
                # similarity store instead of silently reporting zeros over
                # (or worse, later mutating) an unrelated database.
                present = {
                    row[0]
                    for row in self._connection.execute(
                        "SELECT name FROM sqlite_master WHERE type = 'table'"
                    )
                }
                missing = {"cubes", "tokens", "counters"} - present
                if missing:
                    self._connection.close()
                    raise RepositoryError(
                        f"{path!r} is not a similarity store (missing "
                        f"table(s): {', '.join(sorted(missing))})"
                    )
            else:
                if path != ":memory:":
                    try:
                        self._connection.execute("PRAGMA journal_mode = WAL")
                        self._connection.execute("PRAGMA synchronous = NORMAL")
                    except sqlite3.Error:
                        # Some filesystems cannot memory-map the WAL side files;
                        # the store still works, just with coarser locking.
                        pass
                self._connection.executescript(_STORE_DDL)
                # Files created before the dtype contract lack the newer columns
                # (their rows are unreachable anyway -- the format version is in
                # every digest -- but the occupancy queries still touch them).
                for migration in (
                    "ALTER TABLE cubes ADD COLUMN dtype TEXT NOT NULL DEFAULT 'float64'",
                    "ALTER TABLE cubes ADD COLUMN payload_bytes INTEGER NOT NULL DEFAULT 0",
                    "ALTER TABLE cubes ADD COLUMN external INTEGER NOT NULL DEFAULT 0",
                ):
                    with contextlib.suppress(sqlite3.OperationalError):
                        self._connection.execute(migration)
                self._connection.commit()
        except sqlite3.Error as error:
            # A corrupt file, a non-SQLite file passed by mistake, or an
            # unwritable path must surface as a clean library error, not a
            # raw sqlite traceback.
            raise RepositoryError(
                f"cannot open similarity store {path!r}: {error}"
            ) from error
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0
        self._quarantined = 0
        self._closed = False
        self._queue: "queue.Queue[Optional[Tuple]]" = queue.Queue()
        self._writer: Optional[threading.Thread] = None
        if writer and not readonly:
            self._writer = threading.Thread(
                target=self._drain_writes, name="similarity-store-writer", daemon=True
            )
            self._writer.start()

    # -- lifecycle -------------------------------------------------------------

    @property
    def path(self) -> str:
        """The database path."""
        return self._path

    @property
    def dtype(self) -> str:
        """The storage dtype new cubes are written with."""
        return self._dtype

    def _side_path(self, key: str) -> str:
        """The side file of one external (mmap-tier) cube payload."""
        return os.path.join(f"{self._path}.blobs", f"{key}.cube")

    def flush(self) -> None:
        """Block until every queued asynchronous write has reached the database."""
        with self._lock:
            if self._closed:
                return
        if self._writer is not None:
            self._queue.join()

    def close(self) -> None:
        """Flush pending writes, persist counters and close the database."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._writer is not None:
            self._queue.join()
            self._queue.put(None)
            self._writer.join()
        self._persist_counters()
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "SimilarityStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- cubes -----------------------------------------------------------------

    def load_cube(
        self,
        key: str,
        source_paths: Sequence["SchemaPath"],
        target_paths: Sequence["SchemaPath"],
    ) -> Optional[SimilarityCube]:
        """The stored cube under ``key``, rebuilt over the caller's path axes.

        The caller's path sets come from a schema whose *content* digest is
        part of ``key``, so their order and cardinality match the arrays that
        were stored; any unusable row -- a shape mismatch, a truncated blob,
        a missing or short side file, an unknown header, a corrupt or
        concurrently closed database -- is treated as a miss rather than an
        error (persistence is an optimisation; a failed read must degrade to
        recomputation, never fail the match).  Returns ``None`` when nothing
        (usable) is stored.

        Blobs written under the ``CBH3`` header additionally verify a crc32
        checksum over the payload (inline bytes or side-file contents); a
        mismatch -- bit rot, a torn write, a tampered file -- quarantines the
        row (deleted, side file unlinked) and counts it in
        ``info()["corrupt"]`` / ``["quarantined"]`` before degrading to the
        same miss-and-recompute path.  Legacy ``CBH2`` blobs stay readable
        without verification.

        The returned stack is decoded to float64 per the blob header's dtype
        and is always *writable*: inline payloads are copied out of the blob,
        external payloads are mapped copy-on-write.
        """
        try:
            faults.fault_point("store.load", key=key)
            with self._lock:
                row = self._connection.execute(
                    "SELECT matcher_names, shape, data FROM cubes WHERE key = ?", (key,)
                ).fetchone()
            if row is not None:
                matcher_names: List[str] = json.loads(row[0])
                shape = tuple(json.loads(row[1]))
                expected = (len(matcher_names), len(source_paths), len(target_paths))
                if shape != expected:
                    row = None
                else:
                    stack = self._decode_blob(key, row[2], shape)
                    if stack is None:
                        row = None
        except _CorruptBlob as corrupt:
            self._quarantine(key, corrupt.reason)
            row = None
        except (sqlite3.Error, OSError, ValueError, TypeError, json.JSONDecodeError):
            row = None
        if row is None:
            with self._lock:
                self._misses += 1
            return None
        layers = [
            (name, SimilarityMatrix(source_paths, target_paths, stack[index]))
            for index, name in enumerate(matcher_names)
        ]
        with self._lock:
            self._hits += 1
        return SimilarityCube.from_layers(source_paths, target_paths, layers)

    def _decode_blob(
        self, key: str, blob: bytes, shape: Tuple[int, ...]
    ) -> Optional[np.ndarray]:
        """Decode one cube blob (header + inline payload, or side-file ref).

        Raises :class:`_CorruptBlob` on integrity evidence -- a short or
        unrecognised header, a crc32 mismatch, a missing / short / oversized
        side file, a payload whose byte count cannot hold the recorded shape.
        """
        blob = faults.fault_bytes("store.blob.read", bytes(blob), key=key)
        crc: Optional[int] = None
        if len(blob) >= _BLOB_HEADER.size:
            magic, dtype_code, storage, crc = _BLOB_HEADER.unpack_from(blob)
            header_size = _BLOB_HEADER.size
            if magic != _BLOB_MAGIC:
                crc = None
        if crc is None:
            # Not a CBH3 blob: either a legacy CBH2 row (readable, no
            # checksum) or garbage (quarantined).
            if len(blob) < _LEGACY_HEADER.size:
                raise _CorruptBlob("blob shorter than any known header")
            magic, dtype_code, storage = _LEGACY_HEADER.unpack_from(blob)
            header_size = _LEGACY_HEADER.size
            if magic != _LEGACY_MAGIC:
                raise _CorruptBlob(f"unknown blob magic {bytes(magic)!r}")
        if dtype_code not in _CODE_DTYPES:
            raise _CorruptBlob(f"unknown blob dtype code {dtype_code}")
        dtype = _CODE_DTYPES[dtype_code]
        if storage == _STORAGE_INLINE:
            payload = blob[header_size:]
            if crc is not None and zlib.crc32(payload) != crc:
                raise _CorruptBlob("inline payload crc32 mismatch")
            try:
                return decode_stack(payload, dtype, shape)
            except ValueError as error:
                raise _CorruptBlob(f"inline payload undecodable: {error}") from error
        numpy_dtype = _NUMPY_DTYPES[dtype]
        side_path = self._side_path(key)
        expected_bytes = int(np.prod(shape)) * numpy_dtype.itemsize
        try:
            actual_bytes = os.path.getsize(side_path)
        except OSError as error:
            raise _CorruptBlob(f"side file unreadable: {error}") from error
        if actual_bytes != expected_bytes:
            raise _CorruptBlob(
                f"side file holds {actual_bytes} bytes, expected {expected_bytes}"
            )
        # mode="c" (copy-on-write): pages fault in lazily and writes land in
        # private memory, so the mapped stack is writable like any other.
        mapped = np.memmap(side_path, dtype=numpy_dtype, mode="c")
        if crc is not None:
            # Verification necessarily pages the whole file in -- the
            # integrity guarantee costs the mmap tier its laziness on first
            # read (documented trade-off; pages stay resident for the reuse
            # that follows).  The armed-plan branch materialises bytes only
            # for injection; the production path checksums the mapping
            # buffer directly, copy-free.
            if faults.active_plan() is not None:
                verified = faults.fault_bytes(
                    "store.side.read", mapped.tobytes(), key=key
                )
            else:
                verified = mapped
            if zlib.crc32(verified) != crc:
                raise _CorruptBlob("side file crc32 mismatch")
        if dtype == "float64":
            return mapped.reshape(shape)
        return decode_stack(mapped, dtype, shape)

    def _quarantine(self, key: str, reason: str) -> None:
        """Remove one corrupt cube row (and side file) and count the event.

        Read-only stores only count -- the evidence stays on disk for the
        operator.  Quarantine failures (a locked database) are swallowed: the
        corrupt row will simply be re-detected and re-quarantined on the next
        read.
        """
        with self._lock:
            self._corrupt += 1
        if self._readonly:
            return
        removed = False
        with contextlib.suppress(sqlite3.Error):
            with self._lock:
                self._connection.execute("DELETE FROM cubes WHERE key = ?", (key,))
                self._connection.commit()
                removed = True
        with contextlib.suppress(OSError):
            os.remove(self._side_path(key))
        if removed:
            with self._lock:
                self._quarantined += 1

    def store_cube(
        self,
        key: str,
        cube: SimilarityCube,
        source_digest: str,
        target_digest: str,
        matcher_usage: Sequence[str],
        config_digest: str,
    ) -> None:
        """Persist a cube under its content address (synchronously).

        The stack is encoded with the store's configured dtype; payloads at
        or above the mmap threshold land in a side file (written atomically
        via a temporary name), with only the header kept in the blob column.
        The header records the payload's crc32 *before* the bytes travel to
        disk, so anything that mangles them en route or at rest -- including
        the ``store.blob.write`` fault seam -- is caught on the next read.
        """
        faults.fault_point("store.write", key=key)
        stack = cube.as_array()  # k x m x n float64, C-order
        payload = encode_stack(stack, self._dtype)
        external = (
            self._path != ":memory:"
            and self._mmap_threshold is not None
            and len(payload) >= self._mmap_threshold
        )
        header = _BLOB_HEADER.pack(
            _BLOB_MAGIC,
            _DTYPE_CODES[self._dtype],
            _STORAGE_EXTERNAL if external else _STORAGE_INLINE,
            zlib.crc32(payload),
        )
        payload = faults.fault_bytes("store.blob.write", payload, key=key)
        side_path = self._side_path(key)
        if external:
            os.makedirs(os.path.dirname(side_path), exist_ok=True)
            temporary = f"{side_path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(temporary, "wb") as handle:
                handle.write(payload)
            os.replace(temporary, side_path)
            blob = header
        else:
            blob = header + payload
        record = (
            key,
            source_digest,
            target_digest,
            json.dumps(list(matcher_usage)),
            config_digest,
            json.dumps(list(cube.matcher_names)),
            json.dumps(list(stack.shape)),
            blob,
            self._dtype,
            len(payload),
            int(external),
        )
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO cubes (key, source_digest, target_digest, "
                "matchers, config_digest, matcher_names, shape, data, dtype, "
                "payload_bytes, external) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                record,
            )
            self._connection.commit()
            self._writes += 1
        if not external:
            # An earlier write of this key may have used the external tier;
            # drop its now-orphaned side file.
            with contextlib.suppress(OSError):
                os.remove(side_path)

    def store_cube_async(self, *args, **kwargs) -> None:
        """Queue :meth:`store_cube` onto the writer thread (inline without one)."""
        self._submit(("cube", args, kwargs))

    def cube_count(self) -> int:
        """The number of stored cubes."""
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) FROM cubes").fetchone()
        return int(row[0])

    def prune_cubes(self, max_cubes: int) -> int:
        """Drop the oldest cubes beyond ``max_cubes``; returns the number removed.

        Content-addressed entries never go stale, so eviction is purely a
        disk-budget decision; oldest-first matches the session caches'
        insertion-order policy.  Pruning reclaims disk for real: external
        side files of the dropped cubes are unlinked and the database is
        ``VACUUM``-ed (SQLite's ``DELETE`` alone only marks pages free), so
        the file size genuinely shrinks.
        """
        if max_cubes < 0:
            raise RepositoryError(f"max_cubes must be >= 0, got {max_cubes}")
        with self._lock:
            doomed = self._connection.execute(
                "SELECT key, external FROM cubes WHERE key NOT IN ("
                "SELECT key FROM cubes ORDER BY created_at DESC, key LIMIT ?)",
                (max_cubes,),
            ).fetchall()
            cursor = self._connection.execute(
                "DELETE FROM cubes WHERE key NOT IN ("
                "SELECT key FROM cubes ORDER BY created_at DESC, key LIMIT ?)",
                (max_cubes,),
            )
            self._connection.commit()
            if cursor.rowcount:
                # VACUUM rewrites the main database file without the freed
                # pages; the checkpoint then truncates the WAL side file.
                # Both are best-effort -- a locked or exotic filesystem only
                # costs the reclamation, never the prune itself.
                with contextlib.suppress(sqlite3.Error):
                    self._connection.execute("VACUUM")
                    self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        for key, external in doomed:
            if external:
                with contextlib.suppress(OSError):
                    os.remove(self._side_path(key))
        return cursor.rowcount

    # -- token artifacts -------------------------------------------------------

    def load_tokens(
        self, config_digest: str, limit: Optional[int] = 200_000
    ) -> Dict[str, Tuple[str, ...]]:
        """The stored name -> token-tuple memo of one tokenizer configuration.

        ``limit`` bounds the rows loaded into memory (a long-lived store can
        accumulate more names than one session wants to hold).
        """
        statement = "SELECT name, tokens FROM tokens WHERE config_digest = ?"
        parameters: Tuple = (config_digest,)
        if limit is not None:
            statement += " LIMIT ?"
            parameters = (config_digest, int(limit))
        with self._lock:
            rows = self._connection.execute(statement, parameters).fetchall()
        return {name: tuple(json.loads(tokens)) for name, tokens in rows}

    def store_tokens(
        self, config_digest: str, items: Sequence[Tuple[str, Sequence[str]]]
    ) -> None:
        """Persist name -> token-list pairs for one tokenizer configuration."""
        if not items:
            return
        rows = [
            (config_digest, name, json.dumps(list(tokens))) for name, tokens in items
        ]
        with self._lock:
            self._connection.executemany(
                "INSERT OR REPLACE INTO tokens (config_digest, name, tokens) "
                "VALUES (?, ?, ?)",
                rows,
            )
            self._connection.commit()
            self._writes += 1

    def store_tokens_async(self, *args, **kwargs) -> None:
        """Queue :meth:`store_tokens` onto the writer thread (inline without one)."""
        self._submit(("tokens", args, kwargs))

    def token_count(self) -> int:
        """The number of stored token rows (over all configurations)."""
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) FROM tokens").fetchone()
        return int(row[0])

    # -- subtree digest artifacts ----------------------------------------------

    def load_path_signatures(self, schema_digest: str) -> Optional[Tuple[str, ...]]:
        """The persisted per-path row signatures of one schema version.

        Row signatures (see :mod:`repro.model.digests`) are stored alongside
        the whole-schema digest that addresses the cubes, so a fresh process
        can verify that the schema object it is asked to splice against is
        the same version whose cube sits in the store.  Returns ``None`` for
        unknown digests, signature vectors written by a different digest
        format version, and stores created before the ``subtrees`` table
        existed (older read-only files stay fully readable).
        """
        from repro.model.digests import DIGEST_VERSION

        with self._lock:
            try:
                row = self._connection.execute(
                    "SELECT signatures FROM subtrees "
                    "WHERE schema_digest = ? AND digest_version = ?",
                    (schema_digest, DIGEST_VERSION),
                ).fetchone()
            except sqlite3.OperationalError:
                return None  # pre-subtrees store opened read-only
        if row is None:
            return None
        try:
            signatures = json.loads(row[0])
        except (TypeError, ValueError):
            return None
        if not isinstance(signatures, list):
            return None
        return tuple(str(signature) for signature in signatures)

    def store_path_signatures(
        self, schema_digest: str, signatures: Sequence[str]
    ) -> None:
        """Persist the row signatures of one schema version (idempotent)."""
        from repro.model.digests import DIGEST_VERSION

        payload = json.dumps(list(signatures))
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO subtrees "
                "(schema_digest, digest_version, signatures) VALUES (?, ?, ?)",
                (schema_digest, DIGEST_VERSION, payload),
            )
            self._connection.commit()
            self._writes += 1

    def store_path_signatures_async(self, *args, **kwargs) -> None:
        """Queue :meth:`store_path_signatures` onto the writer thread."""
        self._submit(("subtrees", args, kwargs))

    def subtree_count(self) -> int:
        """The number of stored schema-version signature vectors."""
        with self._lock:
            try:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM subtrees"
                ).fetchone()
            except sqlite3.OperationalError:
                return 0  # pre-subtrees store opened read-only
        return int(row[0])

    # -- counters and statistics -----------------------------------------------

    def info(self) -> Dict[str, object]:
        """Occupancy, size and reuse counters (process-local and lifetime).

        ``hits`` / ``misses`` / ``writes`` cover this process;
        ``lifetime_hits`` / ``lifetime_misses`` accumulate across every
        process that called :meth:`close` (or :meth:`_persist_counters`) on
        this store file, so operators can judge reuse effectiveness from
        ``coma stats --store`` without instrumenting the service.
        """
        with self._lock:
            cube_rows = self._connection.execute(
                "SELECT COUNT(*), "
                "COALESCE(SUM(CASE WHEN payload_bytes > 0 THEN payload_bytes ELSE LENGTH(data) END), 0) FROM cubes"
            ).fetchone()
            dtype_rows = self._connection.execute(
                "SELECT dtype, COUNT(*), "
                "COALESCE(SUM(CASE WHEN payload_bytes > 0 THEN payload_bytes ELSE LENGTH(data) END), 0), "
                "COALESCE(SUM(external), 0) "
                "FROM cubes GROUP BY dtype ORDER BY dtype"
            ).fetchall()
            token_rows = self._connection.execute(
                "SELECT COUNT(*) FROM tokens"
            ).fetchone()
            try:
                subtree_rows = self._connection.execute(
                    "SELECT COUNT(*) FROM subtrees"
                ).fetchone()
            except sqlite3.OperationalError:
                subtree_rows = (0,)  # pre-subtrees store opened read-only
            persisted = dict(
                self._connection.execute("SELECT name, value FROM counters").fetchall()
            )
            hits, misses, writes = self._hits, self._misses, self._writes
            corrupt, quarantined = self._corrupt, self._quarantined
        return {
            "path": self._path,
            "dtype": self._dtype,
            "cubes": int(cube_rows[0]),
            "cube_bytes": int(cube_rows[1]),
            "cube_dtypes": {
                name: {
                    "cubes": int(count),
                    "bytes": int(total),
                    "external": int(external),
                }
                for name, count, total, external in dtype_rows
            },
            "tokens": int(token_rows[0]),
            "subtrees": int(subtree_rows[0]),
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "corrupt": corrupt,
            "quarantined": quarantined,
            "lifetime_hits": int(persisted.get("hits", 0)) + hits,
            "lifetime_misses": int(persisted.get("misses", 0)) + misses,
            "lifetime_corrupt": int(persisted.get("corrupt", 0)) + corrupt,
            "lifetime_quarantined": int(persisted.get("quarantined", 0)) + quarantined,
        }

    def _persist_counters(self) -> None:
        """Fold the process-local counters into the persistent totals."""
        if self._readonly:
            return
        with self._lock:
            deltas = (
                ("hits", self._hits),
                ("misses", self._misses),
                ("corrupt", self._corrupt),
                ("quarantined", self._quarantined),
            )
            for name, value in deltas:
                if value:
                    self._connection.execute(
                        "INSERT INTO counters (name, value) VALUES (?, ?) "
                        "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
                        (name, value),
                    )
            self._connection.commit()
            self._hits = 0
            self._misses = 0
            self._corrupt = 0
            self._quarantined = 0

    # -- background writer -----------------------------------------------------

    def _submit(self, item: Tuple) -> None:
        kind, args, kwargs = item
        with self._lock:
            if self._closed:
                # A write-back racing close() is dropped: the next process
                # simply recomputes (reuse lost, correctness kept).  Taking
                # the lock here also orders the check against close(), so an
                # accepted item always precedes the writer's shutdown
                # sentinel and a dropped item can never deadlock flush().
                return
            if self._writer is not None:
                self._queue.put(item)
                return
            # Writer-less mode writes inline -- still under the (reentrant)
            # lock, so a concurrent close() cannot slip between the closed
            # check and the write and leave us on a closed connection.
            self._apply_write(kind, args, kwargs)

    def _apply_write(self, kind: str, args: Tuple, kwargs: Dict) -> None:
        if kind == "cube":
            self.store_cube(*args, **kwargs)
        elif kind == "tokens":
            self.store_tokens(*args, **kwargs)
        elif kind == "subtrees":
            self.store_path_signatures(*args, **kwargs)
        else:  # pragma: no cover - internal invariant
            raise RepositoryError(f"unknown store write kind {kind!r}")

    def _drain_writes(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            kind, args, kwargs = item
            try:
                self._apply_write(kind, args, kwargs)
            except Exception:  # noqa: BLE001 - a failed write must not kill the writer
                # Persistence is an optimisation: losing one write degrades
                # reuse, never correctness, so the writer soldiers on.
                with contextlib.suppress(Exception):
                    self._connection.rollback()
            finally:
                self._queue.task_done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimilarityStore(path={self._path!r})"
