"""Simple approximate string matchers (Affix, n-gram, EditDistance, Soundex, Synonym)."""

from repro.matchers.string.affix import AffixMatcher, common_prefix_length, common_suffix_length
from repro.matchers.string.edit_distance import (
    EditDistanceMatcher,
    levenshtein_distance,
    levenshtein_distance_many,
)
from repro.matchers.string.ngram import DigramMatcher, NGramMatcher, TrigramMatcher, ngrams
from repro.matchers.string.soundex import SoundexMatcher, soundex_code
from repro.matchers.string.synonym import SynonymStringMatcher

__all__ = [
    "AffixMatcher",
    "DigramMatcher",
    "EditDistanceMatcher",
    "NGramMatcher",
    "SoundexMatcher",
    "SynonymStringMatcher",
    "TrigramMatcher",
    "common_prefix_length",
    "common_suffix_length",
    "levenshtein_distance",
    "levenshtein_distance_many",
    "ngrams",
    "soundex_code",
]
