"""The EditDistance string matcher: Levenshtein-based similarity (Section 4.1).

"String similarity is computed from the number of edit operations necessary to
transform one string to another one (the Levenshtein metric)."

The similarity is ``1 - distance / max(len(a), len(b))`` so that identical
strings score 1.0 and completely different strings of equal length score 0.0.
The implementation is the classic two-row dynamic program (O(len(a) * len(b))
time, O(min) space).
"""

from __future__ import annotations

from repro.matchers.base import StringMatcher


def levenshtein_distance(a: str, b: str) -> int:
    """The Levenshtein edit distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string on the column axis to minimise memory.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, char_a in enumerate(a, start=1):
        current[0] = i
        for j, char_b in enumerate(b, start=1):
            substitution_cost = 0 if char_a == char_b else 1
            current[j] = min(
                previous[j] + 1,              # deletion
                current[j - 1] + 1,           # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


class EditDistanceMatcher(StringMatcher):
    """Normalised Levenshtein similarity between two strings."""

    name = "EditDistance"

    def __init__(self, case_sensitive: bool = False):
        self._case_sensitive = bool(case_sensitive)

    def similarity(self, a: str, b: str) -> float:
        if not a and not b:
            return 0.0
        first = a if self._case_sensitive else a.lower()
        second = b if self._case_sensitive else b.lower()
        if first == second:
            return 1.0
        longest = max(len(first), len(second))
        if longest == 0:
            return 0.0
        distance = levenshtein_distance(first, second)
        return max(0.0, 1.0 - distance / longest)
