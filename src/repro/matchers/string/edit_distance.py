"""The EditDistance string matcher: Levenshtein-based similarity (Section 4.1).

"String similarity is computed from the number of edit operations necessary to
transform one string to another one (the Levenshtein metric)."

The similarity is ``1 - distance / max(len(a), len(b))`` so that identical
strings score 1.0 and completely different strings of equal length score 0.0.

Three kernels implement the metric:

* :func:`levenshtein_distance` -- the scalar entry point, backed by Myers'
  bit-parallel recurrence (:func:`repro.matchers.string.bitparallel
  .myers_distance`): Python's arbitrary-precision integers hold the whole
  pattern in one bit vector, so each text character costs a handful of
  integer operations instead of an ``O(m)`` row sweep.  It accepts an
  optional ``upper_bound``: when the length-difference lower bound
  ``abs(len(a) - len(b))`` already reaches the bound, the kernel is skipped
  entirely and the lower bound is returned (callers that map distances at or
  beyond the bound to a fixed outcome -- e.g. similarity clamped to 0 -- lose
  nothing).
* :func:`levenshtein_distance_many` -- the batch entry point.  Pairs whose
  shorter string fits the bit-parallel ladder (up to
  :data:`~repro.matchers.string.bitparallel.MAX_PATTERN_LENGTH` code points)
  run through the vectorized Myers kernel
  (:func:`repro.matchers.string.bitparallel.distances_into`), which advances
  64 pattern positions per uint64 word per step; degenerate shapes fall back
  to the padded numpy batch DP (:func:`_batch_dp`), whose inner recurrence is
  a vectorized prefix-scan.  Equal and empty pairs (the cases the
  length-difference bound decides outright) never enter either kernel.
* :func:`levenshtein_distance_dp` -- the classic two-row dynamic program
  (O(len(a) * len(b)) time, O(min) space), kept as the independent scalar
  reference the fuzz suites compare everything against.

:class:`EditDistanceMatcher` normalises case once per *unique* string (not
once per pair), batches all unique pairs through the vectorized kernel, and
shares results process-wide through the kernel memo pool
(:mod:`repro.matchers.memo`).  All kernels are exact; the fuzz suite in
``tests/test_levenshtein_batch.py`` asserts they agree on arbitrary unicode
input, with zero tolerance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.matchers.base import StringMatcher
from repro.matchers.string import bitparallel


def levenshtein_distance(a: str, b: str, upper_bound: Optional[int] = None) -> int:
    """The Levenshtein edit distance between two strings.

    Parameters
    ----------
    a / b:
        The strings to compare.
    upper_bound:
        When given, and the length-difference lower bound
        ``abs(len(a) - len(b))`` is already at or beyond it, the kernel is
        skipped and that lower bound is returned.  The result is then only
        guaranteed to be ``>= upper_bound`` (and ``<= `` the true distance),
        which is exactly what similarity computations clamping at a bound
        need.

    Examples
    --------
    >>> levenshtein_distance("kitten", "sitting")
    3
    >>> levenshtein_distance("po", "purchaseorder", upper_bound=11)
    11
    """
    if a == b:
        return 0
    length_bound = abs(len(a) - len(b))
    if upper_bound is not None and length_bound >= upper_bound:
        # The distance cannot come in below the length difference; skip.
        return length_bound
    return bitparallel.myers_distance(a, b)


def levenshtein_distance_dp(a: str, b: str) -> int:
    """The classic two-row dynamic program, kept as the scalar reference.

    The production paths run Myers' bit-parallel recurrence
    (:func:`levenshtein_distance`, :func:`levenshtein_distance_many`); this
    independent implementation is what the fuzz/differential suites compare
    them against, so it must stay the straightforward textbook DP.

    Examples
    --------
    >>> levenshtein_distance_dp("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string on the column axis to minimise memory.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, char_a in enumerate(a, start=1):
        current[0] = i
        for j, char_b in enumerate(b, start=1):
            substitution_cost = 0 if char_a == char_b else 1
            current[j] = min(
                previous[j] + 1,              # deletion
                current[j - 1] + 1,           # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


#: Working-set budget of one batch-DP chunk, in DP-row cells.  The DP keeps a
#: handful of ``chunk x (max_inner + 1)`` int arrays alive, so ~2M cells caps
#: the kernel's peak memory around tens of MB regardless of how many unique
#: pairs a huge schema pair funnels in at once.
_BATCH_CELL_BUDGET = 2_000_000


def levenshtein_distance_many(
    pairs: Sequence[Tuple[str, str]], kernel: str = "auto"
) -> np.ndarray:
    """Exact Levenshtein distances of many string pairs, computed in one batch.

    Pairs whose shorter string fits the bit-parallel ladder (at most
    :data:`~repro.matchers.string.bitparallel.MAX_PATTERN_LENGTH` code
    points -- effectively every schema element name) run through the
    vectorized Myers kernel: 64 pattern positions per uint64 word, one
    Python-level step per text character, every word operation spanning the
    whole batch.  Degenerate shapes fall back to the padded batch DP
    (:func:`_batch_dp`), whose insertion recurrence is resolved with
    ``np.minimum.accumulate`` -- also without an inner Python loop.

    Pairs decided by the length-difference lower bound without any kernel
    work (equal strings, one side empty) are short-circuited, and large
    batches are processed in bounded-memory chunks (the scalar loop this
    replaces ran in O(1) memory; the batch stays within a fixed working-set
    budget however many pairs arrive).

    ``kernel`` selects the implementation: ``"auto"`` (default) dispatches
    as above; ``"dp"`` forces every pair through the batch DP -- the knob the
    benchmark sweep and the differential tests use to compare kernels.

    Examples
    --------
    >>> levenshtein_distance_many([("kitten", "sitting"), ("", "abc"), ("x", "x")])
    array([3, 3, 0])
    """
    if kernel not in ("auto", "dp"):
        raise ValueError(f"unknown kernel {kernel!r}, expected 'auto' or 'dp'")
    count = len(pairs)
    distances = np.zeros(count, dtype=np.intp)
    bit_eligible: List[int] = []
    dp_indices: List[int] = []
    for index, (a, b) in enumerate(pairs):
        if a == b:
            continue  # distance 0
        if not a or not b:
            # Length-difference bound is tight here: distance == abs diff.
            distances[index] = abs(len(a) - len(b))
            continue
        if kernel == "auto" and min(len(a), len(b)) <= bitparallel.MAX_PATTERN_LENGTH:
            bit_eligible.append(index)
        else:
            dp_indices.append(index)
    if bit_eligible:
        bitparallel.distances_into(pairs, bit_eligible, distances)
    if not dp_indices:
        return distances
    # Budget per pair: a handful of (max_inner + 1)-wide DP rows plus one
    # max_outer-wide code row, so one very long string on either side cannot
    # blow the chunk's working set.
    widest_inner = 0
    widest_outer = 0
    for index in dp_indices:
        a, b = pairs[index]
        shorter, longer = sorted((len(a), len(b)))
        widest_inner = max(widest_inner, shorter)
        widest_outer = max(widest_outer, longer)
    per_pair_cells = 4 * (widest_inner + 1) + widest_outer
    chunk_size = max(256, _BATCH_CELL_BUDGET // per_pair_cells)
    for start in range(0, len(dp_indices), chunk_size):
        _batch_dp(pairs, dp_indices[start : start + chunk_size], distances)
    return distances


def _batch_dp(
    pairs: Sequence[Tuple[str, str]],
    active_indices: List[int],
    distances: np.ndarray,
) -> None:
    """Run the simultaneous DP for one chunk, writing into ``distances``."""
    # The longer string of each pair drives the outer loop; the shorter one
    # spans the DP row, keeping the padded row matrix as narrow as possible.
    outers: List[str] = []
    inners: List[str] = []
    for index in active_indices:
        a, b = pairs[index]
        if len(a) >= len(b):
            outers.append(a)
            inners.append(b)
        else:
            outers.append(b)
            inners.append(a)
    batch = len(active_indices)
    outer_lengths = np.array([len(s) for s in outers], dtype=np.intp)
    inner_lengths = np.array([len(s) for s in inners], dtype=np.intp)
    max_outer = int(outer_lengths.max())
    max_inner = int(inner_lengths.max())

    # Padded code-point matrices; 0 never collides with a real character
    # because padding is only read past a pair's own length, where the row
    # values are never consulted for that pair's result.
    outer_codes = np.zeros((batch, max_outer), dtype=np.int64)
    inner_codes = np.zeros((batch, max_inner), dtype=np.int64)
    for row, (outer, inner) in enumerate(zip(outers, inners)):
        outer_codes[row, : len(outer)] = [ord(c) for c in outer]
        inner_codes[row, : len(inner)] = [ord(c) for c in inner]

    column = np.arange(max_inner + 1, dtype=np.intp)
    previous = np.tile(column, (batch, 1))
    current = np.empty_like(previous)
    scratch = np.empty_like(previous)
    row_index = np.arange(batch)
    for i in range(1, max_outer + 1):
        # candidate[j] = min(deletion, substitution); insertion is folded in
        # below by the prefix scan.
        np.not_equal(inner_codes, outer_codes[:, i - 1 : i], out=scratch[:, 1:])
        scratch[:, 1:] += previous[:, :-1]          # substitution
        np.minimum(previous[:, 1:] + 1, scratch[:, 1:], out=current[:, 1:])
        current[:, 0] = i
        # current[j] = min_{k <= j} candidate[k] + (j - k): subtract the
        # column index, take the running minimum, add it back.
        current -= column
        np.minimum.accumulate(current, axis=1, out=current)
        current += column
        finished = outer_lengths == i
        if finished.any():
            rows = row_index[finished]
            for row in rows.tolist():
                distances[active_indices[row]] = current[row, inner_lengths[row]]
        previous, current = current, previous


class EditDistanceMatcher(StringMatcher):
    """Normalised Levenshtein similarity between two strings.

    The batch entry point (:meth:`similarity_many`) folds case once per
    unique input string, deduplicates the folded strings, serves known pairs
    from the process-wide kernel memo pool and pushes only the remaining
    distinct pairs through the vectorized batch DP
    (:func:`levenshtein_distance_many`).
    """

    name = "EditDistance"

    def __init__(self, case_sensitive: bool = False):
        self._case_sensitive = bool(case_sensitive)

    def memo_key(self) -> Optional[tuple]:
        # Folded strings enter the pool for the case-insensitive default, so
        # the flag must separate the two key spaces.
        return ("EditDistance", self._case_sensitive)

    def similarity(self, a: str, b: str) -> float:
        if not a and not b:
            return 0.0
        first = a if self._case_sensitive else a.lower()
        second = b if self._case_sensitive else b.lower()
        if first == second:
            return 1.0
        longest = max(len(first), len(second))
        if longest == 0:
            return 0.0
        # ``longest`` is this matcher's zero-similarity cutoff.  For two
        # non-empty strings the length-difference bound can never reach it
        # (that would require an empty side, handled above), so the value is
        # exact here; callers pruning against a real threshold pass a
        # tighter bound, e.g. ``upper_bound=ceil((1 - thr) * longest)``.
        distance = levenshtein_distance(first, second, upper_bound=longest)
        return max(0.0, 1.0 - distance / longest)

    # -- batch evaluation -------------------------------------------------------

    def similarity_many(self, sources, targets) -> np.ndarray:
        """The full cross-product similarity matrix, vectorized and memoised.

        Case is folded once per unique string; the memo pool then sees
        canonical (folded) pairs, so results are shared across schemas and
        sessions regardless of the casing each schema uses.
        """
        from repro.engine.profiles import unique_index
        from repro.matchers.memo import active_pool

        if self._case_sensitive:
            folded_sources: Sequence[str] = list(sources)
            folded_targets: Sequence[str] = list(targets)
        else:
            folded_sources = [word.lower() for word in sources]
            folded_targets = [word.lower() for word in targets]
        unique_sources, source_inverse = unique_index(folded_sources)
        unique_targets, target_inverse = unique_index(folded_targets)
        pool = active_pool()
        if pool is not None:
            unique = pool.block(
                self.memo_key(), unique_sources, unique_targets, self._batch_kernel
            )
        else:
            pairs = [(a, b) for a in unique_sources for b in unique_targets]
            unique = self._batch_kernel(pairs).reshape(
                len(unique_sources), len(unique_targets)
            )
        return unique[np.ix_(source_inverse, target_inverse)]

    @staticmethod
    def _batch_kernel(pairs: Sequence[Tuple[str, str]]) -> np.ndarray:
        """Similarities of (already case-folded) string pairs via the batch DP."""
        values = np.zeros(len(pairs), dtype=float)
        lively: List[int] = []
        for index, (a, b) in enumerate(pairs):
            if a == b:
                values[index] = 1.0 if a else 0.0
            elif a and b:
                lively.append(index)
            # one side empty: similarity 0 (the length bound decides it)
        if lively:
            subset = [pairs[index] for index in lively]
            distances = levenshtein_distance_many(subset)
            longest = np.array(
                [max(len(a), len(b)) for a, b in subset], dtype=float
            )
            values[lively] = np.maximum(0.0, 1.0 - distances / longest)
        return values
