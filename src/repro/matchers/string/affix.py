"""The Affix string matcher: common prefixes and suffixes (Section 4.1).

The Affix matcher "looks for common affixes, i.e. both prefixes and suffixes,
between two name strings".  The similarity is the length of the longer of the
common prefix and common suffix, normalised by the average string length, so
that identical strings score 1.0 and strings sharing no affix score 0.0.
"""

from __future__ import annotations

from typing import Optional

from repro.matchers.base import StringMatcher


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def common_suffix_length(a: str, b: str) -> int:
    """Length of the longest common suffix of two strings."""
    limit = min(len(a), len(b))
    for i in range(1, limit + 1):
        if a[-i] != b[-i]:
            return i - 1
    return limit


class AffixMatcher(StringMatcher):
    """Similarity from the longest shared prefix or suffix.

    Parameters
    ----------
    min_affix_length:
        Affixes shorter than this are ignored (a single shared initial letter
        carries no evidence).  The default of 2 keeps e.g. ``custNo`` /
        ``custName`` similar via the ``cust`` prefix while scoring unrelated
        names that merely start with the same letter as 0.
    case_sensitive:
        Compare strings as-is instead of lower-casing them first.
    """

    name = "Affix"

    def __init__(self, min_affix_length: int = 2, case_sensitive: bool = False):
        if min_affix_length < 1:
            raise ValueError(f"min_affix_length must be >= 1, got {min_affix_length}")
        self._min_affix_length = int(min_affix_length)
        self._case_sensitive = bool(case_sensitive)

    def memo_key(self) -> Optional[tuple]:
        # The affix scan is a scalar Python loop, so sharing results across
        # schemas through the process-wide kernel memo pool is a clear win.
        return ("Affix", self._min_affix_length, self._case_sensitive)

    def similarity(self, a: str, b: str) -> float:
        if not a or not b:
            return 0.0
        first = a if self._case_sensitive else a.lower()
        second = b if self._case_sensitive else b.lower()
        if first == second:
            return 1.0
        prefix = common_prefix_length(first, second)
        suffix = common_suffix_length(first, second)
        best = max(prefix, suffix)
        if best < self._min_affix_length:
            return 0.0
        average_length = (len(first) + len(second)) / 2.0
        return min(1.0, best / average_length)
