"""The n-gram string matcher (Section 4.1).

"Strings are compared according to their set of n-grams, i.e. sequences of n
characters, leading to different variants of this matcher, e.g. Digram (2),
Trigram (3)."

The similarity of two n-gram sets is measured with the Dice coefficient
(2 * |common| / (|A| + |B|)), the standard choice for n-gram comparison and
consistent with the paper's use of Dice elsewhere.  Strings shorter than ``n``
are padded conceptually by falling back to the full string as a single gram.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.matchers.base import StringMatcher


def ngrams(text: str, n: int) -> FrozenSet[str]:
    """The set of character n-grams of ``text`` (the whole string if shorter than n)."""
    if not text:
        return frozenset()
    if len(text) < n:
        return frozenset({text})
    return frozenset(text[i:i + n] for i in range(len(text) - n + 1))


class NGramMatcher(StringMatcher):
    """Dice-coefficient similarity over character n-gram sets."""

    def __init__(self, n: int = 3, case_sensitive: bool = False):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._case_sensitive = bool(case_sensitive)
        self.name = {2: "Digram", 3: "Trigram"}.get(self.n, f"{self.n}-gram")

    def similarity(self, a: str, b: str) -> float:
        if not a or not b:
            return 0.0
        first = a if self._case_sensitive else a.lower()
        second = b if self._case_sensitive else b.lower()
        if first == second:
            return 1.0
        grams_a = ngrams(first, self.n)
        grams_b = ngrams(second, self.n)
        if not grams_a or not grams_b:
            return 0.0
        common = len(grams_a & grams_b)
        if common == 0:
            return 0.0
        return 2.0 * common / (len(grams_a) + len(grams_b))


class DigramMatcher(NGramMatcher):
    """The Digram (n=2) variant."""

    def __init__(self, case_sensitive: bool = False):
        super().__init__(2, case_sensitive=case_sensitive)


class TrigramMatcher(NGramMatcher):
    """The Trigram (n=3) variant, the default constituent of the Name matcher."""

    def __init__(self, case_sensitive: bool = False):
        super().__init__(3, case_sensitive=case_sensitive)
