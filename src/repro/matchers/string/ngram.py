"""The n-gram string matcher (Section 4.1).

"Strings are compared according to their set of n-grams, i.e. sequences of n
characters, leading to different variants of this matcher, e.g. Digram (2),
Trigram (3)."

The similarity of two n-gram sets is measured with the Dice coefficient
(2 * |common| / (|A| + |B|)), the standard choice for n-gram comparison and
consistent with the paper's use of Dice elsewhere.  Strings shorter than ``n``
are padded conceptually by falling back to the full string as a single gram.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, TYPE_CHECKING

import numpy as np

from repro.matchers.base import StringMatcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.profiles import PathSetProfile


def ngrams(text: str, n: int) -> FrozenSet[str]:
    """The set of character n-grams of ``text`` (the whole string if shorter than n)."""
    if not text:
        return frozenset()
    if len(text) < n:
        return frozenset({text})
    return frozenset(text[i:i + n] for i in range(len(text) - n + 1))


class NGramMatcher(StringMatcher):
    """Dice-coefficient similarity over character n-gram sets."""

    def __init__(self, n: int = 3, case_sensitive: bool = False):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._case_sensitive = bool(case_sensitive)
        self.name = {2: "Digram", 3: "Trigram"}.get(self.n, f"{self.n}-gram")

    def similarity(self, a: str, b: str) -> float:
        if not a or not b:
            return 0.0
        first = a if self._case_sensitive else a.lower()
        second = b if self._case_sensitive else b.lower()
        if first == second:
            return 1.0
        grams_a = ngrams(first, self.n)
        grams_b = ngrams(second, self.n)
        if not grams_a or not grams_b:
            return 0.0
        common = len(grams_a & grams_b)
        if common == 0:
            return 0.0
        return 2.0 * common / (len(grams_a) + len(grams_b))

    # -- batch evaluation -------------------------------------------------------

    def similarity_many(self, sources, targets) -> np.ndarray:
        """Vectorized Dice similarity via a gram-incidence matrix product.

        Both string sets are encoded as binary incidence matrices over the
        shared gram vocabulary; the pairwise common-gram counts are then a
        single matrix product, from which the Dice coefficients follow by
        broadcasting.  Numerically identical to :meth:`similarity` per pair.
        """
        if self._case_sensitive:
            first = list(sources)
            second = list(targets)
        else:
            first = [text.lower() for text in sources]
            second = [text.lower() for text in targets]
        grams_a = [ngrams(text, self.n) for text in first]
        grams_b = [ngrams(text, self.n) for text in second]
        return self._similarity_from_grams(grams_a, grams_b)

    def similarity_profiled(
        self, source_profile: "PathSetProfile", target_profile: "PathSetProfile"
    ) -> np.ndarray:
        """Batch similarity reusing the profiles' pre-computed n-gram sets."""
        return self._similarity_from_grams(
            source_profile.ngram_sets(self.n, self._case_sensitive),
            target_profile.ngram_sets(self.n, self._case_sensitive),
        )

    def _similarity_from_grams(
        self,
        grams_a: Sequence[FrozenSet[str]],
        grams_b: Sequence[FrozenSet[str]],
    ) -> np.ndarray:
        if not grams_a or not grams_b:
            return np.zeros((len(grams_a), len(grams_b)), dtype=float)
        vocabulary: Dict[str, int] = {}
        for gram_set in grams_a:
            for gram in gram_set:
                vocabulary.setdefault(gram, len(vocabulary))
        for gram_set in grams_b:
            for gram in gram_set:
                vocabulary.setdefault(gram, len(vocabulary))
        if not vocabulary:
            # All strings empty: every pairwise similarity is 0.
            return np.zeros((len(grams_a), len(grams_b)), dtype=float)

        incidence_a = _incidence(grams_a, vocabulary)
        incidence_b = _incidence(grams_b, vocabulary)
        common = incidence_a @ incidence_b.T
        sizes_a = incidence_a.sum(axis=1)
        sizes_b = incidence_b.sum(axis=1)
        denominator = sizes_a[:, None] + sizes_b[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(denominator > 0.0, 2.0 * common / denominator, 0.0)
        # Pairs involving an empty string score 0, as in the scalar path.
        values[sizes_a == 0.0, :] = 0.0
        values[:, sizes_b == 0.0] = 0.0
        return values


def _incidence(gram_sets: Sequence[FrozenSet[str]], vocabulary: Dict[str, int]) -> np.ndarray:
    """A binary ``len(gram_sets) x len(vocabulary)`` gram-incidence matrix."""
    matrix = np.zeros((len(gram_sets), len(vocabulary)), dtype=float)
    for row, gram_set in enumerate(gram_sets):
        for gram in gram_set:
            matrix[row, vocabulary[gram]] = 1.0
    return matrix


class DigramMatcher(NGramMatcher):
    """The Digram (n=2) variant."""

    def __init__(self, case_sensitive: bool = False):
        super().__init__(2, case_sensitive=case_sensitive)


class TrigramMatcher(NGramMatcher):
    """The Trigram (n=3) variant, the default constituent of the Name matcher."""

    def __init__(self, case_sensitive: bool = False):
        super().__init__(3, case_sensitive=case_sensitive)
