"""Myers' bit-parallel Levenshtein kernels (scalar and numpy-vectorized).

Myers' 1999 algorithm replaces the classic dynamic program's row sweep with
bit-vector arithmetic: the column deltas of the DP matrix are encoded as two
bit vectors (``VP`` -- positions where the column value increases going down,
``VN`` -- where it decreases), and one round of word-level logic advances the
whole column by one *text* character.  For a pattern of ``m`` code points the
per-character cost drops from ``O(m)`` cell updates to ``O(m / 64)`` word
operations.

Two kernels share that recurrence:

* :func:`myers_distance` -- the scalar kernel.  Python integers are arbitrary
  precision, so the entire pattern lives in **one** bit vector regardless of
  length; no multi-word ladder is needed.
* :func:`distances_into` -- the batch kernel.  Pairs are grouped into blocks
  whose patterns need the same number of 64-bit words, each block's
  per-character pattern bitmasks (``Peq``) are packed into a
  ``(batch, alphabet, words)`` uint64 table, and the VP/VN recurrence is
  advanced one text character per step with every operation vectorized across
  the batch.  Patterns longer than 64 code points use the blockwise multi-word
  ladder of Hyyro: words communicate only through the +1/-1 horizontal carry
  (``hin``/``hout``), never through addition carries, so each word update is
  an independent vectorized expression.

The batch setup is vectorized too: code points come from one
``str.encode("utf-32-le")`` pass over the joined block strings (no
per-character ``ord()``), and the block alphabet is remapped with a presence
lookup table over ``[0, max_code]`` instead of a sort-based ``np.unique``.

Correctness of the padding scheme: every bit above position ``m - 1`` of a
pair's last word holds garbage (``VP`` starts all-ones there and ``Peq``
never sets those bits).  That is safe because information in the recurrence
flows exclusively from low bits to high bits -- through left shifts and the
carry of ``(Eq & VP) + VP`` -- so the garbage can never reach the score bit
at position ``(m - 1) % 64``.  The fuzz suites in
``tests/test_levenshtein_batch.py`` pin both kernels to the classic two-row
DP (zero tolerance) on arbitrary unicode, including multi-word and
astral-plane inputs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Bits per machine word of the batch kernel.
WORD_BITS = 64

#: Longest pattern (shorter string of a pair) the batch kernel accepts, in
#: 64-bit words.  Figure-8-scale schema names are 1 word; 8 words (512 code
#: points) covers any plausible element name, and longer degenerate inputs
#: fall back to the batch DP upstream.
MAX_PATTERN_WORDS = 8

#: The same cap in code points.
MAX_PATTERN_LENGTH = WORD_BITS * MAX_PATTERN_WORDS

#: Peak size of one block's ``Peq`` table, in bytes.  Blocks beyond the
#: budget are split into chunks, mirroring the batch DP's cell budget.
_PEQ_BUDGET_BYTES = 32 * 2**20

_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_TOP_SHIFT = np.uint64(WORD_BITS - 1)


def myers_distance(a: str, b: str) -> int:
    """The exact Levenshtein distance via the scalar bit-vector recurrence.

    The shorter string becomes the pattern; Python's arbitrary-precision
    integers hold its whole bit vector, so there is no length limit.

    Examples
    --------
    >>> myers_distance("kitten", "sitting")
    3
    >>> myers_distance("", "abc")
    3
    """
    if len(a) < len(b):
        pattern, text = a, b
    else:
        pattern, text = b, a
    m = len(pattern)
    if m == 0:
        return len(text)
    peq: Dict[str, int] = {}
    bit = 1
    for char in pattern:
        peq[char] = peq.get(char, 0) | bit
        bit <<= 1
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    vp = mask
    vn = 0
    score = m
    for char in text:
        eq = peq.get(char, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        ph = vn | (~(xh | vp) & mask)
        mh = vp & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        vp = mh | (~(xv | ph) & mask)
        vn = ph & xv
    return score


def distances_into(
    pairs: Sequence[Tuple[str, str]],
    indices: Sequence[int],
    out: np.ndarray,
) -> None:
    """Exact distances of the indexed pairs, written into ``out``.

    Every indexed pair must have two non-empty, non-equal strings whose
    shorter side is at most :data:`MAX_PATTERN_LENGTH` code points (the
    dispatcher in :mod:`repro.matchers.string.edit_distance` guarantees
    this).  Pairs are grouped by pattern word count and processed in chunks
    bounded by the ``Peq`` memory budget.
    """
    by_words: Dict[int, List[int]] = {}
    for index in indices:
        a, b = pairs[index]
        words = (min(len(a), len(b)) + WORD_BITS - 1) // WORD_BITS
        by_words.setdefault(words, []).append(index)
    for words, group in by_words.items():
        _group(pairs, group, words, out)


def _group(
    pairs: Sequence[Tuple[str, str]],
    indices: List[int],
    words: int,
    out: np.ndarray,
) -> None:
    """Chunk and advance one group of pairs sharing a pattern word count."""
    patterns: List[str] = []
    texts: List[str] = []
    for index in indices:
        a, b = pairs[index]
        if len(a) <= len(b):
            patterns.append(a)
            texts.append(b)
        else:
            patterns.append(b)
            texts.append(a)
    count = len(indices)
    pattern_lengths = np.fromiter(
        (len(s) for s in patterns), dtype=np.int64, count=count
    )
    text_lengths = np.fromiter((len(s) for s in texts), dtype=np.int64, count=count)

    # Sort by text length so each chunk advances over a uniform step count
    # (the step loop of a chunk runs to the chunk's *longest* text).
    order = np.argsort(text_lengths, kind="stable")
    patterns = [patterns[i] for i in order]
    texts = [texts[i] for i in order]
    pattern_lengths = pattern_lengths[order]
    text_lengths = text_lengths[order]
    index_array = np.asarray(indices, dtype=np.intp)[order]

    # One C-level pass turns every code point into a uint32: no per-character
    # ord().  UTF-32-LE is exactly the code-point sequence.
    codes = np.frombuffer(
        ("".join(patterns) + "".join(texts)).encode("utf-32-le"), dtype=np.uint32
    )
    # Remap code points to a compact block alphabet via a presence table over
    # [0, max_code]; ``sentinel`` pads the id matrices and maps to an
    # all-zero Peq row.  Ids are shared across pairs, which is safe because
    # Peq is per-pair.
    max_code = int(codes.max())
    present = np.zeros(max_code + 2, dtype=bool)
    present[codes] = True
    present[max_code + 1] = True  # the padding sentinel
    id_table = np.cumsum(present) - 1
    alphabet_size = int(id_table[-1]) + 1
    ids = id_table[codes]
    pad_id = alphabet_size - 1
    pattern_chars = int(pattern_lengths.sum())
    pattern_ids_flat = ids[:pattern_chars]
    text_ids_flat = ids[pattern_chars:]
    pattern_offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(pattern_lengths, out=pattern_offsets[1:])
    text_offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(text_lengths, out=text_offsets[1:])

    chunk = max(64, _PEQ_BUDGET_BYTES // (alphabet_size * words * 8))
    for start in range(0, count, chunk):
        stop = min(count, start + chunk)
        _block(
            pattern_ids_flat[pattern_offsets[start] : pattern_offsets[stop]],
            text_ids_flat[text_offsets[start] : text_offsets[stop]],
            pattern_lengths[start:stop],
            text_lengths[start:stop],
            alphabet_size,
            pad_id,
            words,
            index_array[start:stop],
            out,
        )


def _block(
    pattern_ids_flat: np.ndarray,
    text_ids_flat: np.ndarray,
    pattern_lengths: np.ndarray,
    text_lengths: np.ndarray,
    alphabet_size: int,
    pad_id: int,
    words: int,
    index_array: np.ndarray,
    out: np.ndarray,
) -> None:
    """Advance one chunk of pairs sharing a pattern word count."""
    batch = len(index_array)
    m_max = int(pattern_lengths.max())
    n_max = int(text_lengths.max())

    # Padded id matrices, scattered from the flat id runs (boolean masks
    # assign in row-major order, matching the concatenation order).
    positions = np.arange(max(m_max, n_max), dtype=np.int64)
    pattern_mask = positions[:m_max][None, :] < pattern_lengths[:, None]
    pattern_ids = np.full((batch, m_max), pad_id, dtype=np.int64)
    pattern_ids[pattern_mask] = pattern_ids_flat
    text_mask = positions[:n_max][None, :] < text_lengths[:, None]
    text_ids = np.full((batch, n_max), pad_id, dtype=np.int64)
    text_ids[text_mask] = text_ids_flat
    # Transposed C-order so each step reads a contiguous row.
    text_ids_steps = np.ascontiguousarray(text_ids.T)

    # Peq[pair, char_id, word]: bitmask of pattern positions holding char_id.
    peq = np.zeros((batch, alphabet_size, words), dtype=np.uint64)
    rows, cols = np.nonzero(pattern_mask)
    word_of = cols // WORD_BITS
    bit_of = (cols % WORD_BITS).astype(np.uint64)
    flat_index = (rows * alphabet_size + pattern_ids[rows, cols]) * words + word_of
    np.bitwise_or.at(peq.reshape(-1), flat_index, np.left_shift(_ONE, bit_of))

    finish_map: Dict[int, List[int]] = {}
    for row, length in enumerate(text_lengths.tolist()):
        finish_map.setdefault(length, []).append(row)
    score = pattern_lengths.copy()
    score_bit = np.left_shift(
        _ONE, ((pattern_lengths - 1) % WORD_BITS).astype(np.uint64)
    )
    gather_base = np.arange(batch, dtype=np.intp) * alphabet_size
    if words == 1:
        _advance_single_word(
            peq, text_ids_steps, gather_base, score, score_bit, finish_map,
            index_array, out, n_max,
        )
    else:
        _advance_multi_word(
            peq, text_ids_steps, gather_base, score, score_bit, finish_map,
            index_array, out, n_max, words,
        )


def _advance_single_word(
    peq: np.ndarray,
    text_ids_steps: np.ndarray,
    gather_base: np.ndarray,
    score: np.ndarray,
    score_bit: np.ndarray,
    finish_map: Dict[int, List[int]],
    index_array: np.ndarray,
    out: np.ndarray,
    n_max: int,
) -> None:
    """The one-word fast path (patterns of at most 64 code points)."""
    batch = score.shape[0]
    peq_flat = peq.reshape(-1)
    vp = np.full(batch, _FULL, dtype=np.uint64)
    vn = np.zeros(batch, dtype=np.uint64)
    for step in range(n_max):
        eq = peq_flat[gather_base + text_ids_steps[step]]
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        ph = vn | ~(xh | vp)
        mh = vp & xh
        score += (ph & score_bit) != _ZERO
        score -= (mh & score_bit) != _ZERO
        ph = np.left_shift(ph, _ONE) | _ONE
        mh = np.left_shift(mh, _ONE)
        vp = mh | ~(xv | ph)
        vn = ph & xv
        finished = finish_map.get(step + 1)
        if finished:
            out[index_array[finished]] = score[finished]


def _advance_multi_word(
    peq: np.ndarray,
    text_ids_steps: np.ndarray,
    gather_base: np.ndarray,
    score: np.ndarray,
    score_bit: np.ndarray,
    finish_map: Dict[int, List[int]],
    index_array: np.ndarray,
    out: np.ndarray,
    n_max: int,
    words: int,
) -> None:
    """The blockwise ladder: words linked only by the +-1 horizontal carry."""
    batch = score.shape[0]
    peq2 = peq.reshape(batch * peq.shape[1], words)
    vp = np.full((batch, words), _FULL, dtype=np.uint64)
    vn = np.zeros((batch, words), dtype=np.uint64)
    last = words - 1
    for step in range(n_max):
        eq_all = peq2[gather_base + text_ids_steps[step]]
        ph_carry = np.ones(batch, dtype=np.uint64)  # row-0 boundary: hin = +1
        mh_carry = np.zeros(batch, dtype=np.uint64)
        for k in range(words):
            vpk = vp[:, k]
            vnk = vn[:, k]
            eq = eq_all[:, k]
            xv = eq | vnk
            eq = eq | mh_carry  # a -1 carry entering the word acts as a match
            xh = (((eq & vpk) + vpk) ^ vpk) | eq
            ph = vnk | ~(xh | vpk)
            mh = vpk & xh
            if k == last:
                score += (ph & score_bit) != _ZERO
                score -= (mh & score_bit) != _ZERO
            ph_out = np.right_shift(ph, _TOP_SHIFT)
            mh_out = np.right_shift(mh, _TOP_SHIFT)
            ph = np.left_shift(ph, _ONE) | ph_carry
            mh = np.left_shift(mh, _ONE) | mh_carry
            vp[:, k] = mh | ~(xv | ph)
            vn[:, k] = ph & xv
            ph_carry = ph_out
            mh_carry = mh_out
        finished = finish_map.get(step + 1)
        if finished:
            out[index_array[finished]] = score[finished]
