"""The Synonym string matcher: dictionary-based semantic similarity (Section 4.1).

"This matcher estimates the similarity between element names by looking up the
terminological relationships in a specified dictionary.  Currently, it simply
uses relationship-specific similarity values, e.g. 1.0 for a synonymy and 0.8
for a hypernymy relationship."

The matcher needs a :class:`~repro.auxiliary.synonyms.SynonymDictionary`; when
used inside the hybrid Name matcher the dictionary comes from the
:class:`~repro.matchers.base.MatchContext`, so :class:`SynonymStringMatcher`
may be constructed either with an explicit dictionary or bound to one later.
"""

from __future__ import annotations

from typing import Optional

from repro.auxiliary.synonyms import SynonymDictionary
from repro.exceptions import MatcherError
from repro.matchers.base import StringMatcher


class SynonymStringMatcher(StringMatcher):
    """Relationship-specific similarity from a synonym dictionary."""

    name = "Synonym"

    def __init__(self, dictionary: Optional[SynonymDictionary] = None):
        self._dictionary = dictionary

    @property
    def dictionary(self) -> Optional[SynonymDictionary]:
        """The bound dictionary (``None`` until bound)."""
        return self._dictionary

    def bound_to(self, dictionary: SynonymDictionary) -> "SynonymStringMatcher":
        """A copy of this matcher bound to ``dictionary``."""
        return SynonymStringMatcher(dictionary)

    def similarity(self, a: str, b: str) -> float:
        if self._dictionary is None:
            raise MatcherError(
                "SynonymStringMatcher has no dictionary; construct it with one or "
                "use bound_to() before calling similarity()"
            )
        if not a or not b:
            return 0.0
        return self._dictionary.similarity(a, b)
