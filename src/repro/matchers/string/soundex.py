"""The Soundex string matcher: phonetic similarity (Section 4.1).

"This matcher computes the phonetic similarity between names from their
corresponding soundex codes."

The standard American Soundex algorithm encodes a word as a letter followed by
three digits.  The similarity of two names is computed by comparing their
codes: identical codes score 1.0, otherwise the score degrades with the number
of agreeing code positions (same initial letter and matching digits).
"""

from __future__ import annotations

from repro.matchers.base import StringMatcher

#: Soundex digit classes for consonants; vowels and h/w/y are not coded.
_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}


def soundex_code(word: str, length: int = 4) -> str:
    """The Soundex code of ``word`` (empty string for non-alphabetic input)."""
    letters = [c for c in word.lower() if c.isalpha()]
    if not letters:
        return ""
    first = letters[0]
    code = [first.upper()]
    previous_digit = _SOUNDEX_CODES.get(first, "")
    for char in letters[1:]:
        digit = _SOUNDEX_CODES.get(char, "")
        if digit and digit != previous_digit:
            code.append(digit)
            if len(code) == length:
                break
        # 'h' and 'w' do not reset the previous digit; vowels do.
        if char not in "hw":
            previous_digit = digit
    return "".join(code).ljust(length, "0")[:length]


class SoundexMatcher(StringMatcher):
    """Similarity of the Soundex codes of two names."""

    name = "Soundex"

    def __init__(self, code_length: int = 4):
        if code_length < 2:
            raise ValueError(f"code_length must be >= 2, got {code_length}")
        self._code_length = int(code_length)

    def similarity(self, a: str, b: str) -> float:
        if not a or not b:
            return 0.0
        if a.lower() == b.lower():
            return 1.0
        code_a = soundex_code(a, self._code_length)
        code_b = soundex_code(b, self._code_length)
        if not code_a or not code_b:
            return 0.0
        if code_a == code_b:
            return 1.0
        # Partial agreement: fraction of positions that agree, requiring the
        # initial letter to match for any credit at all.
        if code_a[0] != code_b[0]:
            return 0.0
        agreeing = sum(1 for x, y in zip(code_a, code_b) if x == y)
        return agreeing / self._code_length
