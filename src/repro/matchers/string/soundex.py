"""The Soundex string matcher: phonetic similarity (Section 4.1).

"This matcher computes the phonetic similarity between names from their
corresponding soundex codes."

The standard American Soundex algorithm encodes a word as a letter followed by
three digits.  The similarity of two names is computed by comparing their
codes: identical codes score 1.0, otherwise the score degrades with the number
of agreeing code positions (same initial letter and matching digits).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.matchers.base import StringMatcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.profiles import PathSetProfile

#: Soundex digit classes for consonants; vowels and h/w/y are not coded.
_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}


def soundex_code(word: str, length: int = 4) -> str:
    """The Soundex code of ``word`` (empty string for non-alphabetic input)."""
    letters = [c for c in word.lower() if c.isalpha()]
    if not letters:
        return ""
    first = letters[0]
    code = [first.upper()]
    previous_digit = _SOUNDEX_CODES.get(first, "")
    for char in letters[1:]:
        digit = _SOUNDEX_CODES.get(char, "")
        if digit and digit != previous_digit:
            code.append(digit)
            if len(code) == length:
                break
        # 'h' and 'w' do not reset the previous digit; vowels do.
        if char not in "hw":
            previous_digit = digit
    return "".join(code).ljust(length, "0")[:length]


class SoundexMatcher(StringMatcher):
    """Similarity of the Soundex codes of two names."""

    name = "Soundex"

    def __init__(self, code_length: int = 4):
        if code_length < 2:
            raise ValueError(f"code_length must be >= 2, got {code_length}")
        self._code_length = int(code_length)

    def similarity(self, a: str, b: str) -> float:
        if not a or not b:
            return 0.0
        if a.lower() == b.lower():
            return 1.0
        code_a = soundex_code(a, self._code_length)
        code_b = soundex_code(b, self._code_length)
        if not code_a or not code_b:
            return 0.0
        if code_a == code_b:
            return 1.0
        # Partial agreement: fraction of positions that agree, requiring the
        # initial letter to match for any credit at all.
        if code_a[0] != code_b[0]:
            return 0.0
        agreeing = sum(1 for x, y in zip(code_a, code_b) if x == y)
        return agreeing / self._code_length

    # -- batch evaluation -------------------------------------------------------

    def similarity_many(self, sources, targets) -> np.ndarray:
        """Vectorized Soundex similarity over two string sequences.

        Case is folded once per unique input string; both the phonetic codes
        and the identical-name check below then work on the folded form
        instead of re-lowering inside every per-pair comparison.
        """
        lowered_a = [word.lower() for word in sources]
        lowered_b = [word.lower() for word in targets]
        codes_a = [soundex_code(word, self._code_length) for word in lowered_a]
        codes_b = [soundex_code(word, self._code_length) for word in lowered_b]
        return self._similarity_from_codes(
            lowered_a, lowered_b, codes_a, codes_b, already_lowered=True
        )

    def similarity_profiled(
        self, source_profile: "PathSetProfile", target_profile: "PathSetProfile"
    ) -> np.ndarray:
        """Batch similarity reusing the profiles' pre-computed soundex codes."""
        return self._similarity_from_codes(
            source_profile.lowered_names,
            target_profile.lowered_names,
            source_profile.soundex_codes(self._code_length),
            target_profile.soundex_codes(self._code_length),
            already_lowered=True,
        )

    def _similarity_from_codes(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        codes_a: List[str],
        codes_b: List[str],
        already_lowered: bool = False,
    ) -> np.ndarray:
        if not codes_a or not codes_b:
            return np.zeros((len(codes_a), len(codes_b)), dtype=float)
        # Codes as a character matrix: position-wise agreement by broadcasting.
        # Empty codes (non-alphabetic input) become all-NUL rows and are masked.
        length = self._code_length
        chars_a = _code_chars(codes_a, length)
        chars_b = _code_chars(codes_b, length)
        empty_a = chars_a[:, 0] == 0
        empty_b = chars_b[:, 0] == 0
        agreeing = (chars_a[:, None, :] == chars_b[None, :, :]).sum(axis=2) / length
        same_initial = chars_a[:, None, 0] == chars_b[None, :, 0]
        values = np.where(same_initial, agreeing, 0.0)
        values[empty_a, :] = 0.0
        values[:, empty_b] = 0.0
        # Identical (case-folded) names score 1.0 even without a usable code.
        lowered_a = sources if already_lowered else [word.lower() for word in sources]
        lowered_b = targets if already_lowered else [word.lower() for word in targets]
        shared: Dict[str, int] = {}
        ids_a = np.array([shared.setdefault(word, len(shared)) for word in lowered_a])
        ids_b = np.array([shared.setdefault(word, len(shared)) for word in lowered_b])
        values[ids_a[:, None] == ids_b[None, :]] = 1.0
        # Empty strings score 0 against everything, including themselves.
        blank_a = np.array([not word for word in lowered_a], dtype=bool)
        blank_b = np.array([not word for word in lowered_b], dtype=bool)
        values[blank_a, :] = 0.0
        values[:, blank_b] = 0.0
        return values


def _code_chars(codes: List[str], length: int) -> np.ndarray:
    """Soundex codes as a ``len(codes) x length`` uint8 character matrix."""
    matrix = np.zeros((len(codes), length), dtype=np.uint8)
    for row, code in enumerate(codes):
        for column, char in enumerate(code[:length]):
            matrix[row, column] = ord(char)
    return matrix
