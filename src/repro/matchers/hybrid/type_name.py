"""The hybrid TypeName matcher (Section 4.2, Table 4).

``TypeName`` combines the DataType and Name matchers: for every pair of
elements the name similarity and the data-type compatibility are aggregated
with the Weighted strategy using default weights of 0.7 (name) and 0.3 (data
type).  Steps 2 and 3 of the combination scheme are not needed because one
similarity value per element pair already exists after aggregation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.combination.combined import CombinedSimilarityStrategy
from repro.combination.matrix import SimilarityMatrix
from repro.exceptions import MatcherError
from repro.matchers.base import MatchContext, Matcher
from repro.matchers.hybrid.name import NameMatcher
from repro.matchers.simple.datatype import DataTypeMatcher
from repro.model.path import SchemaPath

#: Default relative weights from Table 4.
DEFAULT_NAME_WEIGHT = 0.7
DEFAULT_TYPE_WEIGHT = 0.3


class TypeNameMatcher(Matcher):
    """Weighted combination of name similarity and data-type compatibility."""

    name = "TypeName"
    kind = "hybrid"

    def __init__(
        self,
        name_matcher: Optional[NameMatcher] = None,
        datatype_matcher: Optional[DataTypeMatcher] = None,
        name_weight: float = DEFAULT_NAME_WEIGHT,
        type_weight: float = DEFAULT_TYPE_WEIGHT,
    ):
        if name_weight < 0 or type_weight < 0:
            raise MatcherError("TypeName weights must be non-negative")
        total = name_weight + type_weight
        if total <= 0:
            raise MatcherError("TypeName weights must not both be zero")
        self._name_matcher = name_matcher if name_matcher is not None else NameMatcher()
        self._datatype_matcher = (
            datatype_matcher if datatype_matcher is not None else DataTypeMatcher()
        )
        self._name_weight = name_weight / total
        self._type_weight = type_weight / total

    # -- configuration accessors ------------------------------------------------------

    @property
    def name_matcher(self) -> NameMatcher:
        """The constituent Name matcher."""
        return self._name_matcher

    @property
    def datatype_matcher(self) -> DataTypeMatcher:
        """The constituent DataType matcher."""
        return self._datatype_matcher

    @property
    def weights(self) -> tuple[float, float]:
        """The normalised ``(name weight, type weight)`` pair."""
        return (self._name_weight, self._type_weight)

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "TypeNameMatcher":
        """A copy whose Name constituent uses a different combined-similarity strategy."""
        return TypeNameMatcher(
            name_matcher=self._name_matcher.with_combined_similarity(combined_similarity),
            datatype_matcher=self._datatype_matcher,
            name_weight=self._name_weight,
            type_weight=self._type_weight,
        )

    # -- computation ---------------------------------------------------------------------

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        name_matrix = self._name_matcher.compute(source_paths, target_paths, context)
        type_matrix = self._datatype_matcher.compute(source_paths, target_paths, context)
        combined = (
            self._name_weight * name_matrix.values + self._type_weight * type_matrix.values
        )
        return SimilarityMatrix(source_paths, target_paths, combined)

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Batch variant: both constituents run through their batch paths."""
        name_matrix = self._name_matcher.compute_batch(source_paths, target_paths, context)
        type_matrix = self._datatype_matcher.compute_batch(source_paths, target_paths, context)
        combined = (
            self._name_weight * name_matrix.values + self._type_weight * type_matrix.values
        )
        return SimilarityMatrix(source_paths, target_paths, combined)
