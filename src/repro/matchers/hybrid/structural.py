"""The hybrid structural matchers Children and Leaves (Section 4.2, Table 4).

Both matchers derive the similarity of two *inner* elements from the combined
similarity of element sets beneath them, using a leaf-level matcher (TypeName
by default) for the base similarities and the (Both, Max1, Average) pipeline
of Table 4 for combining set matches:

* ``Children`` compares the *child* sets of two inner elements.  Children may
  themselves be inner elements, whose similarity is computed recursively.
* ``Leaves`` compares the *leaf descendant* sets of two inner elements, which
  is more stable under structural conflicts: in Figure 1, Children only finds
  ``ShipTo <-> Address`` whereas Leaves also identifies ``ShipTo <-> DeliverTo``.

Leaf-leaf pairs take their similarity directly from the leaf matcher; mixed
pairs (a leaf against an inner element) treat the leaf as a singleton set.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.combination.combined import (
    AVERAGE_COMBINED,
    CombinedSimilarityStrategy,
)
from repro.combination.direction import BOTH, DirectionStrategy
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import MaxN, SelectionStrategy
from repro.matchers.base import MatchContext, Matcher
from repro.matchers.hybrid.type_name import TypeNameMatcher
from repro.model.path import SchemaPath
from repro.model.schema import Schema


class _StructuralMatcherBase(Matcher):
    """Shared implementation of the Children and Leaves matchers."""

    kind = "hybrid"

    def __init__(
        self,
        leaf_matcher: Optional[Matcher] = None,
        direction: DirectionStrategy = BOTH,
        selection: Optional[SelectionStrategy] = None,
        combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED,
    ):
        self._leaf_matcher = leaf_matcher if leaf_matcher is not None else TypeNameMatcher()
        self._direction = direction
        self._selection = selection if selection is not None else MaxN(1)
        self._combined = combined_similarity

    # -- configuration accessors ----------------------------------------------------

    @property
    def leaf_matcher(self) -> Matcher:
        """The matcher providing leaf-level similarities (TypeName by default)."""
        return self._leaf_matcher

    @property
    def combined_similarity(self) -> CombinedSimilarityStrategy:
        """The strategy collapsing set matches into one element similarity."""
        return self._combined

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "_StructuralMatcherBase":
        """A copy using a different combined-similarity strategy (Average vs Dice)."""
        leaf = self._leaf_matcher
        if hasattr(leaf, "with_combined_similarity"):
            leaf = leaf.with_combined_similarity(combined_similarity)  # type: ignore[attr-defined]
        return type(self)(
            leaf_matcher=leaf,
            direction=self._direction,
            selection=self._selection,
            combined_similarity=combined_similarity,
        )

    # -- template methods -------------------------------------------------------------

    def _component_paths(self, schema: Schema, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        """The component set of an inner path (children or leaf descendants)."""
        raise NotImplementedError

    def _recursive(self) -> bool:
        """Whether component similarities are computed recursively (Children) or not."""
        raise NotImplementedError

    # -- computation ---------------------------------------------------------------------

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        source_schema = context.source_schema
        target_schema = context.target_schema
        # The leaf matcher is evaluated over the full path sets once, so that
        # component paths outside the requested subsets are covered too.
        all_source = source_schema.paths()
        all_target = target_schema.paths()
        leaf_matrix = self._leaf_matcher.compute(all_source, all_target, context)

        memo: Dict[Tuple[SchemaPath, SchemaPath], float] = {}

        def pair_similarity(source: SchemaPath, target: SchemaPath) -> float:
            key = (source, target)
            if key in memo:
                return memo[key]
            source_is_leaf = source_schema.is_leaf(source.leaf)
            target_is_leaf = target_schema.is_leaf(target.leaf)
            if source_is_leaf and target_is_leaf:
                value = leaf_matrix.get(source, target)
            else:
                source_set = (
                    (source,) if source_is_leaf else self._component_paths(source_schema, source)
                )
                target_set = (
                    (target,) if target_is_leaf else self._component_paths(target_schema, target)
                )
                value = self._set_similarity(source_set, target_set, pair_similarity, leaf_matrix,
                                             source_schema, target_schema)
            memo[key] = value
            return value

        matrix = SimilarityMatrix(source_paths, target_paths)
        for source in source_paths:
            for target in target_paths:
                matrix.set(source, target, pair_similarity(source, target))
        return matrix

    def _set_similarity(
        self,
        source_set: Sequence[SchemaPath],
        target_set: Sequence[SchemaPath],
        recursive_similarity,
        leaf_matrix: SimilarityMatrix,
        source_schema: Schema,
        target_schema: Schema,
    ) -> float:
        if not source_set or not target_set:
            return 0.0
        component_matrix = SimilarityMatrix(source_set, target_set)
        for source in source_set:
            for target in target_set:
                if self._recursive():
                    value = recursive_similarity(source, target)
                else:
                    value = leaf_matrix.get(source, target)
                component_matrix.set(source, target, value)
        selected = self._direction.select_pairs(component_matrix, self._selection)
        return self._combined.combine(selected, len(source_set), len(target_set))


class ChildrenMatcher(_StructuralMatcherBase):
    """Similarity of inner elements from the combined similarity of their children."""

    name = "Children"

    def _component_paths(self, schema: Schema, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        return schema.child_paths(path)

    def _recursive(self) -> bool:
        return True


class LeavesMatcher(_StructuralMatcherBase):
    """Similarity of inner elements from the combined similarity of their leaf sets."""

    name = "Leaves"

    def _component_paths(self, schema: Schema, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        leaves = schema.leaf_paths_under(path)
        # An inner element whose subtree is (pathologically) empty of leaves
        # falls back to its direct children to avoid an empty component set.
        return leaves if leaves else schema.child_paths(path)

    def _recursive(self) -> bool:
        return False
