"""The hybrid structural matchers Children and Leaves (Section 4.2, Table 4).

Both matchers derive the similarity of two *inner* elements from the combined
similarity of element sets beneath them, using a leaf-level matcher (TypeName
by default) for the base similarities and the (Both, Max1, Average) pipeline
of Table 4 for combining set matches:

* ``Children`` compares the *child* sets of two inner elements.  Children may
  themselves be inner elements, whose similarity is computed recursively.
* ``Leaves`` compares the *leaf descendant* sets of two inner elements, which
  is more stable under structural conflicts: in Figure 1, Children only finds
  ``ShipTo <-> Address`` whereas Leaves also identifies ``ShipTo <-> DeliverTo``.

Leaf-leaf pairs take their similarity directly from the leaf matcher; mixed
pairs (a leaf against an inner element) treat the leaf as a singleton set.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.combination.combined import (
    AVERAGE_COMBINED,
    CombinedSimilarityStrategy,
)
from repro.combination.direction import BOTH, Both, DirectionStrategy
from repro.combination.matrix import SimilarityMatrix
from repro.combination.selection import MaxN, SelectionStrategy
from repro.matchers.base import MatchContext, Matcher
from repro.matchers.hybrid.type_name import TypeNameMatcher
from repro.model.path import SchemaPath
from repro.model.schema import Schema


class _StructuralMatcherBase(Matcher):
    """Shared implementation of the Children and Leaves matchers."""

    kind = "hybrid"

    def __init__(
        self,
        leaf_matcher: Optional[Matcher] = None,
        direction: DirectionStrategy = BOTH,
        selection: Optional[SelectionStrategy] = None,
        combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED,
    ):
        self._leaf_matcher = leaf_matcher if leaf_matcher is not None else TypeNameMatcher()
        self._direction = direction
        self._selection = selection if selection is not None else MaxN(1)
        self._combined = combined_similarity

    # -- configuration accessors ----------------------------------------------------

    @property
    def leaf_matcher(self) -> Matcher:
        """The matcher providing leaf-level similarities (TypeName by default)."""
        return self._leaf_matcher

    @property
    def combined_similarity(self) -> CombinedSimilarityStrategy:
        """The strategy collapsing set matches into one element similarity."""
        return self._combined

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "_StructuralMatcherBase":
        """A copy using a different combined-similarity strategy (Average vs Dice)."""
        leaf = self._leaf_matcher
        if hasattr(leaf, "with_combined_similarity"):
            leaf = leaf.with_combined_similarity(combined_similarity)  # type: ignore[attr-defined]
        return type(self)(
            leaf_matcher=leaf,
            direction=self._direction,
            selection=self._selection,
            combined_similarity=combined_similarity,
        )

    # -- template methods -------------------------------------------------------------

    def _component_paths(self, schema: Schema, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        """The component set of an inner path (children or leaf descendants)."""
        raise NotImplementedError

    def _recursive(self) -> bool:
        """Whether component similarities are computed recursively (Children) or not."""
        raise NotImplementedError

    # -- computation ---------------------------------------------------------------------

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        # The leaf matcher is evaluated over the full path sets once, so that
        # component paths outside the requested subsets are covered too.
        leaf_matrix = self._leaf_matcher.compute(
            context.source_schema.paths(), context.target_schema.paths(), context
        )
        return self._compute_from_leaf_matrix(source_paths, target_paths, context, leaf_matrix)

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Batch variant: the (dominant) leaf matrix runs through the batch path.

        The structural recursion over component sets is identical to the
        pairwise path -- it is memoised per element pair and cheap compared to
        the leaf-level similarity computation it consumes.
        """
        leaf_matrix = self._leaf_matcher.compute_batch(
            context.source_schema.paths(), context.target_schema.paths(), context
        )
        return self._compute_from_leaf_matrix(source_paths, target_paths, context, leaf_matrix)

    def _compute_from_leaf_matrix(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
        leaf_matrix: SimilarityMatrix,
    ) -> SimilarityMatrix:
        source_schema = context.source_schema
        target_schema = context.target_schema
        # Integer index maps into the leaf matrix: the recursion gathers leaf
        # similarities (and whole component blocks) by position instead of
        # going through the per-cell path accessors.
        leaf_row = {path: i for i, path in enumerate(leaf_matrix.source_paths)}
        leaf_column = {path: j for j, path in enumerate(leaf_matrix.target_paths)}
        leaf_values = leaf_matrix.values

        # Component sets are derived from the schema graph alone, so they are
        # memoised per path (leaf_paths_under / child_paths scan the schema).
        source_components: Dict[SchemaPath, Tuple[SchemaPath, ...]] = {}
        target_components: Dict[SchemaPath, Tuple[SchemaPath, ...]] = {}

        def components_of(
            schema: Schema, path: SchemaPath, cache: Dict[SchemaPath, Tuple[SchemaPath, ...]]
        ) -> Tuple[SchemaPath, ...]:
            components = cache.get(path)
            if components is None:
                components = self._component_paths(schema, path)
                cache[path] = components
            return components

        memo: Dict[Tuple[SchemaPath, SchemaPath], float] = {}

        def pair_similarity(source: SchemaPath, target: SchemaPath) -> float:
            key = (source, target)
            if key in memo:
                return memo[key]
            source_row = leaf_row.get(source) if source_schema.is_leaf(source.leaf) else None
            target_col = leaf_column.get(target) if target_schema.is_leaf(target.leaf) else None
            if source_row is not None and target_col is not None:
                value = float(leaf_values[source_row, target_col])
            else:
                source_set = (
                    (source,)
                    if source_row is not None
                    else components_of(source_schema, source, source_components)
                )
                target_set = (
                    (target,)
                    if target_col is not None
                    else components_of(target_schema, target, target_components)
                )
                value = self._set_similarity(
                    source_set, target_set, pair_similarity, leaf_values, leaf_row, leaf_column
                )
            memo[key] = value
            return value

        # Leaf-leaf cells (the bulk of the matrix) are one block gather from
        # the leaf matrix; only pairs involving an inner element recurse.
        source_leaf_rows = [
            leaf_row[path] if source_schema.is_leaf(path.leaf) else -1 for path in source_paths
        ]
        target_leaf_cols = [
            leaf_column[path] if target_schema.is_leaf(path.leaf) else -1 for path in target_paths
        ]
        values = leaf_values[
            np.ix_(
                [max(row, 0) for row in source_leaf_rows],
                [max(col, 0) for col in target_leaf_cols],
            )
        ].copy()
        for i, source in enumerate(source_paths):
            source_inner = source_leaf_rows[i] < 0
            for j, target in enumerate(target_paths):
                if source_inner or target_leaf_cols[j] < 0:
                    values[i, j] = pair_similarity(source, target)
        return SimilarityMatrix(source_paths, target_paths, values)

    def _set_similarity(
        self,
        source_set: Sequence[SchemaPath],
        target_set: Sequence[SchemaPath],
        recursive_similarity,
        leaf_values: np.ndarray,
        leaf_row: Dict[SchemaPath, int],
        leaf_column: Dict[SchemaPath, int],
    ) -> float:
        if not source_set or not target_set:
            return 0.0
        if self._recursive():
            component_values = np.empty((len(source_set), len(target_set)), dtype=float)
            for i, source in enumerate(source_set):
                for j, target in enumerate(target_set):
                    component_values[i, j] = recursive_similarity(source, target)
        else:
            component_values = leaf_values[
                np.ix_(
                    [leaf_row[path] for path in source_set],
                    [leaf_column[path] for path in target_set],
                )
            ]
        fast = self._singleton_selection(source_set, target_set, component_values)
        if fast is not None:
            selected = fast
        else:
            component_matrix = SimilarityMatrix(source_set, target_set, component_values)
            selected = self._direction.select_pairs(component_matrix, self._selection)
        return self._combined.combine(selected, len(source_set), len(target_set))

    def _singleton_selection(
        self,
        source_set: Sequence[SchemaPath],
        target_set: Sequence[SchemaPath],
        component_values: np.ndarray,
    ):
        """Exact shortcut for the default Both + Max1 selection on singleton sets.

        A leaf compared against a component set yields a ``1 x k`` (or
        ``k x 1``) matrix; under undirectional Max1 the intersection of both
        directions is exactly the single best pair -- with ties broken by path
        name order, as :meth:`SimilarityMatrix.ranked_targets` does.  Any other
        direction / selection configuration falls through to the generic
        strategy machinery (returns ``None``).
        """
        if not isinstance(self._direction, Both) or not isinstance(self._selection, MaxN):
            return None
        if self._selection.n != 1 or (len(source_set) > 1 and len(target_set) > 1):
            return None
        if len(source_set) == 1:
            row = component_values[0]
            best = min(
                range(len(target_set)), key=lambda j: (-row[j], target_set[j].names)
            )
            value = float(row[best])
            if value <= 0.0:
                return []
            return [(source_set[0], target_set[best], value)]
        column = component_values[:, 0]
        best = min(range(len(source_set)), key=lambda i: (-column[i], source_set[i].names))
        value = float(column[best])
        if value <= 0.0:
            return []
        return [(source_set[best], target_set[0], value)]


class ChildrenMatcher(_StructuralMatcherBase):
    """Similarity of inner elements from the combined similarity of their children."""

    name = "Children"

    def _component_paths(self, schema: Schema, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        return schema.child_paths(path)

    def _recursive(self) -> bool:
        return True


class LeavesMatcher(_StructuralMatcherBase):
    """Similarity of inner elements from the combined similarity of their leaf sets."""

    name = "Leaves"

    def _component_paths(self, schema: Schema, path: SchemaPath) -> Tuple[SchemaPath, ...]:
        leaves = schema.leaf_paths_under(path)
        # An inner element whose subtree is (pathologically) empty of leaves
        # falls back to its direct children to avoid an empty component set.
        return leaves if leaves else schema.child_paths(path)

    def _recursive(self) -> bool:
        return False
