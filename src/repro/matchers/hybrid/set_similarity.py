"""Combined similarity between two sets of arbitrary items (tokens).

Hybrid matchers apply the three combination steps of Section 6 not to schema
elements but to *components* of schema elements -- most prominently the token
sets produced by name tokenization.  Tokens are plain strings, so this module
provides a light-weight, numpy-based implementation of the same pipeline
(aggregation over several string matchers, Both/Max1 selection, Average or
Dice combined similarity) that works on any item type.

The path-level machinery in :mod:`repro.combination` is *not* reused here on
purpose: its axes are :class:`~repro.model.path.SchemaPath` objects and
wrapping tokens into fake paths would obscure rather than simplify the code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.combination.aggregation import (
    AggregationStrategy,
    AverageAggregation,
    MaxAggregation,
    MinAggregation,
    WeightedAggregation,
)
from repro.combination.combined import CombinedSimilarityStrategy, DiceCombined
from repro.exceptions import CombinationError

#: A similarity function over two items (e.g. a bound string matcher).
ItemSimilarity = Callable[[str, str], float]


def _aggregate_layers(layers: np.ndarray, aggregation: AggregationStrategy) -> np.ndarray:
    """Collapse the first (matcher) axis of a ``k x m x n`` array."""
    if isinstance(aggregation, MaxAggregation):
        return layers.max(axis=0)
    if isinstance(aggregation, MinAggregation):
        return layers.min(axis=0)
    if isinstance(aggregation, AverageAggregation):
        return layers.mean(axis=0)
    if isinstance(aggregation, WeightedAggregation):
        raise CombinationError(
            "Weighted aggregation over token-set layers is not supported; "
            "use Max, Min or Average inside hybrid name matchers"
        )
    raise CombinationError(f"unsupported aggregation strategy for token sets: {aggregation}")


def _mutual_best_pairs(matrix: np.ndarray) -> List[Tuple[int, int, float]]:
    """Max1 selection in both directions: pairs that are each other's best candidate.

    Ties are broken by the lower index so the result is deterministic.  Cells
    with similarity 0 are never selected.
    """
    if matrix.size == 0:
        return []
    rows, columns = matrix.shape
    best_for_row = matrix.argmax(axis=1)
    best_for_column = matrix.argmax(axis=0)
    pairs: List[Tuple[int, int, float]] = []
    for i in range(rows):
        j = int(best_for_row[i])
        value = float(matrix[i, j])
        if value <= 0.0:
            continue
        if int(best_for_column[j]) == i:
            pairs.append((i, j, value))
    return pairs


def set_similarity(
    items_a: Sequence[str],
    items_b: Sequence[str],
    similarity_layers: Sequence[ItemSimilarity],
    aggregation: AggregationStrategy,
    combined: CombinedSimilarityStrategy,
) -> float:
    """The combined similarity of two item sets.

    Parameters
    ----------
    items_a / items_b:
        The two component sets (e.g. the token sets of two element names).
    similarity_layers:
        One similarity function per constituent matcher; each contributes one
        layer of the token-level similarity cube.
    aggregation:
        How to aggregate the layers per item pair (Max by default in the Name
        matcher, because tokens are typically similar according to only some
        matchers).
    combined:
        Average or Dice, applied to the mutually-best (Both + Max1) pairs.
    """
    unique_a = list(dict.fromkeys(items_a))
    unique_b = list(dict.fromkeys(items_b))
    if not unique_a or not unique_b:
        return 0.0
    if not similarity_layers:
        raise CombinationError("set_similarity requires at least one similarity layer")

    layers = np.zeros((len(similarity_layers), len(unique_a), len(unique_b)), dtype=float)
    for k, layer in enumerate(similarity_layers):
        for i, item_a in enumerate(unique_a):
            for j, item_b in enumerate(unique_b):
                layers[k, i, j] = min(1.0, max(0.0, float(layer(item_a, item_b))))

    aggregated = _aggregate_layers(layers, aggregation)
    selected = _mutual_best_pairs(aggregated)
    if not selected:
        return 0.0

    total_items = len(unique_a) + len(unique_b)
    matched_rows: Dict[int, float] = {}
    matched_columns: Dict[int, float] = {}
    for i, j, value in selected:
        matched_rows[i] = max(matched_rows.get(i, 0.0), value)
        matched_columns[j] = max(matched_columns.get(j, 0.0), value)

    if isinstance(combined, DiceCombined):
        value = (len(matched_rows) + len(matched_columns)) / total_items
    else:
        value = (sum(matched_rows.values()) + sum(matched_columns.values())) / total_items
    return min(1.0, max(0.0, value))
